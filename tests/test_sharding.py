"""Tests for the partitioned (sharded) chase and its static analysis."""

import pytest

import repro.obs as obs
from repro.chase import ChaseStatus, sharded_chase, standard_chase
from repro.core import Atom, Const, Instance, Null, RelationSymbol
from repro.dependencies import Egd, Tgd
from repro.dependencies.graph import (
    conclusion_is_anchored,
    premise_is_component_local,
    shard_locality,
)
from repro.engine import Executor, fingerprint_instance
from repro.generators import (
    disjoint_scaled_sources,
    example_2_1_setting,
)

E = RelationSymbol("E", 2)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _counter(name):
    return obs.counter(name).value


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------


class TestShardLocality:
    def test_example_2_1_is_fully_local(self):
        analysis = shard_locality(
            list(example_2_1_setting().all_dependencies)
        )
        assert analysis.shardable
        assert not analysis.cross
        assert len(analysis.local) == 4

    def test_disconnected_premise_is_cross(self):
        # E(x,x') and E(y,y') share no term: a match may span components.
        egd = Egd.parse("E(x,u) & E(y,u2) -> u = u2")
        assert not premise_is_component_local(egd)
        analysis = shard_locality([egd])
        assert analysis.shardable
        assert analysis.cross == (egd,)

    def test_shared_constant_connects_premise(self):
        egd = Egd.parse("E(x,'a') & E(y,'a') -> x = y")
        assert premise_is_component_local(egd)

    def test_fo_premise_is_cross(self):
        tgd = Tgd.parse("M(x,y) | N(x,y) -> E(x,y)")
        assert tgd.premise_formula is not None
        assert not premise_is_component_local(tgd)
        assert shard_locality([tgd]).cross == (tgd,)

    def test_unanchored_conclusion_is_cross(self):
        tgd = Tgd.parse("M(x,y) -> exists z, w . E(z,w)")
        assert not conclusion_is_anchored(tgd)
        assert shard_locality([tgd]).cross == (tgd,)

    def test_conclusion_anchored_through_existential_chain(self):
        tgd = Tgd.parse("M(x,y) -> exists z, w . E(x,z) & E(z,w)")
        assert conclusion_is_anchored(tgd)
        assert shard_locality([tgd]).local == (tgd,)

    def test_constant_in_conclusion_disables_sharding(self):
        tgd = Tgd.parse("M(x,y) -> E(x,'tag')")
        analysis = shard_locality([tgd])
        assert not analysis.shardable
        assert "constant" in analysis.reason


# ----------------------------------------------------------------------
# Instance components
# ----------------------------------------------------------------------


class TestComponents:
    def test_empty_instance(self):
        assert Instance().components() == []

    def test_single_component(self):
        inst = Instance(
            [Atom(E, (Const("a"), Const("b"))), Atom(E, (Const("b"), Const("c")))]
        )
        assert len(inst.components()) == 1

    def test_disjoint_union_splits(self):
        source = disjoint_scaled_sources(4, 6, seed=1)
        parts = source.components()
        assert len(parts) == 4
        merged = Instance()
        for part in parts:
            merged.add_all(part)
        assert merged == source

    def test_nulls_connect(self):
        inst = Instance(
            [Atom(E, (Const("a"), Null(0))), Atom(E, (Null(0), Const("b")))]
        )
        assert len(inst.components()) == 1

    def test_deterministic_order(self):
        source = disjoint_scaled_sources(3, 5, seed=2)
        first = [part.sorted_atoms() for part in source.components()]
        second = [part.sorted_atoms() for part in source.components()]
        assert first == second


# ----------------------------------------------------------------------
# Sharded chase
# ----------------------------------------------------------------------


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


class TestShardedChase:
    def test_parity_with_standard_chase(self):
        setting = example_2_1_setting()
        deps = list(setting.all_dependencies)
        source = disjoint_scaled_sources(4, 8, seed=7)
        serial = standard_chase(source, deps)
        sharded = sharded_chase(source, deps)
        assert sharded.status is ChaseStatus.SUCCESS
        assert _fp(sharded.instance) == _fp(serial.instance)
        assert obs.gauge("chase.shards").value == 4

    def test_parity_with_executor(self):
        setting = example_2_1_setting()
        deps = list(setting.all_dependencies)
        source = disjoint_scaled_sources(3, 6, seed=9)
        serial = standard_chase(source, deps)
        with Executor(workers=2) as executor:
            sharded = sharded_chase(source, deps, executor=executor)
        assert _fp(sharded.instance) == _fp(serial.instance)

    def test_single_component_falls_back(self):
        setting = example_2_1_setting()
        deps = list(setting.all_dependencies)
        source = disjoint_scaled_sources(1, 6, seed=3)
        before = _counter("chase.shard_fallbacks")
        outcome = sharded_chase(source, deps)
        assert outcome.successful
        assert _counter("chase.shard_fallbacks") == before + 1

    def test_empty_instance_falls_back(self):
        deps = list(example_2_1_setting().all_dependencies)
        outcome = sharded_chase(Instance(), deps)
        assert outcome.successful
        assert len(outcome.instance) == 0
        assert _counter("chase.shard_fallbacks") == 1

    def test_all_cross_dependencies_fall_back_to_sequential(self):
        # The only dependency is cross-shard: nothing can run shard-local,
        # so the whole chase must run sequentially.
        tgd = Tgd.parse("E(x,y) | E(y,x) -> F(x,y)")
        source = Instance(
            [
                Atom(E, (Const("a"), Const("b"))),
                Atom(E, (Const("c"), Const("d"))),
            ]
        )
        before = _counter("chase.shard_fallbacks")
        outcome = sharded_chase(source, [tgd])
        assert outcome.successful
        serial = standard_chase(source, [tgd])
        assert _fp(outcome.instance) == _fp(serial.instance)
        assert _counter("chase.shard_fallbacks") == before + 1

    def test_cross_dependency_residual_pass(self):
        # Local st-style tgd plus a cross-shard egd relating the two
        # components: the residual pass must perform the merges.
        tgd = Tgd.parse("E(x,y) -> exists z . F(x,z)")
        egd = Egd.parse("F(x,u) & F(y,v) -> u = v")
        analysis = shard_locality([tgd, egd])
        assert analysis.local == (tgd,)
        assert analysis.cross == (egd,)
        source = Instance(
            [
                Atom(E, (Const("a"), Const("b"))),
                Atom(E, (Const("c"), Const("d"))),
            ]
        )
        sharded = sharded_chase(source, [tgd, egd])
        serial = standard_chase(source, [tgd, egd])
        assert sharded.successful
        assert _fp(sharded.instance) == _fp(serial.instance)
        # Both F-witnesses were equated by the residual egd pass.
        result_nulls = sharded.instance.nulls()
        assert len(result_nulls) == 1

    def test_shard_failure_is_definitive(self):
        # An egd equating two distinct constants fails inside one shard.
        tgd = Tgd.parse("E(x,y) -> F(x,y)")
        egd = Egd.parse("F(x,u) & F(x,v) -> u = v")
        source = Instance(
            [
                Atom(E, (Const("a"), Const("b"))),
                Atom(E, (Const("a"), Const("c"))),
                Atom(E, (Const("d"), Const("e"))),
            ]
        )
        outcome = sharded_chase(source, [tgd, egd])
        assert outcome.status is ChaseStatus.FAILURE

    def test_non_ground_instance_falls_back(self):
        deps = [Tgd.parse("E(x,y) -> exists z . F(y,z)")]
        inst = Instance(
            [
                Atom(E, (Const("a"), Null(0))),
                Atom(E, (Const("b"), Const("c"))),
            ]
        )
        before = _counter("chase.shard_fallbacks")
        outcome = sharded_chase(inst, deps)
        assert outcome.successful
        assert _counter("chase.shard_fallbacks") == before + 1

    def test_merge_renames_nulls_apart(self):
        tgd = Tgd.parse("E(x,y) -> exists z . F(x,z)")
        source = Instance(
            [
                Atom(E, (Const("a"), Const("b"))),
                Atom(E, (Const("c"), Const("d"))),
            ]
        )
        outcome = sharded_chase(source, [tgd])
        assert outcome.successful
        # Each shard invented one null; the merge must keep them distinct.
        assert len(outcome.instance.nulls()) == 2

    def test_active_provenance_ledger_forces_sequential(self):
        # Worker-side chase steps cannot be recorded, so an installed
        # ledger must route through the sequential fallback and keep
        # every derivation in the ledger.
        from repro.obs.provenance import recording

        setting = example_2_1_setting()
        deps = list(setting.all_dependencies)
        source = disjoint_scaled_sources(3, 4, seed=6)
        before = _counter("chase.shard_fallbacks")
        with recording() as ledger:
            outcome = sharded_chase(source, deps)
        assert outcome.successful
        assert _counter("chase.shard_fallbacks") == before + 1
        assert len(ledger) > 0

    def test_seminaive_engine(self):
        setting = example_2_1_setting()
        deps = list(setting.all_dependencies)
        source = disjoint_scaled_sources(3, 6, seed=4)
        serial = standard_chase(source, deps)
        sharded = sharded_chase(source, deps, engine="seminaive")
        assert _fp(sharded.instance) == _fp(serial.instance)
