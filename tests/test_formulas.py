"""Tests for the FO formula AST and its helpers."""

from repro.core import Atom, Const, RelationSymbol, Variable
from repro.logic.formulas import (
    And,
    Equality,
    Exists,
    Falsity,
    Forall,
    Not,
    Or,
    RelationalAtom,
    Truth,
    atoms_of,
    conjunction,
    disjunction,
    is_conjunction_of_atoms,
)

E = RelationSymbol("E", 2)
x, y, z = Variable("x"), Variable("y"), Variable("z")


def edge(a, b):
    return RelationalAtom(Atom(E, (a, b)))


class TestFreeVariables:
    def test_atom(self):
        assert edge(x, y).free_variables() == frozenset({x, y})

    def test_quantifier_binds(self):
        formula = Exists((y,), edge(x, y))
        assert formula.free_variables() == frozenset({x})

    def test_nested_quantifiers(self):
        formula = Forall((x,), Exists((y,), edge(x, y)))
        assert formula.free_variables() == frozenset()

    def test_equality(self):
        assert Equality(x, Const("a")).free_variables() == frozenset({x})

    def test_connectives_union(self):
        formula = And((edge(x, y), edge(y, z)))
        assert formula.free_variables() == frozenset({x, y, z})

    def test_truth_falsity(self):
        assert Truth().free_variables() == frozenset()
        assert Falsity().free_variables() == frozenset()


class TestSubstitution:
    def test_atom_substitution(self):
        formula = edge(x, y).substitute({x: Const("a")})
        assert formula == edge(Const("a"), y)

    def test_bound_variables_shadow(self):
        formula = Exists((y,), edge(x, y)).substitute({x: Const("a"), y: Const("b")})
        assert formula == Exists((y,), edge(Const("a"), y))

    def test_equality_substitution(self):
        assert Equality(x, y).substitute({x: z}) == Equality(z, y)

    def test_negation_substitution(self):
        assert Not(edge(x, y)).substitute({x: z}) == Not(edge(z, y))


class TestHelpers:
    def test_conjunction_flattens(self):
        formula = conjunction([edge(x, y), And((edge(y, z), edge(z, x)))])
        assert isinstance(formula, And)
        assert len(formula.parts) == 3

    def test_conjunction_drops_truth(self):
        assert conjunction([Truth(), edge(x, y)]) == edge(x, y)

    def test_empty_conjunction_is_truth(self):
        assert conjunction([]) == Truth()

    def test_disjunction_flattens(self):
        formula = disjunction([edge(x, y), Or((edge(y, z),))])
        assert isinstance(formula, Or)
        assert len(formula.parts) == 2

    def test_empty_disjunction_is_falsity(self):
        assert disjunction([]) == Falsity()

    def test_atoms_of_traverses_everything(self):
        formula = Forall((x,), Or((Not(edge(x, y)), Exists((z,), edge(x, z)))))
        assert len(atoms_of(formula)) == 2

    def test_is_conjunction_of_atoms(self):
        assert is_conjunction_of_atoms(edge(x, y))
        assert is_conjunction_of_atoms(And((edge(x, y), edge(y, z))))
        assert is_conjunction_of_atoms(Truth())
        assert not is_conjunction_of_atoms(Or((edge(x, y),)))
        assert not is_conjunction_of_atoms(And((edge(x, y), Not(edge(y, z)))))

    def test_operator_sugar(self):
        both = edge(x, y) & edge(y, z)
        assert isinstance(both, And)
        either = edge(x, y) | edge(y, z)
        assert isinstance(either, Or)
        negated = ~edge(x, y)
        assert isinstance(negated, Not)
        implication = edge(x, y).implies(edge(y, x))
        assert isinstance(implication, Or)

    def test_constants_collected(self):
        formula = And((edge(Const("a"), x), Equality(x, Const("b"))))
        assert formula.constants() == frozenset({Const("a"), Const("b")})

    def test_equality_and_hash_of_formulas(self):
        assert Exists((x,), edge(x, x)) == Exists((x,), edge(x, x))
        assert hash(Truth()) == hash(Truth())
        assert Exists((x,), edge(x, x)) != Forall((x,), edge(x, x))
