"""Tests for :mod:`repro.obs` -- spans, counters, sinks, schema.

Counter accuracy is checked against the hand-countable chase of
Example 2.1: M(a,b), N(a,b), N(a,c) under st1: M(x1,x2) → E(x1,x2) and
st2: N(x,y) → ∃z1,z2. E(x,z1) ∧ F(x,z2).  The standard chase fires st1
once and st2 once (the second N-trigger's conclusion is already
satisfiable, Remark 4.3), plus the target tgd once -- 3 firings, 3
fresh nulls, no egd merges.
"""

import json

import pytest

from repro import obs
from repro.chase import standard_chase
from repro.chase.result import ChaseOutcome, ChaseStep
from repro.chase.seminaive import seminaive_chase
from repro.core.atoms import Atom
from repro.homomorphism import find_homomorphism
from repro.logic import parse_instance
from repro.logic.matching import exists_match
from repro.obs import (
    NULL_SINK,
    JsonLinesSink,
    LoggingSink,
    RecordingSink,
    TeeSink,
)


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test sees a zeroed registry and leaves the null sink behind."""
    previous = obs.install_sink(NULL_SINK)
    obs.reset()
    yield
    obs.install_sink(previous)
    obs.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_slash_joined_paths(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        spans = obs.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer/inner"]["count"] == 2
        assert "inner" not in spans

    def test_exception_safety_closes_span_and_restores_stack(self):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        spans = obs.snapshot()["spans"]
        assert spans["doomed"]["count"] == 1
        assert spans["doomed"]["seconds"] >= 0.0
        # The stack is unwound: a fresh span is top-level again.
        with obs.span("after"):
            pass
        assert "after" in obs.snapshot()["spans"]

    def test_span_times_accumulate(self):
        with obs.span("timed"):
            sum(range(1000))
        with obs.span("timed"):
            sum(range(1000))
        stats = obs.snapshot()["spans"]["timed"]
        assert stats["count"] == 2
        assert stats["seconds"] > 0.0

    def test_span_stats_nests_under_current_span(self):
        with obs.span("engine"):
            handle = obs.span_stats("phase")
            handle.record(0.25)
            handle.record(0.25)
        stats = obs.snapshot()["spans"]["engine/phase"]
        assert stats["count"] == 2
        assert stats["seconds"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Counter accuracy against a hand-counted chase
# ----------------------------------------------------------------------


class TestCounterAccuracy:
    def test_example_2_1_chase_counters(self, setting_2_1, source_2_1):
        outcome = standard_chase(
            source_2_1, list(setting_2_1.all_dependencies), trace=True
        )
        assert outcome.successful
        counters = obs.snapshot()["counters"]
        tgd_steps = [s for s in outcome.trace if s.kind == "tgd"]
        egd_steps = [s for s in outcome.trace if s.kind == "egd"]
        assert counters["chase.tgd_firings"] == len(tgd_steps) == 3
        assert counters["chase.egd_merges"] == len(egd_steps) == 0
        assert counters["chase.nulls_created"] == 3
        gauges = obs.snapshot()["gauges"]
        assert gauges["chase.steps_to_fixpoint"] == outcome.steps == 3
        assert gauges["instance.nulls"] == 3

    def test_outcome_carries_elapsed_and_null_stats(
        self, setting_2_1, source_2_1
    ):
        outcome = standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        assert outcome.elapsed_seconds > 0.0
        assert outcome.nulls_created == 3

    def test_seminaive_agrees_with_standard(self, setting_2_1, source_2_1):
        deps = list(setting_2_1.all_dependencies)
        standard_chase(source_2_1, deps)
        batched = dict(obs.snapshot()["counters"])
        obs.reset()
        outcome = seminaive_chase(source_2_1, deps)
        assert outcome.successful
        delta_driven = obs.snapshot()["counters"]
        for name in ("chase.tgd_firings", "chase.nulls_created"):
            assert delta_driven[name] == batched[name]

    def test_hom_search_attributes_matcher_work(self):
        left = parse_instance("E('a', 'b'), E('b', 'c')")
        assert find_homomorphism(left, left) is not None
        counters = obs.snapshot()["counters"]
        assert counters["hom.searches"] == 1
        assert counters["hom.candidates"] >= 2

    def test_unattributed_matching_is_not_counted(self):
        instance = parse_instance("E('a', 'b')")
        pattern = list(instance)
        assert exists_match(pattern, instance)
        counters = obs.snapshot()["counters"]
        assert counters.get("match.candidates", 0) == 0
        assert counters.get("hom.candidates", 0) == 0


# ----------------------------------------------------------------------
# Snapshot schema
# ----------------------------------------------------------------------


class TestSchema:
    def test_snapshot_round_trips_through_json(self):
        with obs.span("solve"):
            obs.counter("chase.tgd_firings").inc(4)
            obs.gauge("instance.nulls").set(2)
        state = obs.snapshot()
        assert json.loads(obs.to_json()) == state
        assert state["schema"] == obs.SCHEMA == "repro.obs/v1"
        assert set(state) == {
            "schema",
            "counters",
            "gauges",
            "spans",
            "histograms",
        }
        assert state["counters"]["chase.tgd_firings"] == 4
        assert state["gauges"]["instance.nulls"] == 2
        assert state["spans"]["solve"]["count"] == 1
        # Additive v1 extensions: every span entry carries min/max and
        # histogram-derived percentiles next to count/seconds.
        entry = state["spans"]["solve"]
        assert {"count", "seconds", "min", "max", "p50", "p95", "p99"} <= set(
            entry
        )
        assert 0.0 < entry["min"] <= entry["p50"] <= entry["max"]

    def test_reset_keeps_prefetched_handles_alive(self):
        handle = obs.counter("chase.tgd_firings")
        handle.inc(7)
        obs.reset()
        assert obs.counter("chase.tgd_firings") is handle
        assert handle.value == 0
        handle.inc()
        assert obs.snapshot()["counters"]["chase.tgd_firings"] == 1

    def test_render_profile_lists_spans_counters_gauges(self):
        with obs.span("solve"):
            obs.counter("chase.tgd_firings").inc()
        obs.gauge("instance.nulls").set(5)
        table = obs.render_profile()
        assert "solve" in table
        assert "chase.tgd_firings" in table
        assert "instance.nulls" in table


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class TestSinks:
    def test_null_sink_adds_no_attributes_to_hot_path_objects(self):
        # The default configuration must not decorate chase objects:
        # slotted classes stay slotted and carry no telemetry fields.
        for cls in (Atom, ChaseStep, ChaseOutcome):
            slots = cls.__slots__
            assert not any(
                marker in name
                for name in slots
                for marker in ("obs", "telemetry", "span", "sink")
            ), f"{cls.__name__} grew a telemetry attribute: {slots}"
        atom = parse_instance("E('a', 'b')").sorted_atoms()[0]
        assert not hasattr(atom, "__dict__")

    def test_recording_sink_sees_span_events(self):
        recorder = RecordingSink()
        obs.install_sink(recorder)
        with obs.span("solve"):
            obs.event("checkpoint", detail=1)
        kinds = [event["type"] for event in recorder.events]
        assert kinds == ["span_start", "event", "span_end"]
        assert recorder.of_type("event")[0]["detail"] == 1

    def test_events_skipped_under_null_sink(self):
        recorder = RecordingSink()
        obs.event("invisible")  # null sink installed by the fixture
        obs.install_sink(recorder)
        obs.event("visible")
        assert [e["name"] for e in recorder.events] == ["visible"]

    def test_jsonlines_sink_writes_valid_line_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(str(path))
        obs.install_sink(sink)
        with obs.span("solve"):
            obs.counter("chase.tgd_firings").inc()
        obs.get_telemetry().emit_snapshot()
        obs.install_sink(NULL_SINK)
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["type"] for e in events] == [
            "span_start",
            "span_end",
            "snapshot",
        ]
        assert events[-1]["data"]["counters"]["chase.tgd_firings"] == 1

    def test_trace_viewer_sink_writes_valid_trace_event_json(self, tmp_path):
        from repro.obs import TraceViewerSink

        path = tmp_path / "run.trace.json"
        sink = TraceViewerSink(str(path))
        obs.install_sink(sink)
        with obs.span("solve"):
            with obs.span("chase.standard"):
                obs.event("checkpoint", detail=7)
        obs.get_telemetry().emit_snapshot()
        obs.install_sink(NULL_SINK)
        sink.close()
        # Structural validity per the trace-event format: a JSON object
        # with a traceEvents array; every event carries ph/name/ts/pid/
        # tid; B and E events balance, so Perfetto can pair them.
        payload = json.loads(path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert {"ph", "name", "ts", "pid", "tid"} <= set(event)
            assert isinstance(event["ts"], (int, float))
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 2
        # Names are span leaves (nesting carries the hierarchy).
        assert [e["name"] for e in begins] == ["solve", "chase.standard"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {"checkpoint", "telemetry.snapshot"} == {
            e["name"] for e in instants
        }
        checkpoint = next(e for e in instants if e["name"] == "checkpoint")
        assert checkpoint["args"]["detail"] == 7

    def test_trace_viewer_sink_valid_after_failed_run(self, tmp_path):
        from repro.obs import TraceViewerSink

        path = tmp_path / "fail.trace.json"
        sink = TraceViewerSink(str(path))
        obs.install_sink(sink)
        with pytest.raises(RuntimeError):
            with obs.span("solve"):
                raise RuntimeError("chase blew up")
        obs.install_sink(NULL_SINK)
        sink.close()
        payload = json.loads(path.read_text(encoding="utf-8"))
        # The span context manager is exception-safe, so even the
        # failing span closed before the sink was finalized.  Lane
        # metadata ("M") precedes the actual events.
        phases = [e["ph"] for e in payload["traceEvents"] if e["ph"] != "M"]
        assert phases == ["B", "E"]

    def test_trace_viewer_close_is_idempotent(self, tmp_path):
        from repro.obs import TraceViewerSink

        path = tmp_path / "twice.trace.json"
        sink = TraceViewerSink(str(path))
        obs.install_sink(sink)
        obs.event("only")
        obs.install_sink(NULL_SINK)
        sink.close()
        sink.close()
        payload = json.loads(path.read_text(encoding="utf-8"))
        names = [
            e["name"] for e in payload["traceEvents"] if e["ph"] != "M"
        ]
        assert names == ["only"]

    def test_tee_sink_duplicates_events(self):
        first, second = RecordingSink(), RecordingSink()
        obs.install_sink(TeeSink(first, second))
        obs.event("both")
        assert len(first.events) == len(second.events) == 1

    def test_configure_from_env_installs_logging_sink(self):
        sink = obs.configure_from_env({"REPRO_LOG": "debug"})
        assert isinstance(sink, LoggingSink)
        assert obs.get_telemetry().sink is sink
        assert obs.configure_from_env({}) is None
        assert obs.configure_from_env({"REPRO_LOG": "bogus"}) is None

    def test_configure_from_env_tees_with_existing_sink(self):
        recorder = RecordingSink()
        obs.install_sink(recorder)
        sink = obs.configure_from_env({"REPRO_LOG": "info"})
        assert isinstance(sink, LoggingSink)
        assert isinstance(obs.get_telemetry().sink, TeeSink)
        obs.event("fan-out")
        assert [e["name"] for e in recorder.events] == ["fan-out"]
