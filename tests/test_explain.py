"""Tests for the chase narration/explain module."""

import pytest

from repro.chase import (
    alpha_chase,
    explain,
    narrate,
    narrate_why,
    standard_chase,
    survival,
    why_not,
)
from repro.chase.alpha import ExplicitAlpha
from repro.core import Const, Null, NullFactory
from repro.core.atoms import Atom
from repro.core.schema import RelationSymbol
from repro.dependencies import parse_dependencies
from repro.logic import parse_instance
from repro.obs.provenance import recording


def atom(name, *args):
    values = tuple(
        Null(i) if isinstance(i, int) else Const(i) for i in args
    )
    return Atom(RelationSymbol(name, len(values)), values)


class TestExplain:
    def test_replay_matches_engine_result(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(y, z)",
                "F(x, y) -> G(y, x)",
            ]
        )
        source = parse_instance("E('a','b'), E('b','c')")
        outcome = standard_chase(source, deps, trace=True)
        steps = explain(source, outcome)
        assert steps
        assert steps[-1].instance == outcome.instance

    def test_untraced_outcome_rejected(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("E('a','b')")
        outcome = standard_chase(source, deps, trace=False)
        with pytest.raises(ValueError):
            explain(source, outcome)

    def test_zero_step_chase_explained(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("F('b','w'), E('a','b')")
        outcome = standard_chase(source, deps, trace=False)
        assert outcome.steps == 0
        assert explain(source, outcome) == []

    def test_narrate_structure(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("E('a','b')")
        outcome = standard_chase(source, deps, trace=True)
        text = narrate(source, outcome)
        assert text.startswith("I0 = {E(a, b)}")
        assert "I1 = I0 ∪" in text
        assert "result: success after 1 step(s)" in text

    def test_narrate_records_merges(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        outcome = standard_chase(source, deps, trace=True)
        text = narrate(source, outcome)
        assert "replacing" in text

    def test_narrate_alpha_chase(self, setting_2_1, source_2_1):
        d1, d2 = setting_2_1.st_dependencies
        d3, d4 = setting_2_1.target_dependencies

        def values(*items):
            return tuple(
                Null(i) if isinstance(i, int) else Const(i) for i in items
            )

        alpha = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values(1, 3),
                (d2, values("a"), values("c")): values(2, 3),
                (d3, values(3), values("a")): values(4),
            },
            fallback=NullFactory(100),
        )
        outcome = alpha_chase(
            source_2_1, list(setting_2_1.all_dependencies), alpha, trace=True
        )
        text = narrate(source_2_1, outcome, show_instances=True)
        assert "result: success" in text
        assert "I4" in text


class TestDagNarration:
    """DAG-aware narration off the provenance ledger."""

    def test_narrate_why_walks_to_source(self, setting_2_1):
        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            standard_chase(source, list(setting_2_1.all_dependencies))
        text = narrate_why(ledger, atom("G", 1, 2))
        lines = text.splitlines()
        assert lines[0].startswith("G(⊥1, ⊥2) ⇐ d3[")
        assert lines[1].lstrip().startswith("F(a, ⊥1) ⇐ d2[")
        assert lines[2].lstrip() == "N(a, b) ⇐ source"

    def test_narrate_why_on_egd_merging_chase(self):
        # Example 4.4 shape: tgd-created nulls collide on a key egd and
        # get merged away; narration must surface the merge.
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        with recording() as ledger:
            outcome = standard_chase(source, deps)
        assert outcome.successful
        # The pre-merge fact is explained as rewritten.
        gone = why_not(ledger, atom("F", "a", 0))
        assert "rewritten to F(a, c)" in gone
        # Chain of the surviving form reaches a source atom.
        text = narrate_why(ledger, atom("F", "a", "c"))
        assert "⇐ source" in text

    def test_narrate_why_on_alpha_trace(self, setting_2_1, source_2_1):
        d1, d2 = setting_2_1.st_dependencies
        d3, _ = setting_2_1.target_dependencies

        def values(*items):
            return tuple(
                Null(i) if isinstance(i, int) else Const(i) for i in items
            )

        alpha = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values(1, 3),
                (d2, values("a"), values("c")): values(2, 3),
                (d3, values(3), values("a")): values(4),
            },
            fallback=NullFactory(100),
        )
        with recording() as ledger:
            outcome = alpha_chase(
                source_2_1, list(setting_2_1.all_dependencies), alpha
            )
        assert outcome.successful
        # ᾱ(d3, (⊥3), (a)) = (⊥4): the α-chosen witness appears in the
        # justification of G(⊥3, ⊥4), grounded in an N source atom.
        text = narrate_why(ledger, atom("G", 3, 4))
        assert text.startswith("G(⊥3, ⊥4) ⇐ d3[")
        assert "z ↦ ⊥4" in text
        assert "⇐ source" in text.splitlines()[-1]

    def test_why_not_never_derived(self, setting_2_1):
        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            standard_chase(source, list(setting_2_1.all_dependencies))
        assert "never derived" in why_not(ledger, atom("E", "q", "q"))

    def test_survival_names_the_grounds(self, setting_2_1):
        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            standard_chase(source, list(setting_2_1.all_dependencies))
        text = survival(ledger, atom("G", 1, 2))
        assert "survives" in text
        assert "N(a, b)" in text

    def test_survival_of_retracted_fact_explains_retraction(
        self, setting_2_1
    ):
        from repro.homomorphism import core

        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            outcome = standard_chase(
                source, list(setting_2_1.all_dependencies)
            )
            target = outcome.instance.reduct(setting_2_1.target_schema)
            folded = core(target)
        dropped = sorted(set(target) - set(folded))
        assert dropped
        assert "retracted by core" in survival(ledger, dropped[0])
