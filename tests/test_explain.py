"""Tests for the chase narration/explain module."""

import pytest

from repro.chase import alpha_chase, explain, narrate, standard_chase
from repro.chase.alpha import ExplicitAlpha
from repro.core import Const, Null, NullFactory
from repro.dependencies import parse_dependencies
from repro.logic import parse_instance


class TestExplain:
    def test_replay_matches_engine_result(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(y, z)",
                "F(x, y) -> G(y, x)",
            ]
        )
        source = parse_instance("E('a','b'), E('b','c')")
        outcome = standard_chase(source, deps, trace=True)
        steps = explain(source, outcome)
        assert steps
        assert steps[-1].instance == outcome.instance

    def test_untraced_outcome_rejected(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("E('a','b')")
        outcome = standard_chase(source, deps, trace=False)
        with pytest.raises(ValueError):
            explain(source, outcome)

    def test_zero_step_chase_explained(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("F('b','w'), E('a','b')")
        outcome = standard_chase(source, deps, trace=False)
        assert outcome.steps == 0
        assert explain(source, outcome) == []

    def test_narrate_structure(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("E('a','b')")
        outcome = standard_chase(source, deps, trace=True)
        text = narrate(source, outcome)
        assert text.startswith("I0 = {E(a, b)}")
        assert "I1 = I0 ∪" in text
        assert "result: success after 1 step(s)" in text

    def test_narrate_records_merges(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        outcome = standard_chase(source, deps, trace=True)
        text = narrate(source, outcome)
        assert "replacing" in text

    def test_narrate_alpha_chase(self, setting_2_1, source_2_1):
        d1, d2 = setting_2_1.st_dependencies
        d3, d4 = setting_2_1.target_dependencies

        def values(*items):
            return tuple(
                Null(i) if isinstance(i, int) else Const(i) for i in items
            )

        alpha = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values(1, 3),
                (d2, values("a"), values("c")): values(2, 3),
                (d3, values(3), values("a")): values(4),
            },
            fallback=NullFactory(100),
        )
        outcome = alpha_chase(
            source_2_1, list(setting_2_1.all_dependencies), alpha, trace=True
        )
        text = narrate(source_2_1, outcome, show_instances=True)
        assert "result: success" in text
        assert "I4" in text
