"""Tests for the workload generators."""

import pytest

from repro.core import Const, Schema
from repro.generators import (
    chain_setting,
    chain_source,
    cycle_instance,
    employee_source,
    example_2_1_scaled_source,
    random_graph_instance,
    random_source_instance,
    section_3_source,
    star_source,
)


class TestRandomInstances:
    def test_reproducible(self):
        schema = Schema.of(R=2)
        left = random_source_instance(schema, 5, 10, seed=42)
        right = random_source_instance(schema, 5, 10, seed=42)
        assert left == right

    def test_different_seeds_differ(self):
        schema = Schema.of(R=3)
        left = random_source_instance(schema, 8, 20, seed=1)
        right = random_source_instance(schema, 8, 20, seed=2)
        assert left != right

    def test_domain_respected(self):
        schema = Schema.of(R=2)
        inst = random_source_instance(schema, 3, 50, seed=0)
        assert inst.constants() <= {Const("c0"), Const("c1"), Const("c2")}

    def test_ground(self):
        schema = Schema.of(R=2)
        assert random_source_instance(schema, 3, 10, seed=0).is_ground


class TestGraphs:
    def test_cycle_structure(self):
        inst = cycle_instance(5, "v", labeled=(2,))
        assert inst.count_of("E") == 5
        assert inst.count_of("P") == 1

    def test_section_3_source(self):
        inst = section_3_source()
        assert inst.count_of("E") == 18
        assert inst.atoms_of("P") == frozenset(
            {a for a in inst.atoms_of("P")}
        )
        labels = {a.args[0].name for a in inst.atoms_of("P")}
        assert labels == {"a4"}

    def test_random_graph(self):
        inst = random_graph_instance(10, 20, seed=3)
        assert inst.count_of("E") <= 20  # duplicates collapse

    def test_random_graph_without_labels(self):
        inst = random_graph_instance(5, 10, seed=1, label_name=None)
        assert inst.count_of("P") == 0


class TestScalableFamilies:
    def test_chain_setting_weakly_acyclic(self):
        setting = chain_setting(6)
        assert setting.is_weakly_acyclic
        assert len(setting.target_dependencies) == 5

    def test_chain_source(self):
        inst = chain_source(7)
        assert inst.count_of("R0") == 7

    def test_star_source(self):
        inst = star_source(5)
        assert inst.count_of("N") == 5
        hubs = {a.args[0] for a in inst.atoms_of("N")}
        assert hubs == {Const("hub")}

    def test_employee_source(self):
        inst = employee_source(10, 3, seed=0)
        assert inst.count_of("Emp") == 10
        departments = {a.args[1].name for a in inst.atoms_of("Emp")}
        assert departments <= {"d0", "d1", "d2"}

    def test_scaled_example_2_1(self):
        inst = example_2_1_scaled_source(5, seed=0)
        assert inst.count_of("M") <= 5
        assert inst.count_of("N") <= 10

    def test_chain_end_to_end(self):
        from repro.exchange import solve

        setting = chain_setting(3)
        result = solve(setting, chain_source(2))
        assert result.cwa_solution_exists
