"""Tests for the α-chase -- Definition 4.1/4.2 and Example 4.4."""

import pytest

from repro.chase import (
    AlphaChaseSession,
    ChaseStatus,
    ExplicitAlpha,
    FreshAlpha,
    alpha_chase,
    any_tgd_alpha_applicable,
    justification_key,
    oblivious_chase,
    satisfies_all,
)
from repro.core import Const, DependencyError, Instance, Null, NullFactory, isomorphic
from repro.logic import parse_instance


@pytest.fixture
def example_2_1(setting_2_1, source_2_1):
    d1, d2 = setting_2_1.st_dependencies
    d3, d4 = setting_2_1.target_dependencies
    return setting_2_1, source_2_1, d1, d2, d3, d4


def values(*names):
    out = []
    for name in names:
        if isinstance(name, int):
            out.append(Null(name))
        else:
            out.append(Const(name))
    return tuple(out)


class TestExample44:
    """The three α-chases of Example 4.4, replayed exactly."""

    def test_alpha1_succeeds_with_t2(self, example_2_1, solutions_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha1 = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values(1, 3),
                (d2, values("a"), values("c")): values(2, 3),
                (d3, values(3), values("a")): values(4),
            },
            fallback=NullFactory(100),
        )
        outcome = alpha_chase(source, list(setting.all_dependencies), alpha1)
        assert outcome.successful
        _, t2, _ = solutions_2_1
        assert isomorphic(
            outcome.instance.reduct(setting.target_schema), t2
        )

    def test_alpha2_fails(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha2 = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values("b", "c"),
                (d2, values("a"), values("c")): values("b", "d"),
            },
            fallback=NullFactory(100),
        )
        outcome = alpha_chase(source, list(setting.all_dependencies), alpha2)
        assert outcome.failed

    def test_alpha3_diverges(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha3 = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values("b", 3),
                (d2, values("a"), values("c")): values("b", 4),
                (d3, values(3), values("a")): values(1),
                (d3, values(4), values("a")): values(2),
            },
            fallback=NullFactory(100),
        )
        outcome = alpha_chase(
            source, list(setting.all_dependencies), alpha3, max_steps=10_000
        )
        assert outcome.diverged


class TestManualSession:
    """Replaying Example 4.4's α₁ sequence step by step."""

    def test_replay_c_prime(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha1 = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values(1, 3),
                (d2, values("a"), values("c")): values(2, 3),
                (d3, values(3), values("a")): values(4),
            },
            fallback=NullFactory(100),
        )
        session = AlphaChaseSession(source, alpha1)
        session.apply_tgd(d1, values("a", "b"), ())
        session.apply_tgd(d2, values("a"), values("b"))
        session.apply_tgd(d2, values("a"), values("c"))
        session.apply_tgd(d3, values(3), values("a"))
        assert session.is_successful_result(list(setting.all_dependencies))

    def test_premise_must_hold(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = ExplicitAlpha({}, fallback=NullFactory(100))
        session = AlphaChaseSession(source, alpha)
        with pytest.raises(DependencyError):
            session.apply_tgd(d1, values("q", "q"), ())

    def test_cannot_reapply_satisfied_justification(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = ExplicitAlpha({}, fallback=NullFactory(100))
        session = AlphaChaseSession(source, alpha)
        session.apply_tgd(d1, values("a", "b"), ())
        with pytest.raises(DependencyError):
            session.apply_tgd(d1, values("a", "b"), ())

    def test_failing_egd_application(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = ExplicitAlpha(
            {
                (d2, values("a"), values("b")): values("b", "c"),
                (d2, values("a"), values("c")): values("b", "d"),
            },
            fallback=NullFactory(100),
        )
        session = AlphaChaseSession(source, alpha)
        session.apply_tgd(d2, values("a"), values("b"))
        session.apply_tgd(d2, values("a"), values("c"))
        assert not session.apply_egd(d4, Const("c"), Const("d"))
        assert session.failed
        assert not session.is_successful_result(list(setting.all_dependencies))

    def test_egd_needs_actual_violation(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = ExplicitAlpha({}, fallback=NullFactory(100))
        session = AlphaChaseSession(source, alpha)
        with pytest.raises(DependencyError):
            session.apply_egd(d4, Const("b"), Const("c"))


class TestLemma45:
    """Empirical checks of Lemma 4.5 on Example 2.1."""

    def test_successful_chase_result_is_unique(self, example_2_1):
        """The engine's result for α₁ does not depend on dependency order."""
        setting, source, d1, d2, d3, d4 = example_2_1
        table = {
            (d2, values("a"), values("b")): values(1, 3),
            (d2, values("a"), values("c")): values(2, 3),
            (d3, values(3), values("a")): values(4),
        }
        forward = alpha_chase(
            source,
            [d1, d2, d3, d4],
            ExplicitAlpha(dict(table), fallback=NullFactory(100)),
        )
        backward = alpha_chase(
            source,
            [d4, d3, d2, d1],
            ExplicitAlpha(dict(table), fallback=NullFactory(100)),
        )
        assert forward.successful and backward.successful
        assert forward.instance == backward.instance

    def test_success_means_no_applicable_tgd_and_sigma(self, example_2_1):
        # Without the egd d4, the fresh-null α admits a successful chase.
        setting, source, d1, d2, d3, d4 = example_2_1
        dependencies = [d1, d2, d3]
        alpha = FreshAlpha(NullFactory(100))
        outcome = alpha_chase(source, dependencies, alpha)
        assert outcome.successful
        assert satisfies_all(outcome.instance, dependencies)
        assert not any_tgd_alpha_applicable(
            outcome.instance, [d1, d2, d3], alpha
        )

    def test_fresh_alpha_diverges_on_example_2_1_with_egd(self, example_2_1):
        """With d4 present the fresh α admits *no* successful chase:
        the egd merges the two F-witnesses, reactivating a justification
        forever -- the α₃ mechanism of Example 4.4."""
        setting, source, *_ = example_2_1
        alpha = FreshAlpha(NullFactory(100))
        outcome = alpha_chase(source, list(setting.all_dependencies), alpha)
        assert outcome.diverged


class TestFreshAlpha:
    def test_memoized(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = FreshAlpha(NullFactory(0))
        key = (d2, values("a"), values("b"))
        assert alpha.witnesses(key) == alpha.witnesses(key)

    def test_distinct_justifications_distinct_nulls(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = FreshAlpha(NullFactory(0))
        first = alpha.witnesses((d2, values("a"), values("b")))
        second = alpha.witnesses((d2, values("a"), values("c")))
        assert not set(first) & set(second)

    def test_oblivious_chase_fires_per_justification(self, example_2_1):
        """Unlike the standard chase, the justification (d2, a, c) fires
        even though (d2, a, b) already satisfied ∃z̄ψ.  (The egd d4 is
        omitted; with it the fresh α has no successful chase.)"""
        setting, source, d1, d2, d3, d4 = example_2_1
        outcome, alpha = oblivious_chase(source, [d1, d2, d3])
        result = outcome.require_success().reduct(setting.target_schema)
        assert result.count_of("E") == 3  # E(a,b), E(a,⊥), E(a,⊥')

    def test_explicit_alpha_without_fallback_raises(self, example_2_1):
        setting, source, d1, d2, d3, d4 = example_2_1
        alpha = ExplicitAlpha({})
        with pytest.raises(DependencyError):
            alpha_chase(source, list(setting.all_dependencies), alpha)


class TestWeaklyButNotRichlyAcyclic:
    """The discussion after Proposition 7.4: for *weakly* acyclic
    settings the fresh-null α may admit no finite chase at all, because
    a tgd with premise-only variables ȳ generates a fresh justification
    for every new ȳ-tuple.  Rich acyclicity forbids exactly this."""

    @pytest.fixture
    def feedback_setting(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        return DataExchangeSetting.from_strings(
            Schema.of(S0=2),
            Schema.of(E=2, F=2),
            ["S0(x, y) -> E(x, y)"],
            [
                "E(x, y) -> exists z . F(x, z)",
                "F(x, y) -> E(x, y)",
            ],
        )

    def test_classification(self, feedback_setting):
        assert feedback_setting.is_weakly_acyclic
        assert not feedback_setting.is_richly_acyclic

    def test_fresh_alpha_chase_is_infinite(self, feedback_setting):
        """Each F-null feeds a new E-atom, whose ȳ-value is a new
        justification: the fresh-α chase never stops."""
        outcome, _ = oblivious_chase(
            parse_instance("S0('a','b')"),
            list(feedback_setting.all_dependencies),
            max_steps=200,
        )
        assert outcome.diverged

    def test_standard_chase_terminates_fine(self, feedback_setting):
        """The *standard* chase (weak acyclicity's guarantee) stops."""
        from repro.chase import standard_chase

        outcome = standard_chase(
            parse_instance("S0('a','b')"),
            list(feedback_setting.all_dependencies),
        )
        assert outcome.successful

    def test_cwa_solutions_still_exist(self, feedback_setting):
        """Existence is untouched (Corollary 5.2 via the core)."""
        from repro.cwa import core_solution, is_cwa_solution

        source = parse_instance("S0('a','b')")
        minimal = core_solution(feedback_setting, source)
        assert minimal is not None
        assert is_cwa_solution(feedback_setting, source, minimal)


class TestLemma45Randomized:
    """Lemma 4.5 on randomly drawn α tables over Example 2.1."""

    def _random_alpha(self, setting, rng):
        d1, d2 = setting.st_dependencies
        d3, d4 = setting.target_dependencies
        pool = [Const("a"), Const("b"), Const("c"), Null(1), Null(2), Null(3)]
        table = {}
        for v in (Const("b"), Const("c")):
            table[(d2, (Const("a"),), (v,))] = (
                rng.choice(pool),
                rng.choice(pool),
            )
        return ExplicitAlpha(table, fallback=NullFactory(50))

    def test_verdict_and_result_independent_of_order(self, setting_2_1, source_2_1):
        import random

        dependencies = list(setting_2_1.all_dependencies)
        reordered = list(reversed(dependencies))
        for seed in range(12):
            rng = random.Random(seed)
            table_alpha = self._random_alpha(setting_2_1, rng)
            rng = random.Random(seed)
            table_alpha_again = self._random_alpha(setting_2_1, rng)
            forward = alpha_chase(
                source_2_1, dependencies, table_alpha, max_steps=2_000
            )
            backward = alpha_chase(
                source_2_1, reordered, table_alpha_again, max_steps=2_000
            )
            assert forward.status == backward.status, seed
            if forward.successful:
                # Fallback nulls are assigned on demand, so the two runs
                # may name them differently: compare up to renaming.
                assert isomorphic(forward.instance, backward.instance), seed


class TestEgdLoopDetection:
    def test_fresh_alpha_with_egd_can_loop(self):
        """The mechanism of Example 4.4/α₃: an egd erases a witness,
        reactivating its justification forever."""
        from repro.exchange import DataExchangeSetting
        from repro.core import Schema

        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
            ["F(x, y) & F(x, z) -> y = z"],
        )
        source = parse_instance("N('a','b'), N('a','c')")
        outcome, _ = oblivious_chase(
            source, list(setting.all_dependencies), max_steps=5_000
        )
        assert outcome.diverged
        assert "revisited" in outcome.reason or "exceeded" in outcome.reason
