"""Smoke tests: every example script runs and prints its key claims.

These are integration tests of the public API as the examples use it;
they keep `examples/` honest as the library evolves.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "T1: solution=True, universal=False" in output
        assert "T3: solution=True, universal=True" in output
        assert "[('a', 'b')]" in output

    def test_university_exchange(self):
        output = run_example("university_exchange.py")
        assert "Core (minimal CWA-solution)" in output
        assert "kolaitis" in output
        assert "'libkin'" in output or "libkin" in output

    def test_anomalies(self):
        output = run_example("anomalies.py")
        assert "only 9 answers" in output
        assert "18 answers" in output

    def test_exponential_solutions(self):
        output = run_example("exponential_solutions.py")
        assert "|CWA-solutions| = 4  (= 4^1)" in output
        assert "|CWA-solutions| = 16  (= 4^2)" in output
        assert "a maximal CWA-solution exists: False" in output

    def test_alpha_chase_tour(self):
        output = run_example("alpha_chase_tour.py")
        assert "α1: success" in output
        assert "α2: failure" in output
        assert "α3: diverged" in output

    def test_datalog_reachability(self):
        output = run_example("datalog_reachability.py")
        assert "malmo" in output
        assert "munich" in output

    @pytest.mark.slow
    def test_turing_halting(self):
        output = run_example("turing_halting.py")
        assert "match: True" in output
        assert "is a solution:       True" in output
        assert "NEXT chain visits" in output
