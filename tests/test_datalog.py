"""Tests for the datalog engine and datalog certain answers."""

import pytest

from repro.answering import datalog_certain_answers, ucq_certain_answers
from repro.core import Atom, Const, Null, RelationSymbol, Schema, UnsupportedQueryError
from repro.exchange import DataExchangeSetting
from repro.logic import DatalogProgram, parse_instance, parse_program, parse_query, parse_rule

REACH = """
reach(x) :- start(x).
reach(y) :- reach(x), edge(x, y).
"""


class TestParsing:
    def test_parse_rule(self):
        rule = parse_rule("reach(y) :- reach(x), edge(x, y)")
        assert rule.head.relation.name == "reach"
        assert len(rule.body) == 2

    def test_trailing_dot_ok(self):
        assert parse_rule("p(x) :- q(x).").head.relation.name == "p"

    def test_unsafe_rule_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            parse_rule("p(x, y) :- q(x)")

    def test_bodyless_rule_rejected(self):
        from repro.core import ParseError

        with pytest.raises((UnsupportedQueryError, ParseError)):
            parse_rule("p(x) :- ")

    def test_parse_program_with_comments(self):
        program = parse_program(
            "% reachability\n" + REACH + "# done", goal="reach"
        )
        assert len(program.rules) == 2
        assert program.is_recursive

    def test_goal_must_occur(self):
        with pytest.raises(UnsupportedQueryError):
            parse_program(REACH, goal="nope")

    def test_empty_program_rejected(self):
        from repro.core import ParseError

        with pytest.raises(ParseError):
            parse_program("% nothing here", goal="p")

    def test_nonrecursive_detection(self):
        program = parse_program("p(x) :- q(x), r(x).", goal="p")
        assert not program.is_recursive


class TestEvaluation:
    def test_transitive_closure(self):
        program = parse_program(REACH, goal="reach")
        instance = parse_instance(
            "start('a'), edge('a','b'), edge('b','c'), edge('d','e')"
        )
        answers = program.certain_part(instance)
        assert answers == frozenset(
            {(Const("a"),), (Const("b"),), (Const("c"),)}
        )

    def test_constants_in_rules(self):
        program = parse_program("p(x) :- edge('a', x).", goal="p")
        instance = parse_instance("edge('a','b'), edge('c','d')")
        assert program.certain_part(instance) == frozenset({(Const("b"),)})

    def test_nulls_flow_but_are_dropped_from_certain(self):
        program = parse_program(REACH, goal="reach")
        instance = parse_instance("start('a'), edge('a', #1), edge(#1, 'c')")
        naive = program.answers(instance)
        assert (Null(1),) in naive
        assert (Const("c"),) in naive
        certain = program.certain_part(instance)
        assert certain == frozenset({(Const("a"),), (Const("c"),)})

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(x) :- zero(x).
            odd(y)  :- even(x), succ(x, y).
            even(y) :- odd(x), succ(x, y).
            """,
            goal="even",
        )
        instance = parse_instance(
            "zero('0'), succ('0','1'), succ('1','2'), succ('2','3'), succ('3','4')"
        )
        evens = {answer[0].name for answer in program.certain_part(instance)}
        assert evens == {"0", "2", "4"}

    def test_input_instance_not_mutated(self):
        program = parse_program(REACH, goal="reach")
        instance = parse_instance("start('a'), edge('a','b')")
        program.evaluate(instance)
        assert len(instance) == 2

    def test_cyclic_data_terminates(self):
        program = parse_program(REACH, goal="reach")
        instance = parse_instance(
            "start('a'), edge('a','b'), edge('b','a')"
        )
        assert len(program.certain_part(instance)) == 2


class TestDatalogCertainAnswers:
    @pytest.fixture
    def reachability_setting(self):
        return DataExchangeSetting.from_strings(
            Schema.of(Road=2, City=1),
            Schema.of(Link=2, Hub=1),
            [
                "Road(x, y) -> Link(x, y)",
                "City(x) -> exists y . Link(x, y)",
                "City(x) -> Hub(x)",
            ],
            [],
        )

    def test_theorem_7_6_extended_to_datalog(self, reachability_setting):
        source = parse_instance(
            "Road('a','b'), Road('b','c'), City('a'), City('q')"
        )
        program = parse_program(
            """
            reach(x) :- Hub(x).
            reach(y) :- reach(x), Link(x, y).
            """,
            goal="reach",
        )
        answers = datalog_certain_answers(
            reachability_setting, source, program
        )
        names = {answer[0].name for answer in answers}
        # q's Link-target is a null: dropped; a,b,c are certain.
        assert names == {"a", "b", "c", "q"}

    def test_same_on_every_cwa_solution(self, setting_2_1, source_2_1):
        """Lemma 7.7 for datalog: every CWA-solution gives the same
        certain answers."""
        from repro.cwa import enumerate_cwa_solutions

        program = parse_program(
            """
            conn(x, y) :- E(x, y).
            conn(x, z) :- conn(x, y), F(y, z).
            """,
            goal="conn",
        )
        results = {
            datalog_certain_answers(
                setting_2_1, source_2_1, program, solution=solution
            )
            for solution in enumerate_cwa_solutions(setting_2_1, source_2_1)
        }
        assert len(results) == 1

    def test_nonrecursive_program_matches_ucq(self, setting_2_1, source_2_1):
        """A non-recursive program unfolds to a UCQ; both paths agree."""
        program = parse_program(
            """
            q(x) :- E(x, y).
            q(x) :- F(x, y).
            """,
            goal="q",
        )
        via_datalog = datalog_certain_answers(setting_2_1, source_2_1, program)
        via_ucq = ucq_certain_answers(
            setting_2_1,
            source_2_1,
            parse_query("Q(x) :- E(x, y) ; Q(x) :- F(x, y)"),
        )
        assert via_datalog == via_ucq

    def test_no_solution_raises(self):
        from repro.answering import NoCwaSolutionError

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        program = parse_program("p(x) :- Tgt(x, y).", goal="p")
        with pytest.raises(NoCwaSolutionError):
            datalog_certain_answers(setting, source, program)
