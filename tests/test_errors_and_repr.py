"""Coverage for the error hierarchy and human-facing representations."""

import pytest

from repro.core import (
    ArityError,
    ChaseDivergence,
    ChaseFailure,
    Const,
    DependencyError,
    Instance,
    Null,
    ParseError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
    atom,
    RelationSymbol,
)
from repro.core.errors import NotASolutionError
from repro.dependencies import parse_dependency
from repro.logic import parse_instance, parse_query

E = RelationSymbol("E", 2)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            ArityError,
            ParseError,
            DependencyError,
            NotASolutionError,
            UnsupportedQueryError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_arity_is_schema_error(self):
        assert issubclass(ArityError, SchemaError)

    def test_chase_failure_carries_context(self):
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        failure = ChaseFailure(egd, Const("a"), Const("b"))
        assert failure.left == Const("a")
        assert "a = b" in str(failure)

    def test_chase_divergence_carries_steps(self):
        divergence = ChaseDivergence(42)
        assert divergence.steps == 42
        assert "42" in str(divergence)

    def test_parse_error_points_at_position(self):
        error = ParseError("bad token", "E(x @ y)", 5)
        message = str(error)
        assert "E(x @ y)" in message
        assert "^" in message


class TestRepresentations:
    def test_instance_repr_sorted(self):
        inst = parse_instance("E('b','a'), E('a','b')")
        assert repr(inst) == "Instance({E(a, b), E(b, a)})"

    def test_empty_instance_repr(self):
        assert repr(Instance()) == "Instance(∅)"

    def test_pretty_groups_by_relation(self):
        inst = parse_instance("E('a','b'), P('a')")
        lines = inst.pretty().splitlines()
        assert len(lines) == 2

    def test_pretty_empty(self):
        assert "empty" in Instance().pretty()

    def test_dependency_reprs(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        assert "∃z" in repr(tgd)
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        assert "y = z" in repr(egd)

    def test_query_reprs(self):
        assert ":-" in repr(parse_query("Q(x) :- E(x, y)"))
        assert "∪" in repr(parse_query("Q(x) :- E(x, y) ; Q(x) :- E(y, x)"))
        assert ":=" in repr(parse_query("Q(x) := exists y . E(x, y)"))

    def test_substitution_repr(self):
        from repro.core import Substitution, Variable

        sub = Substitution({Variable("x"): Const("a")})
        assert "x ↦ a" in repr(sub)

    def test_setting_repr(self, setting_2_1):
        text = repr(setting_2_1)
        assert "Σ_st" in text and "Σ_t" in text

    def test_exchange_result_reprs(self, setting_2_1, source_2_1):
        from repro.exchange import solve

        result = solve(setting_2_1, source_2_1)
        assert "|core|" in repr(result)

    def test_no_solution_result_repr(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting, solve

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        result = solve(setting, parse_instance("Src('a','b'), Src('a','c')"))
        assert "no solution" in repr(result)

    def test_alpha_repr_objects(self):
        from repro.chase import ChaseStep
        from repro.dependencies import parse_dependency

        tgd = parse_dependency("E(x, y) -> F(y, x)")
        step = ChaseStep("tgd", tgd, added=(atom(E, "a", "b"),))
        assert "add" in repr(step)
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        merge = ChaseStep("egd", egd, merged=(Null(3), Const("a")))
        assert ":=" in repr(merge)
