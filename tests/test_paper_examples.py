"""Integration test: the complete Example 2.1 / 4.4 / 4.9 walkthrough.

Every claim the paper makes about its running example, checked in one
place -- the library-level "does the reproduction reproduce" test.
"""

import pytest

from repro.chase import ChaseStatus, ExplicitAlpha, alpha_chase
from repro.core import Const, Null, NullFactory, isomorphic
from repro.cwa import (
    core_solution,
    enumerate_cwa_solutions,
    find_alpha,
    is_cwa_presolution,
    is_cwa_solution,
)
from repro.exchange import solve
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_solutions,
    example_2_1_source,
    example_4_9_non_solutions,
)
from repro.homomorphism import find_homomorphism, has_homomorphism


@pytest.fixture(scope="module")
def world():
    setting = example_2_1_setting()
    source = example_2_1_source()
    t1, t2, t3 = example_2_1_solutions()
    return setting, source, t1, t2, t3


class TestSection2Claims(object):
    def test_t1_t2_t3_are_solutions(self, world):
        setting, source, t1, t2, t3 = world
        for target in (t1, t2, t3):
            assert setting.is_solution(source, target)

    def test_t2_t3_universal_t1_not(self, world):
        setting, source, t1, t2, t3 = world
        assert not setting.is_universal_solution(source, t1)
        assert setting.is_universal_solution(source, t2)
        assert setting.is_universal_solution(source, t3)

    def test_no_homomorphism_t1_to_t2(self, world):
        """The paper's reason that T1 is not universal."""
        _, _, t1, t2, _ = world
        assert find_homomorphism(t1, t2) is None

    def test_core_is_t3(self, world):
        setting, source, _, _, t3 = world
        assert isomorphic(core_solution(setting, source), t3)

    def test_homomorphisms_among_universal_solutions(self, world):
        _, _, _, t2, t3 = world
        assert has_homomorphism(t2, t3) and has_homomorphism(t3, t2)


class TestSection3Claims(object):
    def test_libkin_presolutions_are_not_solutions_here(self, world):
        """The three CWA-solutions in the sense of [12] (without target
        dependencies) violate Σt: the motivation for this paper."""
        from repro.logic import parse_instance

        setting, source, *_ = world
        libkin_solutions = [
            parse_instance("E('a','b'), F('a',#1)"),
            parse_instance("E('a','b'), E('a',#1), F('a',#2)"),
            parse_instance("E('a','b'), E('a',#1), E('a',#2), F('a',#3)"),
        ]
        for candidate in libkin_solutions:
            assert not setting.is_solution(source, candidate)


class TestSection4Claims(object):
    def test_t2_is_cwa_solution_via_alpha1(self, world):
        setting, source, _, t2, _ = world
        alpha = find_alpha(setting, source, t2)
        assert alpha is not None
        outcome = alpha_chase(source, list(setting.all_dependencies), alpha)
        assert outcome.successful
        assert outcome.instance == source.union(t2)

    def test_example_4_9_classification(self, world):
        setting, source, *_ = world
        t_prime, t_double_prime = example_4_9_non_solutions()
        # T': presolution, not universal, hence no CWA-solution.
        assert is_cwa_presolution(setting, source, t_prime)
        assert not is_cwa_solution(setting, source, t_prime)
        # T'': universal, not a presolution, hence no CWA-solution.
        assert setting.is_universal_solution(source, t_double_prime)
        assert not is_cwa_solution(setting, source, t_double_prime)

    def test_t_prime_fact_does_not_follow(self, world):
        """The fact ∃x (F(a,x) ∧ G(x,b)) holds in T' but not in T2 --
        the paper's witness that T' violates CWA3."""
        from repro.logic import parse_query

        _, _, _, t2, _ = world
        t_prime, _ = example_4_9_non_solutions()
        fact = parse_query("Q() :- F('a', x), G(x, 'b')")
        assert fact.holds_in(t_prime)
        assert not fact.holds_in(t2)


class TestSection5Claims(object):
    def test_solution_space(self, world):
        setting, source, _, t2, t3 = world
        solutions = enumerate_cwa_solutions(setting, source)
        assert any(isomorphic(s, t2) for s in solutions)
        assert any(isomorphic(s, t3) for s in solutions)
        minimal = core_solution(setting, source)
        for solution in solutions:
            assert has_homomorphism(minimal, solution)


class TestEndToEnd(object):
    def test_solve_pipeline(self, world):
        setting, source, _, _, t3 = world
        result = solve(setting, source)
        assert result.cwa_solution_exists
        assert isomorphic(result.cwa_solution, t3)
        assert is_cwa_solution(setting, source, result.cwa_solution)
