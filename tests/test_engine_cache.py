"""The content-addressed result cache: storage, LRU, invalidation."""

import json

import pytest

import repro.obs as obs
from repro.core import Atom, Const, Instance, Null, RelationSymbol
from repro.engine import CACHE_SCHEMA, CACHE_VERSION, ResultCache
from repro.engine.fingerprint import task_key
from repro.exchange.solve import solve
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
)

E = RelationSymbol("E", 2)

KEY = task_key("test", "payload-one")
OTHER = task_key("test", "payload-two")


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def counters():
    return obs.snapshot().get("counters", {})


class TestStorage:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("solve", KEY) is None
        cache.put("solve", KEY, {"answer": 42})
        assert cache.get("solve", KEY) == {"answer": 42}
        found = counters()
        assert found["engine.cache.misses"] == 1
        assert found["engine.cache.hits"] == 1
        assert found["engine.cache.writes"] == 1

    def test_persists_across_cache_objects(self, tmp_path):
        ResultCache(tmp_path).put("solve", KEY, {"answer": 42})
        reopened = ResultCache(tmp_path)
        assert reopened.get("solve", KEY) == {"answer": 42}
        # Second object had an empty memory tier: that was a disk hit.
        assert counters().get("engine.cache.memory_hits", 0) == 0

    def test_kinds_are_disjoint(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("solve", KEY, {"kind": "solve"})
        assert cache.get("answers", KEY) is None

    def test_versioned_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("solve", KEY, {})
        assert path == (
            tmp_path / "repro.engine" / "cache" / CACHE_VERSION
            / "solve" / KEY[:2] / f"{KEY}.json"
        )
        assert json.loads(path.read_text())["schema"] == CACHE_SCHEMA

    def test_len_counts_disk_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("solve", KEY, {})
        cache.put("answers", OTHER, {})
        assert len(cache) == 2


class TestCorruptionTolerance:
    def test_corrupted_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=0)
        path = cache.put("solve", KEY, {"answer": 42})
        path.write_text("{not json", encoding="utf-8")
        assert cache.get("solve", KEY) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=0)
        path = cache.put("solve", KEY, {"answer": 42})
        entry = json.loads(path.read_text())
        entry["schema"] = "repro.engine/v0"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get("solve", KEY) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=0)
        path = cache.put("solve", KEY, {"answer": 42})
        target = cache.path_for("solve", OTHER)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text(), encoding="utf-8")
        assert cache.get("solve", OTHER) is None


class TestMemoryTier:
    def test_lru_eviction(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=2)
        keys = [task_key("test", str(i)) for i in range(3)]
        for index, key in enumerate(keys):
            cache.put("solve", key, {"i": index})
        assert cache.memory_size() == 2
        assert counters()["engine.cache.evictions"] == 1
        # The evicted entry still hits, from disk.
        assert cache.get("solve", keys[0]) == {"i": 0}

    def test_get_promotes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=2)
        first, second, third = (task_key("test", str(i)) for i in range(3))
        cache.put("solve", first, {"i": 0})
        cache.put("solve", second, {"i": 1})
        cache.get("solve", first)  # now most recent
        cache.put("solve", third, {"i": 2})  # evicts `second`
        obs.reset()
        cache.get("solve", first)
        assert counters().get("engine.cache.memory_hits", 0) == 1

    def test_zero_slots_disables_memory(self, tmp_path):
        cache = ResultCache(tmp_path, memory_slots=0)
        cache.put("solve", KEY, {"answer": 42})
        assert cache.memory_size() == 0
        assert cache.get("solve", KEY) == {"answer": 42}


class TestInvalidation:
    def test_single_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("solve", KEY, {})
        cache.put("solve", OTHER, {})
        assert cache.invalidate("solve", KEY) == 1
        assert cache.get("solve", KEY) is None
        assert cache.get("solve", OTHER) == {}

    def test_whole_kind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("solve", KEY, {})
        cache.put("answers", KEY, {})
        assert cache.invalidate("solve") == 1
        assert cache.get("solve", KEY) is None
        assert cache.get("answers", KEY) == {}

    def test_clear_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("solve", KEY, {})
        cache.put("answers", OTHER, {})
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.memory_size() == 0

    def test_key_without_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).invalidate(key=KEY)


class TestSolveIntegration:
    def test_warm_solve_skips_chase(self, tmp_path):
        setting = example_2_1_setting()
        source = example_2_1_source()
        cache = ResultCache(tmp_path)
        cold = solve(setting, source, cache=cache)
        obs.reset()
        warm = solve(setting, source, cache=cache)
        found = counters()
        assert found["solve.cache_hits"] == 1
        # No chase ran: its firing counters never moved.
        assert all(
            value == 0
            for name, value in found.items()
            if name.startswith("chase.")
        )
        assert warm.canonical_solution == cold.canonical_solution
        assert warm.core_solution == cold.core_solution
        assert warm.chase_steps == cold.chase_steps

    def test_compute_core_upgrade(self, tmp_path):
        setting = example_2_1_setting()
        source = example_2_1_source()
        cache = ResultCache(tmp_path)
        partial = solve(setting, source, cache=cache, compute_core=False)
        assert partial.core_solution is None
        upgraded = solve(setting, source, cache=cache, compute_core=True)
        assert upgraded.core_solution is not None
        # The upgraded entry now serves full results directly.
        obs.reset()
        warm = solve(setting, source, cache=cache, compute_core=True)
        assert warm.core_solution == upgraded.core_solution
        assert all(
            value == 0
            for name, value in counters().items()
            if name.startswith("core.")
        )

    def test_isomorphic_sources_share_an_entry(self, tmp_path):
        setting = example_2_1_setting()
        source = example_2_1_source()
        cache = ResultCache(tmp_path)
        solve(setting, source, cache=cache)
        obs.reset()
        # Same atoms, different insertion order: same canonical key.
        reordered = Instance(list(reversed(sorted(source))))
        solve(setting, reordered, cache=cache)
        assert counters()["solve.cache_hits"] == 1

    def test_failed_chase_verdict_is_cached(self, tmp_path):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting
        from repro.logic import parse_instance

        setting = DataExchangeSetting.from_strings(
            Schema.of(M=2),
            Schema.of(Dept=2),
            ["M(d, m) -> Dept(d, m)"],
            ["Dept(d, m1) & Dept(d, m2) -> m1 = m2"],
        )
        source = parse_instance("M('d1', 'ann'), M('d1', 'bob')")
        cache = ResultCache(tmp_path)
        first = solve(setting, source, cache=cache)
        assert not first.cwa_solution_exists
        obs.reset()
        again = solve(setting, source, cache=cache)
        assert not again.cwa_solution_exists
        assert counters()["solve.cache_hits"] == 1
