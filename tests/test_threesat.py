"""Tests for the 3-SAT reduction behind Theorem 7.5 (co-NP-hardness)."""

import pytest

from repro.cwa import core_solution
from repro.reductions.threesat import (
    ThreeSat,
    decide_sat_via_maybe_answers,
    decide_unsat_via_certain_answers,
    encode_formula,
    random_formula,
    sat_witness_query,
    threesat_setting,
    unsat_query,
    unsatisfiable_formula,
)


class TestFormulaSubstrate:
    def test_evaluate(self):
        formula = ThreeSat([(("x", "+"), ("y", "-"), ("z", "+"))])
        assert formula.evaluate({"x": True, "y": True, "z": False})
        assert not formula.evaluate({"x": False, "y": True, "z": False})

    def test_satisfiable_search(self):
        formula = ThreeSat([(("x", "+"), ("x", "+"), ("x", "+"))])
        assert formula.satisfying_assignment() == {"x": True}

    def test_unsatisfiable_family(self):
        formula = unsatisfiable_formula()
        assert len(formula.clauses) == 8
        assert not formula.satisfiable

    def test_random_formula_reproducible(self):
        assert repr(random_formula(4, 6, seed=1)) == repr(
            random_formula(4, 6, seed=1)
        )

    def test_bad_sign_rejected(self):
        with pytest.raises(ValueError):
            ThreeSat([(("x", "?"), ("y", "+"), ("z", "+"))])


class TestReductionPlumbing:
    def test_setting_has_no_target_dependencies(self):
        setting = threesat_setting()
        assert not setting.has_target_constraints
        assert setting.is_richly_acyclic

    def test_encoding_size(self):
        formula = ThreeSat([(("x", "+"), ("y", "+"), ("z", "-"))])
        source = encode_formula(formula)
        # 1 init + 3 variables + 1 clause.
        assert len(source) == 5

    def test_query_shape(self):
        query = unsat_query()
        assert query.arity == 0
        counts = sorted(len(d.inequalities) for d in query.disjuncts)
        assert counts == [0, 2]

    def test_core_keeps_one_null_per_variable(self):
        formula = ThreeSat([(("x", "+"), ("y", "+"), ("z", "-"))])
        setting = threesat_setting()
        minimal = core_solution(setting, encode_formula(formula))
        # 3 variable nulls plus the two reference nulls.
        assert len(minimal.nulls()) == 5


class TestReductionCorrectness:
    def test_unsatisfiable_yields_certain_true(self):
        formula = unsatisfiable_formula()
        assert decide_unsat_via_certain_answers(formula)

    def test_satisfiable_yields_certain_false(self):
        formula = ThreeSat([(("x", "+"), ("y", "+"), ("z", "+"))])
        assert not decide_unsat_via_certain_answers(formula)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce_sat(self, seed):
        formula = random_formula(3, 5, seed=seed)
        expected = not formula.satisfiable
        assert decide_unsat_via_certain_answers(formula) == expected

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_potential_certain_agrees(self, seed):
        formula = random_formula(3, 4, seed=seed)
        certain = decide_unsat_via_certain_answers(formula)
        potential = decide_unsat_via_certain_answers(
            formula, semantics="potential_certain"
        )
        assert certain == potential == (not formula.satisfiable)

    def test_fast_anchor_mode_agrees_with_sound_default(self):
        """The empty-anchor optimization gives the same verdicts as the
        fully general (slower) valuation pool."""
        for seed in range(3):
            formula = random_formula(2, 3, seed=seed)
            fast = decide_unsat_via_certain_answers(formula, fast_anchors=True)
            slow = decide_unsat_via_certain_answers(formula, fast_anchors=False)
            assert fast == slow

    def test_maybe_side_np_reduction(self):
        """The NP half (Theorem 7.5 / Prop 7.4): φ satisfiable ⟺
        maybe◇(¬Q, S_φ) holds."""
        for seed in range(4):
            formula = random_formula(3, 5, seed=seed)
            assert (
                decide_sat_via_maybe_answers(formula) == formula.satisfiable
            )

    def test_maybe_and_certain_are_complementary(self):
        formula = unsatisfiable_formula()
        assert decide_unsat_via_certain_answers(formula)
        assert not decide_sat_via_maybe_answers(formula)

    def test_sat_witness_query_is_fo(self):
        from repro.logic.queries import FirstOrderQuery

        assert isinstance(sat_witness_query(), FirstOrderQuery)

    def test_single_variable_contradiction(self):
        formula = ThreeSat(
            [
                (("x", "+"), ("x", "+"), ("x", "+")),
                (("x", "-"), ("x", "-"), ("x", "-")),
            ]
        )
        assert not formula.satisfiable
        assert decide_unsat_via_certain_answers(formula)
