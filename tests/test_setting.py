"""Tests for DataExchangeSetting validation and solution checking."""

import pytest

from repro.core import DependencyError, Instance, Null, Schema, SchemaError, atom, RelationSymbol
from repro.exchange import (
    DataExchangeSetting,
    copy_instance,
    copying_setting,
    copying_setting_with_domain,
)
from repro.logic import parse_instance


class TestConstruction:
    def test_schemas_must_be_disjoint(self):
        with pytest.raises(SchemaError):
            DataExchangeSetting(Schema.of(E=2), Schema.of(E=2), [])

    def test_st_premise_must_be_source(self):
        with pytest.raises(DependencyError):
            DataExchangeSetting.from_strings(
                Schema.of(M=2), Schema.of(E=2), ["E(x, y) -> E(x, y)"]
            )

    def test_st_conclusion_must_be_target(self):
        with pytest.raises(DependencyError):
            DataExchangeSetting.from_strings(
                Schema.of(M=2), Schema.of(E=2), ["M(x, y) -> M(x, y)"]
            )

    def test_target_dependency_must_be_target_only(self):
        from repro.core import ParseError

        with pytest.raises((DependencyError, ParseError)):
            DataExchangeSetting.from_strings(
                Schema.of(M=2),
                Schema.of(E=2),
                ["M(x, y) -> E(x, y)"],
                ["M(x, y) -> E(x, y)"],
            )

    def test_egd_in_st_rejected(self):
        with pytest.raises(DependencyError):
            DataExchangeSetting.from_strings(
                Schema.of(M=2),
                Schema.of(E=2),
                ["M(x, y) & M(x, z) -> y = z"],
            )

    def test_unknown_relation_rejected(self):
        from repro.core import ParseError

        with pytest.raises(ParseError):
            DataExchangeSetting.from_strings(
                Schema.of(M=2), Schema.of(E=2), ["Q(x, y) -> E(x, y)"]
            )

    def test_shape_properties(self, setting_2_1, setting_egd_only, setting_full_tgd):
        assert not setting_2_1.target_dependencies_are_egds_only
        assert setting_egd_only.target_dependencies_are_egds_only
        assert setting_full_tgd.is_full_and_egd_setting
        assert not setting_2_1.is_full_and_egd_setting

    def test_joint_schema(self, setting_2_1):
        assert len(setting_2_1.joint_schema) == 5

    def test_tgd_egd_split(self, setting_2_1):
        assert len(setting_2_1.target_tgds) == 1
        assert len(setting_2_1.target_egds) == 1
        assert len(setting_2_1.tgds) == 3


class TestInstanceValidation:
    def test_source_with_target_relation_rejected(self, setting_2_1):
        bad = parse_instance("E('a','b')")
        with pytest.raises(SchemaError):
            setting_2_1.validate_source(bad)

    def test_source_with_nulls_rejected(self, setting_2_1):
        E = RelationSymbol("M", 2)
        bad = Instance([atom(E, "a", Null(0))])
        with pytest.raises(SchemaError):
            setting_2_1.validate_source(bad)

    def test_target_with_source_relation_rejected(self, setting_2_1):
        bad = parse_instance("M('a','b')")
        with pytest.raises(SchemaError):
            setting_2_1.validate_target(bad)

    def test_target_nulls_allowed(self, setting_2_1):
        setting_2_1.validate_target(parse_instance("E('a', #1)"))


class TestIsSolution:
    def test_paper_solutions(self, setting_2_1, source_2_1, solutions_2_1):
        for target in solutions_2_1:
            assert setting_2_1.is_solution(source_2_1, target)

    def test_missing_required_atom(self, setting_2_1, source_2_1):
        assert not setting_2_1.is_solution(
            source_2_1, parse_instance("E('a','b')")
        )

    def test_egd_violation(self, setting_2_1, source_2_1):
        bad = parse_instance(
            "E('a','b'), F('a',#1), F('a',#2), G(#1,#3), G(#2,#4)"
        )
        assert not setting_2_1.is_solution(source_2_1, bad)

    def test_universal_solutions(self, setting_2_1, source_2_1, solutions_2_1):
        t1, t2, t3 = solutions_2_1
        assert not setting_2_1.is_universal_solution(source_2_1, t1)
        assert setting_2_1.is_universal_solution(source_2_1, t2)
        assert setting_2_1.is_universal_solution(source_2_1, t3)


class TestCopyingSettings:
    def test_structure(self):
        setting = copying_setting(Schema.of(E=2, P=1))
        assert len(setting.st_dependencies) == 2
        assert not setting.has_target_constraints
        assert setting.is_richly_acyclic

    def test_copy_instance_is_solution(self):
        sigma = Schema.of(E=2, P=1)
        setting = copying_setting(sigma)
        source = parse_instance("E('a','b'), P('a')")
        copied = copy_instance(source, sigma)
        assert setting.is_solution(source, copied)
        assert setting.is_universal_solution(source, copied)

    def test_copy_is_the_only_cwa_solution(self):
        from repro.cwa import enumerate_cwa_solutions
        from repro.core import isomorphic

        sigma = Schema.of(P=1)
        setting = copying_setting(sigma)
        source = parse_instance("P('a'), P('b')")
        solutions = enumerate_cwa_solutions(setting, source)
        assert len(solutions) == 1
        assert isomorphic(solutions[0], copy_instance(source, sigma))

    def test_domain_extension(self):
        setting = copying_setting_with_domain(Schema.of(E=2))
        source = parse_instance("E('a','b')")
        canonical = setting.canonical_universal_solution(source)
        dom_atoms = canonical.atoms_of("Dom")
        assert {a.args[0].name for a in dom_atoms} == {"a", "b"}
