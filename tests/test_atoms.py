"""Unit tests for atoms and substitutions."""

import pytest

from repro.core import (
    ArityError,
    Atom,
    Const,
    Null,
    RelationSymbol,
    Substitution,
    Variable,
    atom,
)

R = RelationSymbol("R", 2)
P = RelationSymbol("P", 1)


class TestAtom:
    def test_arity_checked(self):
        with pytest.raises(ArityError):
            Atom(R, (Const("a"),))

    def test_ground_detection(self):
        assert Atom(R, (Const("a"), Null(0))).is_ground
        assert not Atom(R, (Const("a"), Variable("x"))).is_ground

    def test_nulls_constants_variables(self):
        mixed = Atom(R, (Const("a"), Null(0)))
        assert mixed.constants == frozenset({Const("a")})
        assert mixed.nulls == frozenset({Null(0)})
        pattern = Atom(R, (Variable("x"), Const("a")))
        assert pattern.variables == frozenset({Variable("x")})

    def test_substitute_partial(self):
        pattern = Atom(R, (Variable("x"), Variable("y")))
        image = pattern.substitute({Variable("x"): Const("a")})
        assert image == Atom(R, (Const("a"), Variable("y")))

    def test_rename_values(self):
        ground = Atom(R, (Null(0), Null(1)))
        renamed = ground.rename_values({Null(0): Const("a")})
        assert renamed == Atom(R, (Const("a"), Null(1)))

    def test_equality_and_hash(self):
        assert Atom(R, (Const("a"), Const("b"))) == Atom(R, (Const("a"), Const("b")))
        assert len({Atom(R, (Const("a"), Const("b")))} | {Atom(R, (Const("a"), Const("b")))}) == 1

    def test_atom_helper_coerces(self):
        assert atom(R, "a", "b") == Atom(R, (Const("a"), Const("b")))
        assert atom(P, Null(0)) == Atom(P, (Null(0),))

    def test_sorting_is_deterministic(self):
        atoms = [atom(R, "b", "a"), atom(R, "a", "b"), atom(P, "a")]
        assert sorted(atoms) == [atom(P, "a"), atom(R, "a", "b"), atom(R, "b", "a")]

    def test_repr(self):
        assert repr(atom(R, "a", Null(1))) == "R(a, ⊥1)"


class TestSubstitution:
    def test_extend_is_functional(self):
        base = Substitution()
        extended = base.extend(Variable("x"), Const("a"))
        assert Variable("x") not in base
        assert extended[Variable("x")] == Const("a")

    def test_extend_many(self):
        sub = Substitution().extend_many(
            [(Variable("x"), Const("a")), (Variable("y"), Const("b"))]
        )
        assert len(sub) == 2

    def test_apply(self):
        sub = Substitution({Variable("x"): Const("a"), Variable("y"): Null(0)})
        assert sub.apply(Atom(R, (Variable("x"), Variable("y")))) == Atom(
            R, (Const("a"), Null(0))
        )

    def test_restrict(self):
        sub = Substitution({Variable("x"): Const("a"), Variable("y"): Const("b")})
        restricted = sub.restrict([Variable("x")])
        assert Variable("x") in restricted
        assert Variable("y") not in restricted

    def test_as_tuple_preserves_order(self):
        sub = Substitution({Variable("x"): Const("a"), Variable("y"): Const("b")})
        assert sub.as_tuple([Variable("y"), Variable("x")]) == (
            Const("b"),
            Const("a"),
        )

    def test_get_default(self):
        assert Substitution().get(Variable("x")) is None

    def test_equality(self):
        left = Substitution({Variable("x"): Const("a")})
        right = Substitution({Variable("x"): Const("a")})
        assert left == right
        assert hash(left) == hash(right)
