"""Tests for dependency graphs and the acyclicity notions."""

import pytest

from repro.core import RelationSymbol
from repro.dependencies import (
    dependency_graph,
    is_richly_acyclic,
    is_weakly_acyclic,
    parse_dependency,
)


def deps(*texts):
    return [parse_dependency(text) for text in texts]


class TestEdges:
    def test_regular_edge(self):
        graph = dependency_graph(deps("E(x, y) -> F(y, x)"))
        E, F = RelationSymbol("E", 2), RelationSymbol("F", 2)
        assert ((E, 0), (F, 1)) in graph.regular_edges
        assert ((E, 1), (F, 0)) in graph.regular_edges
        assert not graph.existential_edges

    def test_existential_edge(self):
        graph = dependency_graph(deps("E(x, y) -> exists z . F(x, z)"))
        E, F = RelationSymbol("E", 2), RelationSymbol("F", 2)
        assert ((E, 0), (F, 0)) in graph.regular_edges
        assert ((E, 0), (F, 1)) in graph.existential_edges

    def test_premise_only_variables_add_nothing_in_plain_graph(self):
        graph = dependency_graph(deps("E(x, y) -> exists z . F(x, z)"))
        E, F = RelationSymbol("E", 2), RelationSymbol("F", 2)
        # y at (E, 1) contributes no edge in Definition 6.5.
        assert all(source != (E, 1) for source, _ in graph.edges)

    def test_extended_graph_adds_rich_edges(self):
        graph = dependency_graph(
            deps("E(x, y) -> exists z . F(x, z)"), extended=True
        )
        E, F = RelationSymbol("E", 2), RelationSymbol("F", 2)
        # Definition 7.3: y at (E,1) gets an existential edge to (F,1).
        assert ((E, 1), (F, 1)) in graph.existential_edges

    def test_egds_contribute_no_edges(self):
        graph = dependency_graph(deps("F(x, y) & F(x, z) -> y = z"))
        assert not graph.edges


class TestWeakAcyclicity:
    def test_empty_is_weakly_acyclic(self):
        assert is_weakly_acyclic([])

    def test_full_tgds_always_weakly_acyclic(self):
        assert is_weakly_acyclic(
            deps("E(x, y) -> F(y, x)", "F(x, y) -> E(x, y)")
        )

    def test_self_feeding_existential_is_not(self):
        assert not is_weakly_acyclic(deps("E(x, y) -> exists z . E(y, z)"))

    def test_two_step_cycle(self):
        assert not is_weakly_acyclic(
            deps("E(x, y) -> exists z . F(y, z)", "F(x, y) -> E(x, y)")
        )

    def test_acyclic_cascade(self):
        assert is_weakly_acyclic(
            deps(
                "R1(x, y) -> exists z . R2(y, z)",
                "R2(x, y) -> exists z . R3(y, z)",
            )
        )

    def test_example_2_1_target_deps(self, setting_2_1):
        assert setting_2_1.is_weakly_acyclic

    def test_example_5_3_target_deps(self, setting_5_3):
        assert setting_5_3.is_weakly_acyclic

    def test_d_emb_is_not_weakly_acyclic(self):
        from repro.reductions import d_emb_setting

        assert not d_emb_setting().is_weakly_acyclic

    def test_d_halt_is_not_weakly_acyclic(self):
        from repro.reductions import d_halt_setting

        assert not d_halt_setting().is_weakly_acyclic


class TestRichAcyclicity:
    def test_richly_implies_weakly(self):
        # A weakly-but-not-richly acyclic set: the premise-only variable
        # y feeds the existential position of F, and F feeds E's premise.
        weak_not_rich = deps(
            "E(x, y) -> exists z . F(x, z)",
            "F(x, y) -> E(x, y)",
        )
        assert is_weakly_acyclic(weak_not_rich)
        assert not is_richly_acyclic(weak_not_rich)

    def test_example_2_1_is_richly_acyclic(self, setting_2_1):
        assert setting_2_1.is_richly_acyclic

    def test_example_5_3_is_richly_acyclic(self, setting_5_3):
        assert setting_5_3.is_richly_acyclic

    def test_full_tgds_richly_acyclic(self, setting_full_tgd):
        assert setting_full_tgd.is_richly_acyclic

    def test_every_richly_acyclic_case_is_weakly_acyclic(self):
        cases = [
            [],
            deps("E(x, y) -> F(y, x)"),
            deps("E(x, y) -> exists z . F(y, z)"),
            deps("E(x, y) -> exists z . F(y, z)", "F(x, y) -> G(x, y)"),
        ]
        for case in cases:
            if is_richly_acyclic(case):
                assert is_weakly_acyclic(case)


class TestScc:
    def test_components_of_cycle(self):
        graph = dependency_graph(
            deps("E(x, y) -> F(y, x)", "F(x, y) -> E(y, x)")
        )
        components = graph.strongly_connected_components()
        sizes = sorted(len(c) for c in components)
        # (E,0),(F,1) form one SCC; (E,1),(F,0) the other.
        assert sizes == [2, 2]

    def test_self_loop_detected(self):
        # z lands in position (E,1), which is where y is read from: the
        # existential edge (E,1) -> (E,1) is a cycle by itself.
        graph = dependency_graph(deps("E(x, y) -> exists z . E(y, z)"))
        assert graph.has_existential_edge_on_cycle()

    def test_frontier_self_supply_is_acyclic(self):
        # E(x,y) -> ∃z E(x,z): the existential edge (E,0) -> (E,1) lies on
        # no cycle because nothing leaves (E,1).
        graph = dependency_graph(deps("E(x, y) -> exists z . E(x, z)"))
        assert not graph.has_existential_edge_on_cycle()

    def test_vertices(self):
        graph = dependency_graph(deps("E(x, y) -> F(y, x)"))
        assert len(graph.vertices()) == 4
