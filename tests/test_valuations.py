"""Tests for valuations, Rep_D, and □Q / ◇Q."""

import pytest

from repro.answering.valuations import (
    certain_holds_on,
    certain_on,
    count_valuations,
    default_anchors,
    fresh_constants,
    maybe_holds_on,
    maybe_on,
    rep,
    valuations,
)
from repro.core import Const, Instance, Null, atom, RelationSymbol
from repro.dependencies import parse_dependencies
from repro.logic import parse_instance, parse_query

E = RelationSymbol("E", 2)


class TestValuationEnumeration:
    def test_ground_instance_single_valuation(self):
        inst = parse_instance("E('a','b')")
        assert list(valuations(inst)) == [{}]

    def test_single_null_valuations(self):
        inst = parse_instance("E('a', #1)")
        images = {v[Null(1)] for v in valuations(inst)}
        # anchor 'a' plus one fresh constant
        assert Const("a") in images
        assert len(images) == 2

    def test_partition_structure(self):
        inst = parse_instance("E(#1, #2)")
        results = list(valuations(inst, anchors=()))
        # Two nulls, no anchors: partitions of a 2-set = 2.
        assert len(results) == 2
        patterns = {
            (v[Null(1)] == v[Null(2)]) for v in results
        }
        assert patterns == {True, False}

    def test_count_matches_enumeration(self):
        inst = parse_instance("E(#1, #2), E(#2, #3)")
        enumerated = len(list(valuations(inst, anchors=[Const("a")])))
        assert enumerated == count_valuations(3, 1)

    def test_bell_numbers_with_no_anchors(self):
        assert count_valuations(1, 0) == 1
        assert count_valuations(2, 0) == 2
        assert count_valuations(3, 0) == 5
        assert count_valuations(4, 0) == 15  # Bell numbers

    def test_fresh_constants_avoid(self):
        fresh = fresh_constants(2, [Const("_c0")])
        assert Const("_c0") not in fresh
        assert len(set(fresh)) == 2

    def test_default_anchors(self):
        inst = parse_instance("E('a', #1)")
        assert default_anchors(inst) == [Const("a")]


class TestRep:
    def test_egd_filters_worlds(self):
        # T = {E(a,#1), E(a,#2)} with a key on E: worlds must merge.
        inst = parse_instance("E('a', #1), E('a', #2)")
        deps = parse_dependencies(["E(x, y) & E(x, z) -> y = z"])
        worlds = list(rep(inst, deps))
        assert worlds
        for world in worlds:
            assert world.count_of("E") == 1

    def test_no_dependencies_all_worlds(self):
        inst = parse_instance("E('a', #1)")
        assert len(list(rep(inst, []))) == 2

    def test_full_tgd_filters_worlds(self):
        """The closed-world reading of a full target tgd: a valuation
        may not send a null outside the Bool relation of T."""
        inst = parse_instance("V('x', #1), Bool('0'), Bool('1')")
        deps = parse_dependencies(["V(v, t) -> Bool(t)"])
        worlds = list(rep(inst, deps))
        values = {next(iter(w.atoms_of("V"))).args[1] for w in worlds}
        assert values == {Const("0"), Const("1")}


class TestBoxAndDiamond:
    def test_certain_on_ground(self):
        inst = parse_instance("E('a','b')")
        query = parse_query("Q(x) :- E(x, y)")
        assert certain_on(query, inst) == frozenset({(Const("a"),)})

    def test_certain_kills_null_dependent_answers(self):
        inst = parse_instance("E('a', #1)")
        query = parse_query("Q(y) :- E('a', y)")
        # #1 could be any constant: no certain answer about y's value...
        # but every world has SOME answer, so Q(x) :- E(x,y) is certain.
        assert certain_on(query, inst) == frozenset()
        head_query = parse_query("Q(x) :- E(x, y)")
        assert certain_on(head_query, inst) == frozenset({(Const("a"),)})

    def test_maybe_contains_anchor_answers(self):
        inst = parse_instance("E('a', #1)")
        query = parse_query("Q(y) :- E('a', y)")
        answers = maybe_on(query, inst)
        assert (Const("a"),) in answers  # the world v(#1) = a

    def test_boolean_certain_inequality(self):
        # E(a,#1), E(b,#2): is x≠y certain for E(x,·),E(y,·)? yes: a≠b.
        inst = parse_instance("E('a', #1), E('b', #2)")
        query = parse_query("Q() :- E(x, u), E(y, w), x != y")
        assert certain_on(query, inst)

    def test_boolean_not_certain_when_nulls_may_merge(self):
        inst = parse_instance("E('a', #1), E('a', #2)")
        query = parse_query("Q() :- E(x, u), E(x, w), u != w")
        # The world #1 = #2 has no distinct pair.
        assert not certain_on(query, inst)
        assert maybe_on(query, inst)

    def test_query_constants_join_pool(self):
        inst = parse_instance("P(#1)")
        query = parse_query("Q() :- P('q')")
        # some world maps #1 to q
        assert maybe_on(query, inst)
        assert not certain_on(query, inst)

    def test_certain_holds_on_membership(self):
        inst = parse_instance("E('a', #1)")
        query = parse_query("Q(x) :- E(x, y)")
        assert certain_holds_on(query, (Const("a"),), inst)
        assert not certain_holds_on(query, (Const("z"),), inst)

    def test_maybe_holds_on_membership(self):
        inst = parse_instance("E('a', #1)")
        query = parse_query("Q(y) :- E('a', y)")
        assert maybe_holds_on(query, (Const("zebra"),), inst)

    def test_egd_constrained_certain(self):
        """With a key egd, only merged worlds remain: P and R sharing a
        value becomes certain."""
        inst = parse_instance("E('a', #1), E('a', #2), P(#1), R(#2)")
        deps = parse_dependencies(["E(x, y) & E(x, z) -> y = z"])
        query = parse_query("Q() :- P(w), R(w)")
        assert certain_on(query, inst, deps)
        assert not certain_on(query, inst)  # without the egd filter
