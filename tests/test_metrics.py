"""Tests for :mod:`repro.obs.metrics` -- histograms and the metrics log.

The load-bearing property is *mergeability*: bucket counts over fixed
boundaries make ``merge`` associative and commutative, so worker blobs
folded in any grouping (two workers, twenty, a tree of merges) produce
one identical aggregate.  Hypothesis drives that property directly.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    BUCKET_COUNT,
    Histogram,
    MetricsLog,
    merge_histogram_dicts,
)

values = st.floats(
    min_value=0.0, max_value=1.0e4, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(values, max_size=40)


def hist_of(samples, name="h"):
    built = Histogram(name)
    for sample in samples:
        built.record(sample)
    return built


class TestHistogramBasics:
    def test_bucket_bounds_are_strictly_increasing(self):
        assert all(
            low < high for low, high in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:])
        )
        assert BUCKET_COUNT == len(BUCKET_BOUNDS) + 1

    def test_empty_histogram(self):
        empty = Histogram("e")
        assert empty.count == 0
        assert empty.sum == 0.0
        assert empty.quantile(0.5) == 0.0
        assert empty.to_dict()["min"] == 0.0

    def test_scalar_summaries(self):
        built = hist_of([0.001, 0.010, 0.100])
        assert built.count == 3
        assert built.sum == pytest.approx(0.111)
        assert built.min == pytest.approx(0.001)
        assert built.max == pytest.approx(0.100)

    def test_single_sample_percentiles_report_that_sample(self):
        built = hist_of([0.0123])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert built.quantile(q) == pytest.approx(0.0123)

    def test_quantiles_are_monotone_and_bounded(self):
        built = hist_of([10.0 ** (-k) for k in range(1, 7)] * 3)
        quantiles = [built.quantile(q / 20.0) for q in range(21)]
        assert quantiles == sorted(quantiles)
        assert all(built.min <= q <= built.max for q in quantiles)

    def test_overflow_and_underflow_samples_are_kept(self):
        built = hist_of([0.0, 1.0e-9, 1.0e5])
        assert built.count == 3
        assert built.max == pytest.approx(1.0e5)
        assert built.quantile(1.0) == pytest.approx(1.0e5)

    def test_zero_resets_in_place(self):
        built = hist_of([0.5, 2.0])
        built.zero()
        assert built.count == 0
        assert not any(built.counts)
        built.record(0.25)
        assert built.count == 1

    def test_picklable(self):
        built = hist_of([0.001, 0.2, 3.0])
        clone = pickle.loads(pickle.dumps(built))
        assert clone.counts == built.counts
        assert clone.count == built.count
        assert clone.sum == built.sum

    def test_dict_round_trip(self):
        built = hist_of([0.004, 0.004, 1.7])
        state = json.loads(json.dumps(built.to_dict()))
        clone = Histogram.from_dict(state, "h")
        assert clone.counts == built.counts
        assert clone.count == built.count
        assert clone.min == built.min
        assert clone.max == built.max
        assert clone.p95 == pytest.approx(built.p95)


class TestMerge:
    def test_merge_equals_union_recording(self):
        first, second = [0.001, 0.050], [0.002, 0.9, 12.0]
        merged = hist_of(first).merge(hist_of(second))
        union = hist_of(first + second)
        assert merged.counts == union.counts
        assert merged.count == union.count
        assert merged.min == union.min
        assert merged.max == union.max
        assert merged.sum == pytest.approx(union.sum)

    def test_merging_empty_state_keeps_min(self):
        # An empty histogram serializes min as the 0.0 placeholder;
        # folding it in must not clobber a real observed minimum (the
        # worker-harness bug: in-place reset leaves count-0 entries
        # whose export would zero every parent span min).
        built = hist_of([0.5, 2.0])
        built.merge_dict(Histogram("empty").to_dict())
        assert built.min == pytest.approx(0.5)
        assert built.count == 2
        built.merge(Histogram("empty"))
        assert built.min == pytest.approx(0.5)

    def test_merge_dicts_matches_object_merge(self):
        first, second = hist_of([0.01, 0.3]), hist_of([0.02])
        via_dicts = merge_histogram_dicts(
            [first.to_dict(), second.to_dict()], "m"
        )
        first.merge(second)
        assert via_dicts.counts == first.counts
        assert via_dicts.count == first.count

    # The satellite property: bucket-merge associativity.  Counts,
    # min/max, and the percentiles derived from them must be *exactly*
    # grouping-independent; the float sum is compared approximately.
    @settings(max_examples=60, deadline=None)
    @given(value_lists, value_lists, value_lists)
    def test_merge_is_associative(self, a, b, c):
        left = hist_of(a).merge(hist_of(b)).merge(hist_of(c))
        right = hist_of(a).merge(hist_of(b).merge(hist_of(c)))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.min == right.min
        assert left.max == right.max
        assert left.sum == pytest.approx(right.sum)
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == pytest.approx(right.quantile(q))

    @settings(max_examples=60, deadline=None)
    @given(value_lists, value_lists)
    def test_merge_is_commutative_on_buckets(self, a, b):
        forward = hist_of(a).merge(hist_of(b))
        backward = hist_of(b).merge(hist_of(a))
        assert forward.counts == backward.counts
        assert forward.min == backward.min
        assert forward.max == backward.max

    @settings(max_examples=60, deadline=None)
    @given(value_lists)
    def test_serialized_merge_agrees_with_direct_recording(self, samples):
        half = len(samples) // 2
        via_dicts = merge_histogram_dicts(
            [
                hist_of(samples[:half]).to_dict(),
                hist_of(samples[half:]).to_dict(),
            ]
        )
        direct = hist_of(samples)
        assert via_dicts.counts == direct.counts
        assert via_dicts.count == direct.count


class TestMetricsLog:
    def test_run_records_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsLog(str(path)) as log:
            log.log_run(
                command="solve",
                status=0,
                seconds=0.5,
                snapshot={"schema": "repro.obs/v1", "counters": {"x": 1}},
                run_id="abc123",
                argv=["solve", "s", "i"],
            )
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["schema"] == "repro.obs/log/v1"
        assert record["kind"] == "run"
        assert record["command"] == "solve"
        assert record["status"] == 0
        assert record["snapshot"]["counters"]["x"] == 1
        assert record["run_id"] == "abc123"

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        for index in range(3):
            with MetricsLog(str(path)) as log:
                log.write_record({"kind": "run", "index": index})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["index"] for line in lines] == [0, 1, 2]

    def test_every_line_is_a_single_write(self, tmp_path):
        # A record is serialized to one string (including the newline)
        # and handed to one write() call -- the property that keeps
        # concurrent appenders from interleaving partial lines.
        path = tmp_path / "metrics.jsonl"
        log = MetricsLog(str(path))
        writes = []
        original = log._handle.write
        log._handle.write = lambda text: (writes.append(text), original(text))
        log.write_record({"kind": "run", "snapshot": {}})
        log._handle.write = original
        log.close()
        assert len(writes) == 1
        assert writes[0].endswith("\n")
        assert "\n" not in writes[0][:-1]
