"""Tests for the text DSL parser."""

import pytest

from repro.core import Const, Null, ParseError, Schema, Variable
from repro.logic import parse_atom, parse_formula, parse_instance, parse_query, tokenize
from repro.logic.formulas import And, Equality, Exists, Forall, Not, Or, RelationalAtom
from repro.logic.queries import ConjunctiveQuery, FirstOrderQuery, UnionOfConjunctiveQueries


class TestTokenizer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("E(x, 'a') -> y != #3")]
        assert kinds == [
            "IDENT", "LPAREN", "IDENT", "COMMA", "STRING", "RPAREN",
            "ARROW", "IDENT", "NEQ", "NULL", "EOF",
        ]

    def test_keywords(self):
        kinds = [t.kind for t in tokenize("exists forall not and or true false")]
        assert kinds[:-1] == ["EXISTS", "FORALL", "NOT", "AND", "OR", "TRUE", "FALSE"]

    def test_garbage_raises_with_position(self):
        with pytest.raises(ParseError):
            tokenize("E(x) @ F(y)")


class TestAtoms:
    def test_variables_are_bare(self):
        atom = parse_atom("E(x, y)")
        assert atom.variables == frozenset({Variable("x"), Variable("y")})

    def test_constants_quoted_or_numeric(self):
        atom = parse_atom("E('a', 42)")
        assert atom.args == (Const("a"), Const("42"))

    def test_nulls_with_hash(self):
        atom = parse_atom("P(#7)")
        assert atom.args == (Null(7),)

    def test_double_quotes(self):
        assert parse_atom('P("hello")').args == (Const("hello"),)

    def test_schema_validates_arity(self):
        with pytest.raises(ParseError):
            parse_atom("E(x)", Schema.of(E=2))

    def test_schema_validates_name(self):
        with pytest.raises(ParseError):
            parse_atom("F(x)", Schema.of(E=1))

    def test_nullary_atom(self):
        atom = parse_atom("Flag()")
        assert atom.relation.arity == 0


class TestInstances:
    def test_comma_separated(self):
        inst = parse_instance("P('a'), P('b')")
        assert len(inst) == 2

    def test_newline_and_semicolon_separators(self):
        inst = parse_instance("P('a')\nP('b'); P('c')")
        assert len(inst) == 3

    def test_trailing_comma_ok(self):
        assert len(parse_instance("P('a'),")) == 1

    def test_empty(self):
        assert len(parse_instance("")) == 0

    def test_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_instance("P(x)")

    def test_nulls_allowed(self):
        inst = parse_instance("E('a', #1)")
        assert inst.nulls() == frozenset({Null(1)})


class TestFormulas:
    def test_precedence_and_binds_tighter_than_or(self):
        formula = parse_formula("P(x) | Q(x) & R(x)")
        assert isinstance(formula, Or)

    def test_implication_is_right_associative(self):
        formula = parse_formula("P(x) -> Q(x) -> R(x)")
        # a -> (b -> c)
        assert isinstance(formula, Or)
        assert isinstance(formula.parts[0], Not)

    def test_quantifier_scope_extends_right(self):
        formula = parse_formula("exists x . P(x) & Q(x)")
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, And)

    def test_parenthesized(self):
        formula = parse_formula("(P(x) | Q(x)) & R(x)")
        assert isinstance(formula, And)

    def test_multi_variable_quantifier(self):
        formula = parse_formula("forall x, y . E(x, y)")
        assert isinstance(formula, Forall)
        assert len(formula.variables) == 2

    def test_negation_symbols(self):
        assert isinstance(parse_formula("~P(x)"), Not)
        assert isinstance(parse_formula("not P(x)"), Not)

    def test_equality_and_inequality(self):
        assert isinstance(parse_formula("x = y"), Equality)
        inequality = parse_formula("x != y")
        assert isinstance(inequality, Not)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_formula("P(x) P(y)")

    def test_unicode_connectives(self):
        formula = parse_formula("P(x) ∧ Q(x) ∨ ¬R(x)")
        assert isinstance(formula, Or)


class TestQueries:
    def test_cq(self):
        query = parse_query("Q(x) :- E(x, y)")
        assert isinstance(query, ConjunctiveQuery)
        assert query.arity == 1

    def test_cq_with_inequality(self):
        query = parse_query("Q(x) :- E(x, y), x != y")
        assert query.inequalities == ((Variable("x"), Variable("y")),)

    def test_boolean_query(self):
        query = parse_query("Q() :- E(x, y)")
        assert query.is_boolean

    def test_ucq(self):
        query = parse_query("Q(x) :- E(x, y) ; Q(x) :- E(y, x)")
        assert isinstance(query, UnionOfConjunctiveQueries)
        assert len(query.disjuncts) == 2

    def test_fo_query(self):
        query = parse_query("Q(x) := P(x) & ~exists y . E(x, y)")
        assert isinstance(query, FirstOrderQuery)

    def test_fo_query_cannot_be_unioned(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) := P(x) ; Q(x) := R(x)")

    def test_equality_not_allowed_in_cq_body(self):
        with pytest.raises(ParseError):
            parse_query("Q(x) :- E(x, y), x = y")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_query("  ")

    def test_ampersand_also_separates_body(self):
        query = parse_query("Q(x) :- E(x, y) & E(y, z)")
        assert len(query.body) == 2
