"""Determinism of the engine fingerprints.

The result cache is only sound if a key never depends on anything but
the *content* of the inputs: not on ``PYTHONHASHSEED``, not on atom
insertion order, not on the names chosen for nulls or dependencies.
"""

import subprocess
import sys

import pytest

from repro.core import Atom, Const, Instance, Null, RelationSymbol
from repro.engine import (
    answer_key,
    fingerprint_answers,
    fingerprint_dependency,
    fingerprint_instance,
    fingerprint_query,
    fingerprint_schema,
    fingerprint_setting,
    solve_key,
)
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
)
from repro.dependencies.base import parse_dependency
from repro.logic import parse_query

E = RelationSymbol("E", 2)
F = RelationSymbol("F", 2)

_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.engine import fingerprint_instance, fingerprint_setting, solve_key
from repro.generators.settings_library import (
    example_2_1_setting, example_2_1_source,
)
setting = example_2_1_setting()
source = example_2_1_source()
print(fingerprint_setting(setting))
print(fingerprint_instance(source))
print(solve_key(setting, source, max_steps=1000, engine="standard",
                core_algorithm="blockwise"))
"""


def _digests_under_hash_seed(seed: str):
    import repro

    src_dir = repro.__file__.rsplit("/repro/", 1)[0]
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT.format(src=src_dir)],
        capture_output=True,
        text=True,
        env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return completed.stdout.splitlines()


class TestHashSeedIndependence:
    def test_digests_identical_across_hash_seeds(self):
        first = _digests_under_hash_seed("0")
        second = _digests_under_hash_seed("424242")
        assert first == second
        assert len(first) == 3 and all(first)


class TestInstanceFingerprint:
    def test_insertion_order_irrelevant(self):
        atoms = [
            Atom(E, (Const("a"), Const("b"))),
            Atom(E, (Const("b"), Const("c"))),
            Atom(F, (Const("a"), Null(0))),
        ]
        forward = Instance(atoms)
        backward = Instance(list(reversed(atoms)))
        assert forward.fingerprint() == backward.fingerprint()
        assert fingerprint_instance(forward) == fingerprint_instance(backward)

    def test_isomorphic_renamings_coincide_canonically(self):
        left = Instance(
            [Atom(E, (Const("a"), Null(0))), Atom(F, (Null(0), Null(1)))]
        )
        right = Instance(
            [Atom(E, (Const("a"), Null(7))), Atom(F, (Null(7), Null(3)))]
        )
        assert left.fingerprint(canonical=True) == right.fingerprint(
            canonical=True
        )
        assert fingerprint_instance(left) == fingerprint_instance(right)

    def test_exact_mode_distinguishes_renamings(self):
        left = Instance([Atom(E, (Const("a"), Null(0)))])
        right = Instance([Atom(E, (Const("a"), Null(1)))])
        assert left.fingerprint() != right.fingerprint()

    def test_different_content_differs(self):
        left = Instance([Atom(E, (Const("a"), Const("b")))])
        right = Instance([Atom(E, (Const("a"), Const("c")))])
        assert fingerprint_instance(left) != fingerprint_instance(right)

    def test_constant_and_null_never_collide(self):
        # A constant literally named "n0" must not hash like Null(0).
        left = Instance([Atom(E, (Const("n0"), Const("x")))])
        right = Instance([Atom(E, (Null(0), Const("x")))])
        assert left.fingerprint() != right.fingerprint()


class TestSchemaAndDependencyFingerprints:
    def test_schema_digest_is_structural(self):
        setting = example_2_1_setting()
        assert fingerprint_schema(setting.source_schema) != fingerprint_schema(
            setting.target_schema
        )

    def test_dependency_name_does_not_matter(self):
        joint = example_2_1_setting().joint_schema
        named = parse_dependency("M(x, y) -> E(x, y)", joint)
        named.name = "st1"
        renamed = parse_dependency("M(x, y) -> E(x, y)", joint)
        renamed.name = "zzz"
        assert fingerprint_dependency(named) == fingerprint_dependency(renamed)

    def test_dependency_structure_does_matter(self):
        joint = example_2_1_setting().joint_schema
        one = parse_dependency("M(x, y) -> E(x, y)", joint)
        other = parse_dependency("M(x, y) -> E(y, x)", joint)
        assert fingerprint_dependency(one) != fingerprint_dependency(other)

    def test_egd_fingerprint(self):
        joint = example_2_1_setting().joint_schema
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z", joint)
        same = parse_dependency("F(x, y) & F(x, z) -> y = z", joint)
        assert fingerprint_dependency(egd) == fingerprint_dependency(same)


class TestQueryAndKeyFingerprints:
    def test_query_digest_distinguishes_heads(self):
        one = parse_query("Q(x) :- E(x, y)")
        other = parse_query("Q(y) :- E(x, y)")
        assert fingerprint_query(one) != fingerprint_query(other)

    def test_ucq_digest(self):
        ucq = parse_query("Q(x) :- E(x, y) ; Q(x) :- F(x, y)")
        again = parse_query("Q(x) :- E(x, y) ; Q(x) :- F(x, y)")
        assert fingerprint_query(ucq) == fingerprint_query(again)

    def test_solve_key_sensitive_to_options(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        base = solve_key(
            setting, source, max_steps=100, engine="standard",
            core_algorithm="blockwise",
        )
        assert base != solve_key(
            setting, source, max_steps=200, engine="standard",
            core_algorithm="blockwise",
        )
        assert base != solve_key(
            setting, source, max_steps=100, engine="seminaive",
            core_algorithm="blockwise",
        )

    def test_answer_key_sensitive_to_semantics_and_space(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- E(x, y)")
        certain = answer_key(setting, source, query, "certain")
        maybe = answer_key(setting, source, query, "maybe")
        assert certain != maybe
        spaced = answer_key(
            setting, source, query, "certain",
            solutions=[Instance([Atom(E, (Const("a"), Const("b")))])],
        )
        assert spaced != certain

    def test_answer_set_digest_order_independent(self):
        rows = [(Const("a"), Const("b")), (Const("c"), Null(2))]
        assert fingerprint_answers(rows) == fingerprint_answers(
            list(reversed(rows))
        )
