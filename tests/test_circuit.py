"""Tests for path systems, monotone circuits, and the PTIME-hardness
reductions (Propositions 6.6 and 7.8)."""

import pytest

from repro.reductions.circuit import (
    MonotoneCircuit,
    PathSystem,
    decide_derivable_via_certain_answers,
    decide_derivable_via_existence,
    derivability_setting,
    encode_path_system,
    existence_hardness_setting,
    goal_query,
    random_circuit,
)


class TestPathSystem:
    def test_axioms_derivable(self):
        system = PathSystem(["a"], [], "a")
        assert system.goal_derivable

    def test_simple_derivation(self):
        system = PathSystem(["a", "b"], [("c", "a", "b")], "c")
        assert system.goal_derivable

    def test_chained_derivation(self):
        system = PathSystem(
            ["a"], [("b", "a", "a"), ("c", "a", "b"), ("d", "c", "b")], "d"
        )
        assert system.goal_derivable

    def test_underivable(self):
        system = PathSystem(["a"], [("c", "a", "b")], "c")
        assert not system.goal_derivable

    def test_rules_can_be_unordered(self):
        system = PathSystem(
            ["a"], [("d", "c", "c"), ("c", "b", "b"), ("b", "a", "a")], "d"
        )
        assert system.goal_derivable


class TestMonotoneCircuit:
    def test_and_gate(self):
        circuit = MonotoneCircuit(
            {"x": True, "y": False}, {"g": ("and", "x", "y")}, "g"
        )
        assert not circuit.evaluate()

    def test_or_gate(self):
        circuit = MonotoneCircuit(
            {"x": True, "y": False}, {"g": ("or", "x", "y")}, "g"
        )
        assert circuit.evaluate()

    def test_nested(self):
        circuit = MonotoneCircuit(
            {"x": True, "y": False, "z": True},
            {"g1": ("or", "x", "y"), "g2": ("and", "g1", "z")},
            "g2",
        )
        assert circuit.evaluate()

    def test_cycle_rejected(self):
        circuit = MonotoneCircuit(
            {"x": True}, {"g": ("and", "g", "x")}, "g"
        )
        with pytest.raises(ValueError):
            circuit.evaluate()

    @pytest.mark.parametrize("seed", range(8))
    def test_compilation_preserves_value(self, seed):
        circuit = random_circuit(4, 12, seed=seed)
        assert circuit.evaluate() == circuit.to_path_system().goal_derivable


class TestProposition78:
    """certain answers with full tgds compute derivability."""

    def test_settings_shape(self):
        setting = derivability_setting()
        assert setting.is_full_and_egd_setting
        assert setting.is_weakly_acyclic and setting.is_richly_acyclic

    @pytest.mark.parametrize("seed", range(5))
    def test_reduction_correct(self, seed):
        system = random_circuit(3, 8, seed=seed).to_path_system()
        assert (
            decide_derivable_via_certain_answers(system)
            == system.goal_derivable
        )

    def test_all_four_semantics_agree(self):
        from repro.answering import all_four_semantics

        system = PathSystem(["a", "b"], [("c", "a", "b")], "c")
        setting = derivability_setting()
        source = encode_path_system(system)
        results = all_four_semantics(setting, source, goal_query())
        assert all(bool(v) for v in results.values())


class TestProposition66:
    """Existence-of-CWA-Solutions is the complement of derivability."""

    def test_setting_weakly_acyclic(self):
        assert existence_hardness_setting().is_weakly_acyclic

    @pytest.mark.parametrize("seed", range(5))
    def test_reduction_correct(self, seed):
        system = random_circuit(3, 8, seed=seed).to_path_system()
        assert (
            decide_derivable_via_existence(system) == system.goal_derivable
        )

    def test_agreement_of_both_reductions(self):
        for seed in range(4):
            system = random_circuit(4, 10, seed=seed).to_path_system()
            assert decide_derivable_via_existence(
                system
            ) == decide_derivable_via_certain_answers(system)
