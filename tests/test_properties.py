"""Cross-module property-based tests (hypothesis).

These check the paper's structural theorems on randomly generated
settings and instances, not just the worked examples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import satisfies_all, standard_chase
from repro.core import Atom, Const, Instance, RelationSymbol, Schema
from repro.cwa import core_solution, is_cwa_presolution, is_cwa_solution
from repro.exchange import DataExchangeSetting
from repro.homomorphism import core, has_homomorphism

M = RelationSymbol("M", 2)
N = RelationSymbol("N", 2)

SIGMA = Schema.of(M=2, N=2)
TAU = Schema.of(E=2, F=2, G=2)

# A pool of weakly acyclic settings over (SIGMA, TAU).
SETTING_POOL = [
    DataExchangeSetting.from_strings(
        SIGMA, TAU,
        ["M(x, y) -> E(x, y)",
         "N(x, y) -> exists z1, z2 . E(x, z1) & F(x, z2)"],
        ["F(y, x) -> exists z . G(x, z)",
         "F(x, y) & F(x, z) -> y = z"],
    ),
    DataExchangeSetting.from_strings(
        SIGMA, TAU,
        ["M(x, y) -> exists z . E(x, z)", "N(x, y) -> F(x, y)"],
        ["E(x, y) & E(x, z) -> y = z"],
    ),
    DataExchangeSetting.from_strings(
        SIGMA, TAU,
        ["M(x, y) -> E(x, y)", "N(x, y) -> F(y, x)"],
        ["E(x, y) -> G(x, y)", "F(x, y) -> G(y, x)"],
    ),
    DataExchangeSetting.from_strings(
        SIGMA, TAU,
        ["M(x, y) -> exists z . F(x, z)"],
        ["F(x, y) -> exists w . G(y, w)", "G(x, y) & G(x, z) -> y = z"],
    ),
]


@st.composite
def source_instances(draw):
    pool = [Const(name) for name in "abcd"]
    m_atoms = draw(
        st.lists(
            st.tuples(st.sampled_from(pool), st.sampled_from(pool)).map(
                lambda p: Atom(M, p)
            ),
            max_size=4,
        )
    )
    n_atoms = draw(
        st.lists(
            st.tuples(st.sampled_from(pool), st.sampled_from(pool)).map(
                lambda p: Atom(N, p)
            ),
            max_size=4,
        )
    )
    return Instance(m_atoms + n_atoms)


@st.composite
def setting_and_source(draw):
    setting = draw(st.sampled_from(SETTING_POOL))
    source = draw(source_instances())
    return setting, source


@given(setting_and_source())
@settings(max_examples=30, deadline=None)
def test_chase_result_is_a_solution(case):
    """Standard chase success ⟹ the τ-reduct is a solution."""
    setting, source = case
    canonical = setting.canonical_universal_solution(source)
    if canonical is not None:
        assert setting.is_solution(source, canonical)


@given(setting_and_source())
@settings(max_examples=30, deadline=None)
def test_core_is_cwa_solution_theorem_5_1(case):
    """Theorem 5.1 on random weakly acyclic inputs."""
    setting, source = case
    minimal = core_solution(setting, source)
    if minimal is not None:
        assert is_cwa_solution(setting, source, minimal)


@given(setting_and_source())
@settings(max_examples=30, deadline=None)
def test_corollary_5_2(case):
    """CWA-solutions exist iff universal solutions exist iff core exists."""
    setting, source = case
    canonical = setting.canonical_universal_solution(source)
    minimal = core_solution(setting, source)
    assert (canonical is None) == (minimal is None)


@given(setting_and_source())
@settings(max_examples=20, deadline=None)
def test_canonical_hom_equivalent_to_core(case):
    setting, source = case
    canonical = setting.canonical_universal_solution(source)
    if canonical is None:
        return
    minimal = core(canonical)
    assert has_homomorphism(canonical, minimal)
    assert has_homomorphism(minimal, canonical)


@given(setting_and_source())
@settings(max_examples=15, deadline=None)
def test_lemma_7_7_on_random_inputs(case):
    """UCQ certain answers: naive null-free evaluation on the core equals
    □Q(core).

    The exact □-sweep enumerates canonical valuations, which explodes
    combinatorially in the null count; inputs whose core carries more
    than 4 nulls are skipped (the law is size-independent, so small
    cores exercise it fully).
    """
    from hypothesis import assume

    from repro.answering.valuations import certain_on
    from repro.logic import parse_query

    setting, source = case
    minimal = core_solution(setting, source)
    if minimal is None:
        return
    assume(len(minimal.nulls()) <= 4)
    query = parse_query("Q(x) :- E(x, y) ; Q(x) :- F(x, y) ; Q(x) :- G(x, y)")
    naive = query.certain_part(minimal)
    boxed = certain_on(query, minimal, setting.target_dependencies)
    assert naive == boxed


@given(setting_and_source())
@settings(max_examples=15, deadline=None)
def test_chase_result_satisfies_everything(case):
    setting, source = case
    outcome = standard_chase(source, list(setting.all_dependencies))
    if outcome.successful:
        assert satisfies_all(outcome.instance, setting.all_dependencies)


@given(setting_and_source())
@settings(max_examples=10, deadline=None)
def test_theorem_4_8_random(case):
    """CWA-solution == universal ∧ presolution, on the core and on the
    canonical solution."""
    setting, source = case
    canonical = setting.canonical_universal_solution(source)
    if canonical is None:
        return
    for candidate in (core(canonical),):
        left = is_cwa_solution(setting, source, candidate)
        right = setting.is_universal_solution(
            source, candidate
        ) and is_cwa_presolution(setting, source, candidate)
        assert left == right


@given(setting_and_source())
@settings(max_examples=30, deadline=None)
def test_json_codec_roundtrips_solutions(case):
    """repro.io/v1 round-trips every chase artifact exactly.

    Unlike the CSV format (guarded by roundtrip_safe) the JSON codec has
    no unsafe constants: typed cells preserve null identity and any
    constant spelling, so encode∘decode is the identity on the canonical
    solution -- the payload the repro.engine cache stores.
    """
    from repro.io import dumps_instance, loads_instance

    setting, source = case
    assert loads_instance(dumps_instance(source)) == source
    canonical = setting.canonical_universal_solution(source)
    if canonical is not None:
        assert loads_instance(dumps_instance(canonical)) == canonical
        text = dumps_instance(canonical, canonical=True)
        reloaded = loads_instance(text, setting.target_schema)
        assert dumps_instance(reloaded, canonical=True) == text


@given(source_instances())
@settings(max_examples=50, deadline=None)
def test_fingerprint_insertion_order_invariance(source):
    """Instance.fingerprint never depends on atom insertion order."""
    reordered = Instance(list(reversed(sorted(source))))
    assert source.fingerprint() == reordered.fingerprint()
    assert source.fingerprint(canonical=True) == reordered.fingerprint(
        canonical=True
    )
