"""Tests for the L_answers(D, Q) decision-problem wrappers (Section 7.2)."""

import pytest

from repro.answering import (
    AnswerLanguage,
    NoCwaSolutionError,
    certain_language,
    maybe_language,
    persistent_maybe_language,
    potential_certain_language,
)
from repro.core import Const, Schema
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance, parse_query


class TestMembership:
    def test_certain_membership(self, setting_2_1, source_2_1):
        language = certain_language(
            setting_2_1, parse_query("Q(x, y) :- E(x, y)")
        )
        assert language(source_2_1, (Const("a"), Const("b")))
        assert not language(source_2_1, (Const("b"), Const("a")))

    def test_boolean_membership(self, setting_2_1, source_2_1):
        language = certain_language(
            setting_2_1, parse_query("Q() :- F('a', u), G(u, w)")
        )
        assert language(source_2_1, ())

    def test_arity_checked(self, setting_2_1, source_2_1):
        language = certain_language(
            setting_2_1, parse_query("Q(x) :- E(x, y)")
        )
        with pytest.raises(ValueError):
            language(source_2_1, (Const("a"), Const("b")))

    def test_unknown_semantics_rejected(self, setting_2_1):
        with pytest.raises(ValueError):
            AnswerLanguage(
                setting_2_1, parse_query("Q(x) :- E(x, y)"), "sometimes"
            )

    def test_maybe_membership(self, setting_2_1, source_2_1):
        # The F-witness of a might be any constant, e.g. 'q'; this
        # persists in every CWA-solution (each has an F(a, ⊥) atom).
        query = parse_query("Q(y) :- F('a', y)")
        language = persistent_maybe_language(setting_2_1, query)
        assert language(source_2_1, (Const("q"),))
        certain = certain_language(setting_2_1, query)
        assert not certain(source_2_1, (Const("q"),))

    def test_maybe_diamond_membership(self, setting_2_1, source_2_1):
        # E(a, ⊥) exists in T2 but folds away in the core: 'q' is a
        # maybe◇ answer but NOT persistent (maybe□).
        query = parse_query("Q(y) :- E('a', y)")
        assert maybe_language(setting_2_1, query)(source_2_1, (Const("q"),))
        assert not persistent_maybe_language(setting_2_1, query)(
            source_2_1, (Const("q"),)
        )

    def test_no_solution_raises(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        language = certain_language(setting, parse_query("Q(x) :- Tgt(x, y)"))
        with pytest.raises(NoCwaSolutionError):
            language(source, (Const("a"),))


class TestAgreementWithFullSets:
    def test_membership_matches_full_computation(self, setting_2_1, source_2_1):
        from repro.answering import all_four_semantics
        from repro.cwa import enumerate_cwa_solutions

        query = parse_query("Q(x) :- E(x, y)")
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        full = all_four_semantics(
            setting_2_1, source_2_1, query, solutions=solutions
        )
        languages = {
            "certain": certain_language(setting_2_1, query),
            "persistent_maybe": persistent_maybe_language(setting_2_1, query),
        }
        domain = [(Const("a"),), (Const("b"),), (Const("c"),)]
        for name, language in languages.items():
            for answer in domain:
                assert language(source_2_1, answer) == (
                    answer in full[name]
                ), (name, answer)

    def test_cansol_fast_path_on_egd_setting(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        query = parse_query("Q(d) :- Dept(d, m)")
        language = potential_certain_language(setting_egd_only, query)
        assert language(source, (Const("d1"),))
        assert not language(source, (Const("d9"),))
        maybe = maybe_language(setting_egd_only, query)
        assert maybe(source, (Const("d1"),))
