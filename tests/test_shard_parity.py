"""Fingerprint parity: sharded/partitioned runs vs serial runs.

The partitioned chase and the partitioned core must be invisible in the
results: the same fp/v1 canonical fingerprints as the sequential paths,
on the paper examples and on random weakly acyclic settings (hypothesis).
Style follows ``tests/test_plan_parity.py`` -- one workload, two paths,
fingerprints compared.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.core import Const, Instance
from repro.engine import Executor, fingerprint_instance
from repro.exchange.solve import solve
from repro.generators import (
    disjoint_scaled_sources,
    example_2_1_setting,
    random_source_for,
    random_weakly_acyclic_setting,
)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


def _assert_result_parity(serial, other):
    assert (serial.canonical_solution is None) == (
        other.canonical_solution is None
    )
    if serial.canonical_solution is not None:
        assert _fp(serial.canonical_solution) == _fp(other.canonical_solution)
        assert _fp(serial.core_solution) == _fp(other.core_solution)


def _disjoint_random_source(setting, seed):
    """Two value-disjoint random halves of a source (>= 2 components)."""
    union = Instance()
    for prefix_index in range(2):
        half = random_source_for(setting, seed=seed + prefix_index)
        renaming = {
            value: Const(f"p{prefix_index}_{value.name}")
            for value in half.active_domain()
        }
        union.add_all(half.rename_values(renaming))
    return union


class TestSolveParity:
    def test_sharded_solve_matches_serial(self):
        setting = example_2_1_setting()
        source = disjoint_scaled_sources(4, 8, seed=13)
        serial = solve(setting, source, shard="off")
        sharded = solve(setting, source, shard="on")
        _assert_result_parity(serial, sharded)

    def test_sharded_solve_matches_serial_with_pool(self):
        setting = example_2_1_setting()
        source = disjoint_scaled_sources(3, 8, seed=17)
        serial = solve(setting, source, shard="off")
        with Executor(workers=4) as executor:
            sharded = solve(setting, source, executor=executor)
        _assert_result_parity(serial, sharded)
        assert obs.gauge("chase.shards").value == 3

    def test_auto_without_executor_is_serial(self):
        setting = example_2_1_setting()
        source = disjoint_scaled_sources(2, 6, seed=19)
        solve(setting, source)  # shard="auto", no executor
        assert obs.counter("chase.shard_chases").value == 0

    def test_partitioned_core_algorithm_explicit(self):
        setting = example_2_1_setting()
        source = disjoint_scaled_sources(2, 8, seed=23)
        serial = solve(setting, source, shard="off")
        partitioned = solve(
            setting, source, shard="off", core_algorithm="partitioned"
        )
        _assert_result_parity(serial, partitioned)

    def test_empty_source(self):
        setting = example_2_1_setting()
        serial = solve(setting, Instance(), shard="off")
        sharded = solve(setting, Instance(), shard="on")
        _assert_result_parity(serial, sharded)
        assert len(sharded.core_solution) == 0


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_random_settings_parity(seed):
    setting = random_weakly_acyclic_setting(seed)
    source = _disjoint_random_source(setting, seed)
    serial = solve(setting, source, shard="off")
    sharded = solve(setting, source, shard="on")
    _assert_result_parity(serial, sharded)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_random_settings_parity_with_egds(seed):
    setting = random_weakly_acyclic_setting(
        seed, egd_probability=1.0, levels=2
    )
    source = _disjoint_random_source(setting, seed + 1)
    serial = solve(setting, source, shard="off")
    sharded = solve(setting, source, shard="on")
    _assert_result_parity(serial, sharded)
