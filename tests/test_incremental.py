"""Incremental re-solving: delta sessions, delta codec, memoized core.

The correctness bar (ISSUE 10): every incrementally maintained result
must be fp/v1-fingerprint-identical (on the core, the canonical form the
engine fingerprints) to a from-scratch solve of the edited source --
deterministically on the worked examples, and property-tested over
random edit streams against random weakly acyclic settings, including
egd merges, deletions, and the documented full-re-solve fallbacks.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro import DeltaSession, SourceDelta, parse_instance
from repro.core import Atom, Const, Instance, ReproError, Schema
from repro.core.schema import RelationSymbol
from repro.dependencies import Tgd
from repro.engine import ResultCache, fingerprint_instance
from repro.exchange.setting import DataExchangeSetting
from repro.exchange.solve import solve
from repro.generators import (
    example_2_1_setting,
    example_2_1_scaled_source,
    random_source_for,
    random_weakly_acyclic_setting,
)
from repro.io import dumps_delta, loads_delta
from repro.obs.provenance import recording


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


def _assert_parity(session_result, setting, source):
    """The session's result vs a from-scratch seminaive solve."""
    batch = solve(setting, source, engine="seminaive")
    assert session_result.cwa_solution_exists == batch.cwa_solution_exists
    if batch.cwa_solution_exists:
        assert _fp(session_result.core_solution) == _fp(batch.core_solution)


def _anchored_setting():
    """Egd-free, constant-anchored blocks: the fully incremental regime."""
    return DataExchangeSetting.from_strings(
        Schema.of(R=2),
        Schema.of(A=2, B=2, C=2),
        ["R(x,y) -> exists z . A(x,z) & B(z,y)"],
        ["B(z,y) -> exists w . C(y,w)"],
    )


def _anchored_source(rows):
    r = RelationSymbol("R", 2)
    return Instance(
        Atom(r, (Const(f"s{i}"), Const(f"t{i}"))) for i in range(rows)
    )


class TestSourceDelta:
    def test_apply_to_and_effective(self):
        source = parse_instance("M('a','b'), N('a','b')")
        delta = SourceDelta(
            insertions=parse_instance("N('a','c'), N('a','b')"),
            deletions=parse_instance("M('a','b'), M('x','y')"),
        )
        edited = delta.apply_to(source)
        assert edited == parse_instance("N('a','b'), N('a','c')")
        insertions, deletions = delta.effective(source)
        # N('a','b') is already present; M('x','y') is absent: both no-ops.
        assert insertions == tuple(parse_instance("N('a','c')"))
        assert deletions == tuple(parse_instance("M('a','b')"))

    def test_insert_wins_over_delete(self):
        source = parse_instance("M('a','b')")
        delta = SourceDelta(
            insertions=parse_instance("M('a','b')"),
            deletions=parse_instance("M('a','b')"),
        )
        assert delta.apply_to(source) == source
        insertions, deletions = delta.effective(source)
        assert insertions == () and deletions == ()

    def test_nulls_rejected(self):
        from repro.core import null

        tainted = Atom(RelationSymbol("M", 2), (null(1), Const("b")))
        with pytest.raises(ReproError):
            SourceDelta(insertions=[tainted])

    def test_json_roundtrip(self):
        delta = SourceDelta(
            insertions=parse_instance("N('a','c')"),
            deletions=parse_instance("M('a','b')"),
        )
        again = SourceDelta.loads(delta.dumps())
        assert again.insertions == delta.insertions
        assert again.deletions == delta.deletions

    def test_codec_schema_enforced(self):
        payload = json.loads(dumps_delta(Instance(), Instance()))
        payload["schema"] = "repro.io/delta/v0"
        with pytest.raises(ReproError):
            loads_delta(json.dumps(payload))

    def test_parse_dsl(self):
        delta = SourceDelta.parse(
            "# a comment\n+ N('a','c')\n\n- M('a','b')\n"
        )
        assert delta.insertions == parse_instance("N('a','c')")
        assert delta.deletions == parse_instance("M('a','b')")

    def test_parse_sniffs_json(self):
        delta = SourceDelta(insertions=parse_instance("N('a','c')"))
        assert SourceDelta.parse(delta.dumps()).insertions == delta.insertions

    def test_parse_rejects_unmarked_lines(self):
        with pytest.raises(ReproError):
            SourceDelta.parse("N('a','c')")


class TestDeltaSessionBasics:
    def test_initial_solve_matches_batch(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(10, seed=1)
        session = DeltaSession(setting, source)
        _assert_parity(session.result, setting, source)

    def test_insertion_only(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(10, seed=2)
        session = DeltaSession(setting, source)
        delta = SourceDelta(insertions=parse_instance("N('u1','u2')"))
        result = session.apply(delta)
        assert session.source == delta.apply_to(source)
        _assert_parity(result, setting, session.source)
        # Insertions never need the full fallback, even with egds around.
        assert obs.counter("incremental.full_fallbacks").value == 0

    def test_deletion_and_rederivation(self):
        setting = _anchored_setting()
        source = _anchored_source(12)
        session = DeltaSession(setting, source)
        victim = sorted(source)[0]
        result = session.apply(SourceDelta(deletions=[victim]))
        _assert_parity(result, setting, session.source)
        assert obs.counter("incremental.retracted").value > 0

    def test_mixed_edit_stream(self):
        setting = _anchored_setting()
        source = _anchored_source(15)
        session = DeltaSession(setting, source)
        r = RelationSymbol("R", 2)
        for step in range(4):
            victim = sorted(session.source)[step]
            fresh = Atom(r, (Const(f"n{step}a"), Const(f"n{step}b")))
            result = session.apply(
                SourceDelta(insertions=[fresh], deletions=[victim])
            )
            _assert_parity(result, setting, session.source)
        assert obs.counter("incremental.full_fallbacks").value == 0
        assert obs.counter("incremental.applies").value == 4

    def test_block_memo_skips_untouched_blocks(self):
        setting = _anchored_setting()
        source = _anchored_source(30)
        session = DeltaSession(setting, source)
        victim = sorted(session.source)[7]
        session.apply(SourceDelta(deletions=[victim]))
        skipped = obs.counter("incremental.blocks_skipped").value
        replayed = obs.counter("incremental.blocks_replayed").value
        reminimized = obs.counter("incremental.blocks_reminimized").value
        # The edit touches one R row's blocks; the other ~29 rows' blocks
        # must be skipped or replayed, not re-minimized.
        assert skipped + replayed > reminimized - 31  # initial pass counts too
        assert skipped + replayed >= 29

    def test_empty_delta_is_identity(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(6, seed=3)
        session = DeltaSession(setting, source)
        before = session.result
        after = session.apply(SourceDelta())
        assert after is before
        assert obs.counter("incremental.delta_rounds").value == 0

    def test_rounds_counter_moves(self):
        setting = _anchored_setting()
        source = _anchored_source(8)
        session = DeltaSession(setting, source)
        session.apply(
            SourceDelta(insertions=parse_instance("R('nx','ny')"))
        )
        assert obs.counter("incremental.delta_rounds").value > 0

    def test_why_not_reports_deleted_by_delta(self):
        setting = _anchored_setting()
        source = _anchored_source(5)
        session = DeltaSession(setting, source)
        victim = sorted(source)[2]
        session.apply(SourceDelta(deletions=[victim]))
        assert "deleted by delta" in session.ledger.why_not(victim)

    def test_validates_edited_source(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(4, seed=4)
        session = DeltaSession(setting, source)
        bad = Instance([Atom(RelationSymbol("Zap", 1), (Const("x"),))])
        with pytest.raises(Exception):
            session.apply(SourceDelta(insertions=bad))

    def test_non_empty_ledger_rejected(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(3, seed=5)
        with recording() as ledger:
            solve(setting, source)
        with pytest.raises(ReproError):
            DeltaSession(setting, source, ledger=ledger)


class TestFallbacks:
    def test_deletion_with_merges_falls_back(self):
        # The key egd merges the Q-tgd's null into the P-copied constant
        # regardless of firing order.  Deletion cones through merges are
        # inexact, so the session must fully re-solve -- and still
        # produce the right fingerprint.
        setting = DataExchangeSetting.from_strings(
            Schema.of(P=2, Q=1),
            Schema.of(F=2, G=1),
            ["P(x,y) -> F(x,y)", "Q(x) -> exists w . F(x,w) & G(w)"],
            ["F(x,y) & F(x,z) -> y = z"],
        )
        source = parse_instance("P('a','b'), Q('a')")
        session = DeltaSession(setting, source)
        assert session.ledger.has_merges()
        victim = sorted(source)[0]
        result = session.apply(SourceDelta(deletions=[victim]))
        assert obs.counter("incremental.full_fallbacks").value == 1
        _assert_parity(result, setting, session.source)

    def test_fo_premise_always_falls_back(self):
        sigma = Schema.of(P=2)
        tau = Schema.of(Q=1)
        tgd = Tgd.parse("(exists y . P(x, y)) -> Q(x)")
        setting = DataExchangeSetting(sigma, tau, [tgd])
        source = parse_instance("P('a','b'), P('c','d')")
        session = DeltaSession(setting, source)
        result = session.apply(
            SourceDelta(insertions=parse_instance("P('e','f')"))
        )
        assert obs.counter("incremental.full_fallbacks").value == 1
        _assert_parity(result, setting, session.source)

    def test_failure_then_recovery(self):
        # An egd equating two constants fails the chase; the session
        # reports it and recovers on the next (repairing) delta.
        setting = DataExchangeSetting.from_strings(
            Schema.of(S=2),
            Schema.of(T=2),
            ["S(x,y) -> T(x,y)"],
            ["T(x,y) & T(x,z) -> y = z"],
        )
        source = parse_instance("S('k','v1')")
        session = DeltaSession(setting, source)
        assert session.result.cwa_solution_exists
        broken = session.apply(
            SourceDelta(insertions=parse_instance("S('k','v2')"))
        )
        assert not broken.cwa_solution_exists
        repaired = session.apply(
            SourceDelta(deletions=parse_instance("S('k','v2')"))
        )
        assert repaired.cwa_solution_exists
        _assert_parity(repaired, setting, session.source)


class TestFromLedger:
    def _solved_ledger(self, setting, source):
        with recording() as ledger:
            solve(setting, source, engine="seminaive")
        return ledger

    def test_resume_and_apply(self):
        setting = _anchored_setting()
        source = _anchored_source(10)
        ledger = self._solved_ledger(setting, source)
        session = DeltaSession.from_ledger(
            setting, source, ledger.dumps()
        )
        _assert_parity(session.result, setting, source)
        victim = sorted(source)[4]
        result = session.apply(SourceDelta(deletions=[victim]))
        _assert_parity(result, setting, session.source)

    def test_resume_from_payload_dict(self):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(6, seed=7)
        ledger = self._solved_ledger(setting, source)
        session = DeltaSession.from_ledger(
            setting, source, ledger.to_payload()
        )
        _assert_parity(session.result, setting, source)

    def test_wrong_source_rejected(self):
        setting = _anchored_setting()
        source = _anchored_source(5)
        ledger = self._solved_ledger(setting, source)
        other = _anchored_source(6)
        with pytest.raises(ReproError):
            DeltaSession.from_ledger(setting, other, ledger.dumps())

    def test_resume_records_into_supplied_ledger(self):
        from repro.obs.provenance import ProvenanceLedger

        setting = _anchored_setting()
        source = _anchored_source(6)
        persisted = self._solved_ledger(setting, source)
        outer = ProvenanceLedger()
        session = DeltaSession.from_ledger(
            setting, source, persisted.dumps(), ledger=outer
        )
        assert session.ledger is outer
        victim = sorted(source)[1]
        session.apply(SourceDelta(deletions=[victim]))
        assert "deleted by delta" in outer.why_not(victim)


class TestCacheWiring:
    def test_session_results_hit_batch_solves(self, tmp_path):
        setting = _anchored_setting()
        source = _anchored_source(8)
        cache = ResultCache(tmp_path / "cache")
        session = DeltaSession(setting, source, cache=cache)
        victim = sorted(source)[3]
        session.apply(SourceDelta(deletions=[victim]))
        edited = session.source
        obs.reset()
        batch = solve(setting, edited, engine="seminaive", cache=cache)
        assert obs.counter("solve.cache_hits").value == 1
        assert _fp(batch.core_solution) == _fp(
            session.result.core_solution
        )


class TestFingerprintCache:
    def test_fingerprint_cached_until_mutation(self):
        instance = parse_instance("M('a','b'), N('a','c')")
        first = fingerprint_instance(instance, canonical=True)
        before = obs.counter("fingerprint.cache_hits").value
        assert fingerprint_instance(instance, canonical=True) == first
        assert obs.counter("fingerprint.cache_hits").value == before + 1
        instance.add(next(iter(parse_instance("M('x','y')"))))
        changed = fingerprint_instance(instance, canonical=True)
        assert changed != first
        assert obs.counter("fingerprint.cache_hits").value == before + 1

    def test_canonical_cached_and_idempotent(self):
        source = example_2_1_scaled_source(5, seed=8)
        result = solve(example_2_1_setting(), source)
        canonical = result.core_solution.canonical()
        before = obs.counter("fingerprint.cache_hits").value
        assert result.core_solution.canonical() is canonical
        assert obs.counter("fingerprint.cache_hits").value == before + 1
        # A canonical instance is its own canonical form, cached too.
        assert canonical.canonical() is canonical

    def test_copy_carries_caches_and_invalidates_independently(self):
        instance = parse_instance("M('a','b')")
        fp = fingerprint_instance(instance, canonical=True)
        clone = instance.copy()
        before = obs.counter("fingerprint.cache_hits").value
        assert fingerprint_instance(clone, canonical=True) == fp
        assert obs.counter("fingerprint.cache_hits").value == before + 1
        clone.add(next(iter(parse_instance("N('a','c')"))))
        assert fingerprint_instance(clone, canonical=True) != fp
        assert fingerprint_instance(instance, canonical=True) == fp


class TestCliIncremental:
    def test_solve_incremental_from_matches_batch(self, tmp_path):
        from repro.cli import main

        setting_path = tmp_path / "setting.txt"
        setting_path.write_text(
            "source: R/2\ntarget: A/2 B/2 C/2\n"
            "st: R(x,y) -> exists z . A(x,z) & B(z,y)\n"
            "target-dep: B(z,y) -> exists w . C(y,w)\n",
            encoding="utf-8",
        )
        source_path = tmp_path / "source.txt"
        source_path.write_text(
            ", ".join(f"R('s{i}','t{i}')" for i in range(6)),
            encoding="utf-8",
        )
        ledger_path = tmp_path / "ledger.json"
        assert (
            main(
                [
                    "solve",
                    str(setting_path),
                    str(source_path),
                    "--provenance",
                    str(ledger_path),
                ]
            )
            == 0
        )
        delta_path = tmp_path / "edit.delta"
        delta_path.write_text(
            "+ R('new1','new2')\n- R('s0','t0')\n", encoding="utf-8"
        )
        updated_ledger = tmp_path / "ledger2.json"
        assert (
            main(
                [
                    "solve",
                    str(setting_path),
                    str(source_path),
                    "--incremental-from",
                    str(ledger_path),
                    "--delta",
                    str(delta_path),
                    "--provenance",
                    str(updated_ledger),
                    "--fingerprint",
                ]
            )
            == 0
        )
        # Fingerprint parity with a batch solve of the edited source.
        edited_path = tmp_path / "edited.txt"
        edited_path.write_text(
            ", ".join(f"R('s{i}','t{i}')" for i in range(1, 6))
            + ", R('new1','new2')",
            encoding="utf-8",
        )
        from repro.cli import load_setting, load_instance

        setting = load_setting(str(setting_path))
        edited = load_instance(str(edited_path), setting)
        batch = solve(setting, edited, engine="seminaive")
        from repro.obs.provenance import ProvenanceLedger

        resumed = ProvenanceLedger.loads(
            updated_ledger.read_text(encoding="utf-8")
        )
        session = DeltaSession.from_ledger(setting, edited, resumed)
        assert _fp(session.result.core_solution) == _fp(batch.core_solution)

    def test_delta_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        setting_path = tmp_path / "setting.txt"
        setting_path.write_text(
            "source: R/2\ntarget: A/2 B/2\n"
            "st: R(x,y) -> exists z . A(x,z) & B(z,y)\n",
            encoding="utf-8",
        )
        source_path = tmp_path / "source.txt"
        source_path.write_text(
            ", ".join(f"R('s{i}','t{i}')" for i in range(10)),
            encoding="utf-8",
        )
        assert (
            main(
                [
                    "delta-bench",
                    str(setting_path),
                    str(source_path),
                    "--edits",
                    "2",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "MISMATCH" not in out


# ----------------------------------------------------------------------
# Property: random edit streams keep fingerprint parity
# ----------------------------------------------------------------------

_SETTING_SEEDS = st.integers(min_value=0, max_value=14)
_EDIT_SCRIPTS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),  # deletion pick
        st.integers(min_value=0, max_value=2),  # insertions count
        st.integers(min_value=0, max_value=1),  # deletions count
    ),
    min_size=1,
    max_size=4,
)


class TestEditStreamParity:
    @given(seed=_SETTING_SEEDS, script=_EDIT_SCRIPTS)
    @settings(max_examples=25, deadline=None)
    def test_random_edit_streams(self, seed, script):
        setting = random_weakly_acyclic_setting(seed, egd_probability=0.4)
        source = random_source_for(setting, seed=seed + 1)
        try:
            session = DeltaSession(setting, source)
        except Exception:
            return  # divergent/failed base instances are out of scope here
        fresh = 0
        for pick, insert_count, delete_count in script:
            atoms = sorted(session.source)
            deletions = []
            if delete_count and atoms:
                deletions.append(atoms[pick % len(atoms)])
            insertions = []
            for _ in range(insert_count):
                template = atoms[(pick + fresh) % len(atoms)] if atoms else None
                if template is None:
                    break
                fresh += 1
                insertions.append(
                    Atom(
                        template.relation,
                        tuple(
                            Const(f"h{fresh}_{i}")
                            for i in range(template.relation.arity)
                        ),
                    )
                )
            delta = SourceDelta(
                insertions=Instance(insertions),
                deletions=Instance(deletions),
            )
            result = session.apply(delta)
            batch = solve(setting, session.source, engine="seminaive")
            assert result.cwa_solution_exists == batch.cwa_solution_exists
            if batch.cwa_solution_exists:
                assert _fp(result.core_solution) == _fp(batch.core_solution)

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_example_2_1_single_edits(self, seed):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(8, seed=seed)
        session = DeltaSession(setting, source)
        atoms = sorted(source)
        victim = atoms[seed % len(atoms)]
        result = session.apply(SourceDelta(deletions=[victim]))
        _assert_parity(result, setting, session.source)
