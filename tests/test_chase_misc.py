"""Coverage for chase plumbing: outcomes, oblivious helpers, budgets."""

import pytest

from repro.chase import (
    ChaseOutcome,
    ChaseStatus,
    fire_all_source_justifications,
    oblivious_chase,
    standard_chase,
)
from repro.core import (
    ChaseDivergence,
    Instance,
    NullFactory,
    ReproError,
    Schema,
)
from repro.dependencies import parse_dependencies
from repro.dependencies.graph import chase_depth_bound
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance


class TestChaseOutcome:
    def test_require_success_on_success(self):
        deps = parse_dependencies(["E(x, y) -> F(y, x)"])
        outcome = standard_chase(parse_instance("E('a','b')"), deps)
        assert outcome.require_success() is outcome.instance

    def test_require_success_on_failure_raises(self):
        deps = parse_dependencies(["F(x, y) & F(x, z) -> y = z"])
        outcome = standard_chase(parse_instance("F('a','b'), F('a','c')"), deps)
        with pytest.raises(ReproError):
            outcome.require_success()

    def test_require_success_on_divergence_raises(self):
        deps = parse_dependencies(["E(x, y) -> exists z . E(y, z)"])
        outcome = standard_chase(
            parse_instance("E('a','b')"), deps, max_steps=30
        )
        with pytest.raises(ChaseDivergence):
            outcome.require_success()

    def test_flags(self):
        outcome = ChaseOutcome(ChaseStatus.SUCCESS, Instance(), 0)
        assert outcome.successful and not outcome.failed and not outcome.diverged

    def test_repr(self):
        outcome = ChaseOutcome(ChaseStatus.FAILURE, Instance(), 3, reason="x")
        assert "failure" in repr(outcome)


class TestFireAllSourceJustifications:
    def test_each_justification_fires_once(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
        )
        source = parse_instance("N('a','b'), N('a','c'), N('q','w')")
        fired, table = fire_all_source_justifications(
            source, setting.st_dependencies
        )
        assert fired.count_of("F") == 3
        assert len(table) == 3

    def test_fresh_nulls_are_disjoint(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2, G=2),
            [
                "N(x, y) -> exists z . F(x, z)",
                "N(x, y) -> exists z . G(y, z)",
            ],
        )
        source = parse_instance("N('a','b')")
        fired, table = fire_all_source_justifications(
            source, setting.st_dependencies
        )
        nulls = fired.nulls()
        assert len(nulls) == 2

    def test_factory_respected(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
        )
        source = parse_instance("N('a','b')")
        fired, _ = fire_all_source_justifications(
            source, setting.st_dependencies, null_factory=NullFactory(500)
        )
        assert all(null.ident >= 500 for null in fired.nulls())


class TestObliviousBudget:
    def test_budget_respected(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(S0=2),
            Schema.of(E=2),
            ["S0(x, y) -> E(x, y)"],
            ["E(x, y) -> exists z . E(y, z)"],
        )
        outcome, _ = oblivious_chase(
            parse_instance("S0('a','b')"),
            list(setting.all_dependencies),
            max_steps=25,
        )
        assert outcome.diverged


class TestChaseDepthBound:
    def test_bound_positive_without_tgds(self):
        assert chase_depth_bound([], 10) > 0

    def test_bound_grows_with_domain(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        assert chase_depth_bound(deps, 50) >= chase_depth_bound(deps, 5)

    def test_bound_is_capped(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(y, z)",
                "F(x, y) -> exists z . G(y, z)",
                "G(x, y) -> exists z . H(y, z)",
            ]
        )
        assert chase_depth_bound(deps, 10_000) <= 50_000_000

    def test_bound_suffices_for_example_2_1(self, setting_2_1, source_2_1):
        bound = chase_depth_bound(
            list(setting_2_1.target_dependencies),
            len(source_2_1.active_domain()),
        )
        outcome = standard_chase(
            source_2_1, list(setting_2_1.all_dependencies), max_steps=bound
        )
        assert outcome.successful
