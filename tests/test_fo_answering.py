"""Tests for FO query answering (Proposition 7.4) and the inequality
boundary (Theorem 7.5's query class)."""

import pytest

from repro.answering import (
    all_four_semantics,
    certain_answers,
    maybe_answers,
    persistent_maybe_answers,
)
from repro.core import Const, Schema
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance, parse_query


@pytest.fixture(scope="module")
def richly_acyclic_setting():
    """A richly acyclic setting with an egd and an existential tgd."""
    return DataExchangeSetting.from_strings(
        Schema.of(Person=2),
        Schema.of(Lives=2, City=1),
        ["Person(p, c) -> Lives(p, c) & City(c)"],
        [],
    )


@pytest.fixture(scope="module")
def null_setting():
    return DataExchangeSetting.from_strings(
        Schema.of(Emp=1),
        Schema.of(Works=2),
        ["Emp(e) -> exists d . Works(e, d)"],
        [],
    )


class TestFOCertain:
    def test_negation_under_cwa(self, richly_acyclic_setting):
        """¬Lives(bob, paris) is certain: the CWA closes the relation."""
        source = parse_instance("Person('alice','paris')")
        query = parse_query("Q() := ~Lives('bob', 'paris')")
        assert certain_answers(richly_acyclic_setting, source, query)

    def test_universal_quantification(self, richly_acyclic_setting):
        source = parse_instance(
            "Person('alice','paris'), Person('bob','paris')"
        )
        query = parse_query("Q() := forall c . City(c) -> exists p . Lives(p, c)")
        assert certain_answers(richly_acyclic_setting, source, query)

    def test_fo_query_on_nulls_not_certain(self, null_setting):
        """The department of e is unknown: Works(e, 'hr') is neither
        certainly true nor certainly false."""
        source = parse_instance("Emp('e')")
        positive = parse_query("Q() := Works('e', 'hr')")
        negative = parse_query("Q() := ~Works('e', 'hr')")
        assert not certain_answers(null_setting, source, positive)
        assert not certain_answers(null_setting, source, negative)
        assert maybe_answers(null_setting, source, positive)
        assert maybe_answers(null_setting, source, negative)

    def test_exists_certain_even_with_null(self, null_setting):
        source = parse_instance("Emp('e')")
        query = parse_query("Q() := exists d . Works('e', d)")
        assert certain_answers(null_setting, source, query)

    def test_chain_on_fo_queries(self, null_setting):
        source = parse_instance("Emp('e'), Emp('f')")
        queries = [
            parse_query("Q() := exists d . Works('e', d) & Works('f', d)"),
            parse_query("Q(x) := exists d . Works(x, d)"),
        ]
        for query in queries:
            results = all_four_semantics(null_setting, source, query)
            assert results["certain"] <= results["potential_certain"]
            assert results["potential_certain"] <= results["persistent_maybe"]
            assert results["persistent_maybe"] <= results["maybe"]

    def test_shared_department_is_maybe_not_certain(self, null_setting):
        source = parse_instance("Emp('e'), Emp('f')")
        query = parse_query("Q() := exists d . Works('e', d) & Works('f', d)")
        assert not certain_answers(null_setting, source, query)
        assert persistent_maybe_answers(null_setting, source, query)


class TestInequalityQueries:
    """The query class of Theorem 7.5 under □/◇ on concrete instances."""

    def test_inequality_certain_with_distinct_constants(self, null_setting):
        source = parse_instance("Emp('e'), Emp('f')")
        query = parse_query("Q() :- Works(x, u), Works(y, w), x != y")
        assert certain_answers(null_setting, source, query)

    def test_inequality_on_nulls_not_certain(self, null_setting):
        source = parse_instance("Emp('e'), Emp('f')")
        # departments might coincide
        query = parse_query("Q() :- Works('e', u), Works('f', w), u != w")
        assert not certain_answers(null_setting, source, query)
        assert maybe_answers(null_setting, source, query)

    def test_inequality_certain_via_egd(self):
        """An egd can make an inequality certain: distinct keys force
        distinct witnesses... here the egd equates instead, making the
        inequality certainly FALSE."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(Emp=1),
            Schema.of(Works=2),
            ["Emp(e) -> exists d . Works(e, d)"],
            ["Works(e, d1) & Works(e, d2) -> d1 = d2"],
        )
        source = parse_instance("Emp('e')")
        query = parse_query("Q() :- Works('e', u), Works('e', w), u != w")
        assert not maybe_answers(setting, source, query)
