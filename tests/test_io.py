"""Tests for CSV instance I/O."""

import pytest

from repro.core import Const, Instance, Null, ReproError, Schema, SchemaError, atom, RelationSymbol
from repro.io import (
    JSON_SCHEMA,
    answers_from_json,
    answers_to_json,
    cell_from_json,
    cell_to_json,
    dump_instance,
    dumps_instance,
    format_cell,
    instance_from_payload,
    instance_to_payload,
    load_instance,
    load_relation,
    loads_instance,
    parse_cell,
    roundtrip_safe,
)
from repro.logic import parse_instance

E = RelationSymbol("E", 2)


class TestCells:
    def test_constant_cell(self):
        assert parse_cell("alice") == Const("alice")

    def test_null_cell(self):
        assert parse_cell("_:7") == Null(7)

    def test_whitespace_stripped(self):
        assert parse_cell("  bob ") == Const("bob")

    def test_format_roundtrip(self):
        for value in (Const("x"), Null(3)):
            assert parse_cell(format_cell(value)) == value

    def test_almost_null_is_constant(self):
        assert parse_cell("_:x") == Const("_:x")


class TestLoadRelation:
    def test_basic(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a,b\nb,c\n", encoding="utf-8")
        atoms = load_relation(path)
        assert len(atoms) == 2
        assert atoms[0].relation.name == "E"

    def test_nulls(self, tmp_path):
        path = tmp_path / "F.csv"
        path.write_text("a,_:1\n", encoding="utf-8")
        atoms = load_relation(path)
        assert atoms[0].args == (Const("a"), Null(1))

    def test_arity_mismatch_rejected(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a,b\nc\n", encoding="utf-8")
        with pytest.raises(SchemaError):
            load_relation(path, relation=E)

    def test_generated_header_skipped(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("col1,col2\na,b\n", encoding="utf-8")
        atoms = load_relation(path, relation=E)
        assert len(atoms) == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "P.csv"
        path.write_text("a\n\n\nb\n", encoding="utf-8")
        assert len(load_relation(path)) == 2


class TestDirectoryRoundTrip:
    def test_roundtrip(self, tmp_path):
        original = parse_instance("E('a','b'), E('b',#1), P('a')")
        dump_instance(original, tmp_path / "data")
        loaded = load_instance(tmp_path / "data")
        assert loaded == original

    def test_schema_validation(self, tmp_path):
        original = parse_instance("E('a','b')")
        dump_instance(original, tmp_path / "data")
        loaded = load_instance(tmp_path / "data", Schema.of(E=2))
        assert loaded == original
        with pytest.raises(SchemaError):
            load_instance(tmp_path / "data", Schema.of(F=2))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            load_instance(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ReproError):
            load_instance(tmp_path / "empty")

    def test_written_paths(self, tmp_path):
        instance = parse_instance("E('a','b'), P('a')")
        paths = dump_instance(instance, tmp_path / "out")
        assert sorted(p.name for p in paths) == ["E.csv", "P.csv"]

    def test_headerless_dump(self, tmp_path):
        instance = parse_instance("P('a')")
        dump_instance(instance, tmp_path / "raw", header=False)
        content = (tmp_path / "raw" / "P.csv").read_text(encoding="utf-8")
        assert "col1" not in content


class TestRoundtripSafety:
    def test_safe_instance(self):
        assert roundtrip_safe(parse_instance("E('a', #1)"))

    def test_null_lookalike_unsafe(self):
        inst = Instance([atom(E, "_:3", "b")])
        assert not roundtrip_safe(inst)


class TestJsonCells:
    def test_constant_cell(self):
        assert cell_to_json(Const("alice")) == ["c", "alice"]
        assert cell_from_json(["c", "alice"]) == Const("alice")

    def test_null_cell(self):
        assert cell_to_json(Null(7)) == ["n", 7]
        assert cell_from_json(["n", 7]) == Null(7)

    def test_null_lookalike_survives(self):
        # The CSV format's unsafe constant is perfectly safe here.
        assert cell_from_json(cell_to_json(Const("_:3"))) == Const("_:3")

    def test_unknown_tag_rejected(self):
        with pytest.raises(ReproError):
            cell_from_json(["x", 1])

    def test_malformed_cell_rejected(self):
        with pytest.raises(ReproError):
            cell_from_json("nope")


class TestJsonInstanceCodec:
    def test_roundtrip_with_nulls(self):
        instance = parse_instance("E('a', #1), E(#1, #2), P('_:3')")
        assert loads_instance(dumps_instance(instance)) == instance

    def test_payload_is_versioned(self):
        payload = instance_to_payload(parse_instance("P('a')"))
        assert payload["schema"] == JSON_SCHEMA

    def test_deterministic_output(self):
        forward = parse_instance("E('a','b'), E('b','c'), P('a')")
        backward = parse_instance("P('a'), E('b','c'), E('a','b')")
        assert dumps_instance(forward) == dumps_instance(backward)

    def test_canonical_mode_aligns_isomorphic_instances(self):
        left = parse_instance("E('a', #1), E(#1, #5)")
        right = parse_instance("E('a', #8), E(#8, #2)")
        assert dumps_instance(left, canonical=True) == dumps_instance(
            right, canonical=True
        )

    def test_wrong_schema_version_rejected(self):
        payload = instance_to_payload(parse_instance("P('a')"))
        payload["schema"] = "repro.io/v0"
        with pytest.raises(ReproError):
            instance_from_payload(payload)

    def test_schema_validation(self):
        payload = instance_to_payload(parse_instance("E('a','b')"))
        schema = Schema.of(E=2)
        assert instance_from_payload(payload, schema) == parse_instance(
            "E('a','b')"
        )
        with pytest.raises(SchemaError):
            instance_from_payload(payload, Schema.of(F=2))
        with pytest.raises(SchemaError):
            instance_from_payload(payload, Schema.of(E=3))

    def test_invalid_json_rejected(self):
        with pytest.raises(ReproError):
            loads_instance("{not json")

    def test_empty_instance(self):
        assert loads_instance(dumps_instance(Instance())) == Instance()


class TestAnswersCodec:
    def test_roundtrip(self):
        answers = frozenset(
            [(Const("a"), Null(1)), (Const("b"), Const("c"))]
        )
        assert answers_from_json(answers_to_json(answers)) == answers

    def test_deterministic(self):
        rows = [(Const("b"),), (Const("a"),)]
        assert answers_to_json(rows) == answers_to_json(list(reversed(rows)))

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            answers_from_json({"not": "a list"})


class TestExchangePipeline:
    def test_exchange_from_csv_to_csv(self, tmp_path, setting_2_1, source_2_1):
        """End to end: dump S*, reload, solve, dump the core, reload."""
        from repro.exchange import solve

        dump_instance(source_2_1, tmp_path / "source")
        source = load_instance(tmp_path / "source", setting_2_1.source_schema)
        result = solve(setting_2_1, source)
        dump_instance(result.core_solution, tmp_path / "target")
        reloaded = load_instance(
            tmp_path / "target", setting_2_1.target_schema
        )
        assert reloaded == result.core_solution
