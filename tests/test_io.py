"""Tests for CSV instance I/O."""

import pytest

from repro.core import Const, Instance, Null, ReproError, Schema, SchemaError, atom, RelationSymbol
from repro.io import (
    dump_instance,
    format_cell,
    load_instance,
    load_relation,
    parse_cell,
    roundtrip_safe,
)
from repro.logic import parse_instance

E = RelationSymbol("E", 2)


class TestCells:
    def test_constant_cell(self):
        assert parse_cell("alice") == Const("alice")

    def test_null_cell(self):
        assert parse_cell("_:7") == Null(7)

    def test_whitespace_stripped(self):
        assert parse_cell("  bob ") == Const("bob")

    def test_format_roundtrip(self):
        for value in (Const("x"), Null(3)):
            assert parse_cell(format_cell(value)) == value

    def test_almost_null_is_constant(self):
        assert parse_cell("_:x") == Const("_:x")


class TestLoadRelation:
    def test_basic(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a,b\nb,c\n", encoding="utf-8")
        atoms = load_relation(path)
        assert len(atoms) == 2
        assert atoms[0].relation.name == "E"

    def test_nulls(self, tmp_path):
        path = tmp_path / "F.csv"
        path.write_text("a,_:1\n", encoding="utf-8")
        atoms = load_relation(path)
        assert atoms[0].args == (Const("a"), Null(1))

    def test_arity_mismatch_rejected(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("a,b\nc\n", encoding="utf-8")
        with pytest.raises(SchemaError):
            load_relation(path, relation=E)

    def test_generated_header_skipped(self, tmp_path):
        path = tmp_path / "E.csv"
        path.write_text("col1,col2\na,b\n", encoding="utf-8")
        atoms = load_relation(path, relation=E)
        assert len(atoms) == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "P.csv"
        path.write_text("a\n\n\nb\n", encoding="utf-8")
        assert len(load_relation(path)) == 2


class TestDirectoryRoundTrip:
    def test_roundtrip(self, tmp_path):
        original = parse_instance("E('a','b'), E('b',#1), P('a')")
        dump_instance(original, tmp_path / "data")
        loaded = load_instance(tmp_path / "data")
        assert loaded == original

    def test_schema_validation(self, tmp_path):
        original = parse_instance("E('a','b')")
        dump_instance(original, tmp_path / "data")
        loaded = load_instance(tmp_path / "data", Schema.of(E=2))
        assert loaded == original
        with pytest.raises(SchemaError):
            load_instance(tmp_path / "data", Schema.of(F=2))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ReproError):
            load_instance(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ReproError):
            load_instance(tmp_path / "empty")

    def test_written_paths(self, tmp_path):
        instance = parse_instance("E('a','b'), P('a')")
        paths = dump_instance(instance, tmp_path / "out")
        assert sorted(p.name for p in paths) == ["E.csv", "P.csv"]

    def test_headerless_dump(self, tmp_path):
        instance = parse_instance("P('a')")
        dump_instance(instance, tmp_path / "raw", header=False)
        content = (tmp_path / "raw" / "P.csv").read_text(encoding="utf-8")
        assert "col1" not in content


class TestRoundtripSafety:
    def test_safe_instance(self):
        assert roundtrip_safe(parse_instance("E('a', #1)"))

    def test_null_lookalike_unsafe(self):
        inst = Instance([atom(E, "_:3", "b")])
        assert not roundtrip_safe(inst)


class TestExchangePipeline:
    def test_exchange_from_csv_to_csv(self, tmp_path, setting_2_1, source_2_1):
        """End to end: dump S*, reload, solve, dump the core, reload."""
        from repro.exchange import solve

        dump_instance(source_2_1, tmp_path / "source")
        source = load_instance(tmp_path / "source", setting_2_1.source_schema)
        result = solve(setting_2_1, source)
        dump_instance(result.core_solution, tmp_path / "target")
        reloaded = load_instance(
            tmp_path / "target", setting_2_1.target_schema
        )
        assert reloaded == result.core_solution
