"""Tests for homomorphism search and core computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Atom, Const, Instance, Null, RelationSymbol, atom, isomorphic
from repro.homomorphism import (
    core,
    endomorphisms,
    find_homomorphism,
    has_homomorphism,
    hom_equivalent,
    homomorphisms,
    is_core,
    is_homomorphism,
    is_retract_of,
    retracts_to,
)
from repro.logic import parse_instance

E = RelationSymbol("E", 2)
P = RelationSymbol("P", 1)


class TestHomomorphismSearch:
    def test_identity_always_exists(self):
        inst = parse_instance("E('a', #1), E(#1, #2)")
        mapping = find_homomorphism(inst, inst)
        assert mapping is not None
        assert is_homomorphism(mapping, inst, inst)

    def test_null_to_constant(self):
        small = parse_instance("E('a', #1)")
        big = parse_instance("E('a', 'b')")
        mapping = find_homomorphism(small, big)
        assert mapping == {Null(1): Const("b")}

    def test_constants_are_rigid(self):
        left = parse_instance("E('a', 'b')")
        right = parse_instance("E('c', 'd')")
        assert not has_homomorphism(left, right)

    def test_no_homomorphism_structural(self):
        loop = parse_instance("E(#1, #1)")
        edge = parse_instance("E(#1, #2)")
        assert has_homomorphism(edge, loop)
        assert not has_homomorphism(loop, edge)

    def test_enumeration_counts(self):
        # #1 and #2 can each go to b or c: 4 homomorphisms.
        source = parse_instance("E('a', #1), E('a', #2)")
        target = parse_instance("E('a', 'b'), E('a', 'c')")
        assert len(list(homomorphisms(source, target))) == 4

    def test_empty_source(self):
        assert has_homomorphism(Instance(), parse_instance("P('a')"))

    def test_hom_equivalence(self):
        canonical = parse_instance("E('a','b'), E('a',#0), F('a',#1), G(#1,#2)")
        smaller = parse_instance("E('a','b'), F('a',#1), G(#1,#2)")
        assert hom_equivalent(canonical, smaller)

    def test_endomorphisms_include_identity(self):
        inst = parse_instance("E('a', #1)")
        results = list(endomorphisms(inst))
        assert {Null(1): Null(1)} in results

    def test_is_homomorphism_rejects_constant_moves(self):
        inst = parse_instance("P('a')")
        assert not is_homomorphism({Const("a"): Const("b")}, inst, inst)

    def test_composition_is_homomorphism(self):
        a = parse_instance("E('a', #1)")
        b = parse_instance("E('a', #2), E(#2, 'c')")
        c = parse_instance("E('a', 'b'), E('b', 'c')")
        ab = find_homomorphism(a, b)
        bc = find_homomorphism(b, c)
        composed = {
            key: bc.get(value, value) for key, value in ab.items()
        }
        assert is_homomorphism(composed, a, c)


class TestCore:
    def test_fold_redundant_null(self):
        inst = parse_instance("E('a', #1), E('a', 'b')")
        assert core(inst) == parse_instance("E('a', 'b')")

    def test_core_of_core_is_identity(self):
        inst = parse_instance("E('a', #1), E(#1, #2), E('a', 'b')")
        folded = core(inst)
        assert core(folded) == folded

    def test_ground_instance_is_its_own_core(self):
        inst = parse_instance("E('a','b'), E('b','c')")
        assert core(inst) == inst
        assert is_core(inst)

    def test_paper_example_core(self, setting_2_1, source_2_1, solutions_2_1):
        canonical = setting_2_1.canonical_universal_solution(source_2_1)
        _, _, t3 = solutions_2_1
        assert isomorphic(core(canonical), t3)

    def test_cycle_core(self):
        # Two parallel 2-cycles of nulls fold into one.
        inst = parse_instance("E(#1, #2), E(#2, #1), E(#3, #4), E(#4, #3)")
        folded = core(inst)
        assert len(folded) == 2

    def test_odd_cycle_does_not_fold_into_smaller(self):
        triangle = parse_instance("E(#1,#2), E(#2,#3), E(#3,#1)")
        assert len(core(triangle)) == 3

    def test_retract_relation(self):
        inst = parse_instance("E('a', #1), E('a', 'b')")
        folded = core(inst)
        assert is_retract_of(folded, inst)
        assert retracts_to(inst, folded)

    def test_core_is_subinstance_image(self):
        inst = parse_instance("E('a', #1), E(#1, #2), E('a', 'b'), E('b', 'c')")
        folded = core(inst)
        assert folded.issubset(inst) or all(
            a.nulls() == frozenset() for a in folded
        )
        assert has_homomorphism(inst, folded)


def small_instances():
    values = st.one_of(
        st.sampled_from([Const("a"), Const("b")]),
        st.integers(min_value=0, max_value=2).map(Null),
    )
    return st.lists(
        st.tuples(values, values).map(lambda pair: Atom(E, pair)),
        min_size=0,
        max_size=6,
    ).map(Instance)


@given(small_instances())
@settings(max_examples=40, deadline=None)
def test_core_is_hom_equivalent_retract(inst):
    folded = core(inst)
    assert has_homomorphism(inst, folded)
    assert has_homomorphism(folded, inst)
    assert is_core(folded)


@given(small_instances(), small_instances())
@settings(max_examples=40, deadline=None)
def test_hom_search_soundness(left, right):
    mapping = find_homomorphism(left, right)
    if mapping is not None:
        assert is_homomorphism(mapping, left, right)
