"""Tests for the PTIME UCQ algorithm (Theorem 7.6 / Lemma 7.7)."""

import pytest

from repro.answering import (
    answers_over_space,
    certain_answers,
    owa_certain_answers,
    potential_certain_answers,
    u_certain_answers,
    ucq_certain_answers,
)
from repro.core import Const, UnsupportedQueryError
from repro.cwa import core_solution, enumerate_cwa_solutions
from repro.logic import parse_instance, parse_query


class TestLemma77:
    """certain□ = certain◇ = □Q(T) = Q(T)↓ for pure UCQs and any
    CWA-solution T."""

    def test_equals_brute_force_on_example_2_1(self, setting_2_1, source_2_1):
        queries = [
            parse_query("Q(x, y) :- E(x, y)"),
            parse_query("Q(x) :- E(x, y), F(x, z)"),
            parse_query("Q(x) :- F(x, y) ; Q(x) :- E(x, y)"),
            parse_query("Q() :- F(x, u), G(u, w)"),
        ]
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        tdeps = setting_2_1.target_dependencies
        for query in queries:
            fast = ucq_certain_answers(setting_2_1, source_2_1, query)
            box_certain = answers_over_space(query, solutions, tdeps, "certain")
            box_potential = answers_over_space(
                query, solutions, tdeps, "potential_certain"
            )
            assert fast == box_certain == box_potential

    def test_same_answer_on_every_cwa_solution(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) :- E(x, y)")
        reference = None
        for solution in enumerate_cwa_solutions(setting_2_1, source_2_1):
            got = ucq_certain_answers(
                setting_2_1, source_2_1, query, solution=solution
            )
            if reference is None:
                reference = got
            assert got == reference

    def test_null_tuples_dropped(self, setting_2_1, source_2_1):
        query = parse_query("Q(y) :- E('a', y)")
        answers = ucq_certain_answers(setting_2_1, source_2_1, query)
        assert answers == frozenset({(Const("b"),)})


class TestInputValidation:
    def test_inequality_rejected(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) :- E(x, y), x != y")
        with pytest.raises(UnsupportedQueryError):
            ucq_certain_answers(setting_2_1, source_2_1, query)

    def test_ucq_with_inequality_rejected(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) :- E(x, y), x != y ; Q(x) :- F(x, y)")
        with pytest.raises(UnsupportedQueryError):
            ucq_certain_answers(setting_2_1, source_2_1, query)

    def test_fo_query_rejected(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) := exists y . E(x, y)")
        with pytest.raises(UnsupportedQueryError):
            ucq_certain_answers(setting_2_1, source_2_1, query)

    def test_no_solution_raises(self):
        from repro.answering import NoCwaSolutionError
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        with pytest.raises(NoCwaSolutionError):
            ucq_certain_answers(
                setting, source, parse_query("Q(x) :- Tgt(x, y)")
            )


class TestUCertain:
    def test_u_certain_equals_cwa_certain_for_ucq(self, setting_2_1, source_2_1):
        """For UCQs, u-certain (on the canonical universal solution) and
        the CWA certain answers coincide (both equal Q(U)↓)."""
        query = parse_query("Q(x, y) :- E(x, y)")
        assert u_certain_answers(setting_2_1, source_2_1, query) == (
            ucq_certain_answers(setting_2_1, source_2_1, query)
        )

    def test_owa_alias(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) :- F(x, y)")
        assert owa_certain_answers(setting_2_1, source_2_1, query) == (
            u_certain_answers(setting_2_1, source_2_1, query)
        )

    def test_matches_certain_via_core(self, setting_2_1, source_2_1):
        query = parse_query("Q(x) :- E(x, y), F(x, z)")
        assert ucq_certain_answers(setting_2_1, source_2_1, query) == (
            certain_answers(setting_2_1, source_2_1, query)
        )
