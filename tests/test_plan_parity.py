"""Parity suite: compiled match plans vs the interpreted reference matcher.

The compiled executor of ``repro.logic.plans`` must enumerate exactly the
substitution set of the interpreted matcher (order-insensitive) on every
pattern: hypothesis drives random patterns, inequalities, initial
bindings, and instances through both paths, and the paper examples are
checked end-to-end by fingerprint (``fp/v1``) through both paths.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Atom,
    Const,
    Instance,
    Null,
    RelationSymbol,
    Substitution,
    Variable,
    atom,
)
from repro.engine import fingerprint_answers, fingerprint_instance
from repro.logic import plans
from repro.logic.matching import match, match_interpreted

E = RelationSymbol("E", 2)
P = RelationSymbol("P", 1)
T = RelationSymbol("T", 3)

VARS = [Variable(name) for name in ("x", "y", "z", "w")]
VALUES = [Const("a"), Const("b"), Const("c"), Null(0), Null(1)]


def _freeze(substitution: Substitution):
    return frozenset(substitution.items())


def both_paths(patterns, instance, *, initial=None, inequalities=()):
    compiled = {
        _freeze(s)
        for s in match(
            patterns, instance, initial=initial, inequalities=inequalities
        )
    }
    interpreted = {
        _freeze(s)
        for s in match_interpreted(
            patterns, instance, initial=initial, inequalities=inequalities
        )
    }
    return compiled, interpreted


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def random_instance(draw):
    n_atoms = draw(st.integers(min_value=0, max_value=14))
    out = Instance()
    for _ in range(n_atoms):
        relation = draw(st.sampled_from([E, P, T]))
        args = tuple(
            draw(st.sampled_from(VALUES)) for _ in range(relation.arity)
        )
        out.add(Atom(relation, args))
    return out


@st.composite
def random_pattern(draw):
    n_atoms = draw(st.integers(min_value=0, max_value=3))
    terms = VARS + [Const("a"), Const("b"), Null(0)]
    pattern = tuple(
        Atom(
            (relation := draw(st.sampled_from([E, P, T]))),
            tuple(
                draw(st.sampled_from(terms)) for _ in range(relation.arity)
            ),
        )
        for _ in range(n_atoms)
    )
    n_ineq = draw(st.integers(min_value=0, max_value=2))
    sides = VARS + [Const("a"), Const("c")]
    inequalities = tuple(
        (draw(st.sampled_from(sides)), draw(st.sampled_from(sides)))
        for _ in range(n_ineq)
    )
    initial = None
    if draw(st.booleans()):
        bound_vars = draw(
            st.sets(st.sampled_from(VARS), min_size=0, max_size=2)
        )
        initial = Substitution(
            {v: draw(st.sampled_from(VALUES)) for v in bound_vars}
        )
    return pattern, inequalities, initial


@given(random_pattern(), random_instance())
@settings(max_examples=200, deadline=None)
def test_compiled_agrees_with_interpreted(pattern_case, instance):
    patterns, inequalities, initial = pattern_case
    compiled, interpreted = both_paths(
        patterns, instance, initial=initial, inequalities=inequalities
    )
    assert compiled == interpreted


@given(random_instance())
@settings(max_examples=60, deadline=None)
def test_parity_on_triangle_join(instance):
    x, y, z = VARS[:3]
    patterns = (Atom(E, (x, y)), Atom(E, (y, z)), Atom(E, (z, x)))
    compiled, interpreted = both_paths(
        patterns, instance, inequalities=((x, y),)
    )
    assert compiled == interpreted


# ----------------------------------------------------------------------
# Edge cases named by the issue
# ----------------------------------------------------------------------


class TestEdgeCases:
    def test_empty_premise_matches_once(self):
        compiled, interpreted = both_paths((), Instance([atom(P, "a")]))
        assert compiled == interpreted
        assert len(compiled) == 1

    def test_empty_premise_with_initial(self):
        initial = Substitution({VARS[0]: Const("q")})
        compiled, interpreted = both_paths(
            (), Instance([atom(P, "a")]), initial=initial
        )
        assert compiled == interpreted == {frozenset(initial.items())}

    def test_empty_premise_violated_initial_inequality(self):
        x = VARS[0]
        initial = Substitution({x: Const("a")})
        compiled, interpreted = both_paths(
            (),
            Instance(),
            initial=initial,
            inequalities=((x, Const("a")),),
        )
        assert compiled == interpreted == set()

    def test_all_constants_pattern_present(self):
        inst = Instance([atom(E, "a", "b"), atom(P, "a")])
        patterns = (
            Atom(E, (Const("a"), Const("b"))),
            Atom(P, (Const("a"),)),
        )
        compiled, interpreted = both_paths(patterns, inst)
        assert compiled == interpreted
        assert len(compiled) == 1  # the empty substitution

    def test_all_constants_pattern_absent(self):
        inst = Instance([atom(E, "a", "b")])
        patterns = (Atom(E, (Const("b"), Const("a"))),)
        compiled, interpreted = both_paths(patterns, inst)
        assert compiled == interpreted == set()

    def test_constant_constant_inequality(self):
        inst = Instance([atom(P, "a")])
        patterns = (Atom(P, (VARS[0],)),)
        for pair in (
            (Const("a"), Const("a")),  # always violated
            (Const("a"), Const("b")),  # always satisfied
        ):
            compiled, interpreted = both_paths(
                patterns, inst, inequalities=(pair,)
            )
            assert compiled == interpreted

    def test_unbound_inequality_side_is_vacuous(self):
        # w occurs in no pattern: the interpreted matcher never resolves
        # it, so the inequality prunes nothing.
        inst = Instance([atom(P, "a")])
        patterns = (Atom(P, (VARS[0],)),)
        compiled, interpreted = both_paths(
            patterns, inst, inequalities=((VARS[0], VARS[3]),)
        )
        assert compiled == interpreted
        assert len(compiled) == 1

    def test_repeated_variable_across_and_within_atoms(self):
        x, y = VARS[:2]
        inst = Instance(
            [atom(E, "a", "a"), atom(E, "a", "b"), atom(T, "a", "a", "b")]
        )
        patterns = (Atom(E, (x, x)), Atom(T, (x, x, y)))
        compiled, interpreted = both_paths(patterns, inst)
        assert compiled == interpreted
        assert len(compiled) == 1

    def test_initial_must_map_to_values(self):
        bad = Substitution({VARS[0]: VARS[1]})
        for matcher in (match, match_interpreted):
            try:
                list(matcher((), Instance(), initial=bad))
            except TypeError:
                pass
            else:  # pragma: no cover - parity of the error contract
                raise AssertionError("expected TypeError")


# ----------------------------------------------------------------------
# Plan machinery
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_same_pattern_compiles_once(self):
        plans.reset_cache()
        from repro.obs import counter

        compilations = counter("plan.compilations")
        hits = counter("plan.cache_hits")
        before_compiles = compilations.value
        before_hits = hits.value
        x, y = VARS[:2]
        patterns = (Atom(E, (x, y)),)
        inst = Instance([atom(E, "a", "b")])
        for _ in range(5):
            list(match(patterns, inst))
        assert compilations.value == before_compiles + 1
        assert hits.value == before_hits + 4

    def test_cache_is_bounded(self):
        plans.reset_cache()
        for i in range(plans._CACHE_LIMIT + 40):
            relation = RelationSymbol(f"R{i}", 1)
            list(match((Atom(relation, (VARS[0],)),), Instance()))
        assert plans.cache_size() <= plans._CACHE_LIMIT

    def test_interpreted_only_toggle(self):
        assert plans.enabled()
        with plans.interpreted_only():
            assert not plans.enabled()
            with plans.interpreted_only():
                assert not plans.enabled()
            assert not plans.enabled()
        assert plans.enabled()

    def test_explain_renders(self):
        x, y = VARS[:2]
        plan = plans.plan_for(
            (Atom(E, (x, y)), Atom(P, (y,))), (), frozenset()
        )
        text = plan.explain()
        assert "plan over 2 atom(s)" in text
        assert "step 0" in text

    def test_fully_bound_step_uses_ground_probe(self):
        # With x pre-bound both atoms become all-bound: every step should
        # compile to a has_tuple probe.
        x = VARS[0]
        plan = plans.plan_for(
            (Atom(P, (x,)), Atom(E, (x, Const("b")))), (), frozenset({x})
        )
        assert all(step[6] is not None for step in plan.steps)


# ----------------------------------------------------------------------
# Term interning and pickling (the executor's pickle probe contract)
# ----------------------------------------------------------------------


class TestInterning:
    def test_equal_terms_are_identical(self):
        assert Const("a") is Const("a")
        assert Null(3) is Null(3)
        assert Const("7") is Const(7)

    def test_pickle_roundtrip_preserves_identity(self):
        for value in (Const("a"), Null(5)):
            clone = pickle.loads(pickle.dumps(value))
            assert clone is value

    def test_pickled_atoms_and_substitutions_roundtrip(self):
        item = atom(E, "a", Null(2))
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item
        assert clone.args[0] is item.args[0]
        assert clone.args[1] is item.args[1]
        substitution = Substitution({VARS[0]: Const("a")})
        assert pickle.loads(pickle.dumps(substitution)) == substitution

    def test_deepcopy_preserves_identity(self):
        import copy

        assert copy.deepcopy(Const("a")) is Const("a")
        assert copy.deepcopy(Null(9)) is Null(9)


# ----------------------------------------------------------------------
# End-to-end fingerprints: compiled path == interpreted path, bytewise
# ----------------------------------------------------------------------


class TestFingerprintParity:
    def _solve_fingerprints(self, setting, source):
        from repro.exchange import solve

        result = solve(setting, source)
        prints = [fingerprint_instance(result.canonical_solution)]
        if result.core_solution is not None:
            prints.append(fingerprint_instance(result.core_solution))
        return prints

    def test_example_2_1_solution_fingerprints(self):
        from repro.generators.settings_library import (
            example_2_1_setting,
            example_2_1_source,
        )

        setting = example_2_1_setting()
        source = example_2_1_source()
        compiled = self._solve_fingerprints(setting, source)
        with plans.interpreted_only():
            interpreted = self._solve_fingerprints(setting, source)
        assert compiled == interpreted

    def test_example_5_3_solution_fingerprints(self):
        from repro.generators.settings_library import (
            example_5_3_setting,
            example_5_3_source,
        )

        setting = example_5_3_setting()
        source = example_5_3_source(3)
        compiled = self._solve_fingerprints(setting, source)
        with plans.interpreted_only():
            interpreted = self._solve_fingerprints(setting, source)
        assert compiled == interpreted

    def test_certain_answer_fingerprints_on_example_2_1(self):
        from repro.answering import certain_answers
        from repro.generators.settings_library import (
            example_2_1_setting,
            example_2_1_source,
        )
        from repro.logic import parse_query

        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- E(x, y)")

        def run():
            answers = certain_answers(setting, source, query)
            return fingerprint_answers(answers)

        compiled = run()
        with plans.interpreted_only():
            interpreted = run()
        assert compiled == interpreted
