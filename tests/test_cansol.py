"""Tests for CanSol -- Proposition 5.4's maximal CWA-solutions."""

import pytest

from repro.core import Instance, Schema, isomorphic
from repro.cwa import (
    UnsupportedSettingError,
    cansol,
    core_solution,
    enumerate_cwa_solutions,
    is_cwa_solution,
    is_homomorphic_image_of,
    is_maximal_cwa_solution,
)
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance


class TestEgdOnlyClass:
    def test_cansol_exists_and_is_cwa_solution(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1'), Emp('e3','d2')")
        maximal = cansol(setting_egd_only, source)
        assert maximal is not None
        assert is_cwa_solution(setting_egd_only, source, maximal)

    def test_egd_merges_witnesses(self, setting_egd_only):
        # Two employees in one department share the (unknown) manager.
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        maximal = cansol(setting_egd_only, source)
        assert maximal.count_of("Dept") == 1

    def test_cansol_is_maximal(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d2')")
        maximal = cansol(setting_egd_only, source)
        space = enumerate_cwa_solutions(setting_egd_only, source)
        assert is_maximal_cwa_solution(setting_egd_only, source, maximal, space)

    def test_every_solution_is_image_of_cansol(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        maximal = cansol(setting_egd_only, source)
        for solution in enumerate_cwa_solutions(setting_egd_only, source):
            assert is_homomorphic_image_of(solution, maximal)

    def test_cansol_none_when_no_solution(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        assert cansol(setting, source) is None

    def test_no_target_dependencies_gives_libkin_cansol(self):
        """For Σt = ∅, CanSol fires every justification with fresh nulls
        -- Libkin's canonical CWA-presolution."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
        )
        source = parse_instance("N('a','b'), N('a','c')")
        maximal = cansol(setting, source)
        # Two justifications (different ȳ-tuples) -> two F atoms.
        assert maximal.count_of("F") == 2
        assert len(maximal.nulls()) == 2


class TestCanSolRandomized:
    def test_maximality_over_random_sources(self, setting_egd_only):
        """Proposition 5.4 over a sweep of random employee sources."""
        from repro.generators import employee_source

        for seed in range(5):
            source = employee_source(4, 2, seed=seed)
            maximal = cansol(setting_egd_only, source)
            assert maximal is not None
            assert is_cwa_solution(setting_egd_only, source, maximal)
            space = enumerate_cwa_solutions(setting_egd_only, source)
            assert space
            for solution in space:
                assert is_homomorphic_image_of(solution, maximal), seed


class TestFullTgdClass:
    def test_cansol_via_standard_chase(self, setting_full_tgd):
        source = parse_instance("Edge('a','b'), Edge('b','c'), Start('a')")
        maximal = cansol(setting_full_tgd, source)
        assert maximal is not None
        assert maximal.count_of("Reach") == 3
        # No nulls anywhere: CanSol equals the core.
        assert isomorphic(maximal, core_solution(setting_full_tgd, source))

    def test_cansol_is_unique_cwa_solution_for_full_settings(
        self, setting_full_tgd
    ):
        source = parse_instance("Edge('a','b'), Start('a')")
        space = enumerate_cwa_solutions(setting_full_tgd, source)
        assert len(space) == 1
        assert isomorphic(space[0], cansol(setting_full_tgd, source))


class TestUnsupportedSettings:
    def test_example_2_1_not_supported(self, setting_2_1, source_2_1):
        # Σt has an existential tgd: outside both classes.
        with pytest.raises(UnsupportedSettingError):
            cansol(setting_2_1, source_2_1)

    def test_example_5_3_not_supported(self, setting_5_3, source_5_3):
        with pytest.raises(UnsupportedSettingError):
            cansol(setting_5_3, source_5_3)


class TestTheorem71ViaCanSol:
    """certain◇ = □Q(CanSol) and maybe◇ = ◇Q(CanSol) for the restricted
    classes, cross-validated against the direct definition."""

    def test_egd_only_cross_validation(self, setting_egd_only):
        from repro.answering import answers_over_space
        from repro.answering.valuations import certain_on, maybe_on
        from repro.logic import parse_query

        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        query = parse_query("Q(d) :- Dept(d, m)")
        space = enumerate_cwa_solutions(setting_egd_only, source)
        maximal = cansol(setting_egd_only, source)
        tdeps = setting_egd_only.target_dependencies

        assert certain_on(query, maximal, tdeps) == answers_over_space(
            query, space, tdeps, "potential_certain"
        )
        assert maybe_on(query, maximal, tdeps) == answers_over_space(
            query, space, tdeps, "maybe"
        )
