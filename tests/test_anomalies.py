"""Section 3: the anomalies of the classical certain answers semantics,
and how the CWA semantics repairs them."""

import pytest

from repro.answering import all_four_semantics, certain_answers
from repro.answering.valuations import certain_on
from repro.core import Const, Schema
from repro.cwa import core_solution
from repro.exchange import copy_instance, copying_setting
from repro.generators import section_3_source
from repro.logic import parse_query


SIGMA = Schema.of(E=2, P=1)


@pytest.fixture(scope="module")
def anomaly_setup():
    setting = copying_setting(SIGMA)
    source = section_3_source(cycle_length=9)
    copied = copy_instance(source, SIGMA)
    # The paper's query Q(x) = P'(x) ∨ ∃y∃z (P'(y) ∧ E'(y,z) ∧ ¬P'(z)).
    query = parse_query(
        "Q(x) := P_t(x) | exists y, z . (P_t(y) & E_t(y, z) & ~P_t(z))"
    )
    return setting, source, copied, query


class TestTheAnomaly:
    def test_naive_evaluation_returns_all_nodes(self, anomaly_setup):
        """On the intuitively-correct solution S', Q returns all 18
        nodes (a₄ is labeled and its successor is not, so the second
        disjunct holds for every x)."""
        _, _, copied, query = anomaly_setup
        answers = query.evaluate(copied)
        assert len(answers) == 18

    def test_classical_certain_answers_lose_the_b_cycle(self, anomaly_setup):
        """certain_D(Q, S) = {a₀..a₈}: the augmented solution that labels
        every aᵢ with P' kills the second disjunct, so only tuples that
        satisfy the first disjunct in *both* solutions survive.

        We replay the paper's argument with the two witnessing solutions
        (computing the intersection over literally all solutions is not
        effective)."""
        setting, source, copied, query = anomaly_setup
        augmented = copied.copy()
        p_relation = SIGMA["P"].primed()
        for index in range(9):
            from repro.core import Atom

            augmented.add(Atom(p_relation, (Const(f"a{index}"),)))
        assert setting.is_solution(source, augmented)

        classical_certain = query.evaluate(copied) & query.evaluate(augmented)
        assert classical_certain == frozenset(
            {(Const(f"a{i}"),) for i in range(9)}
        )

    def test_cwa_semantics_fix_the_anomaly(self, anomaly_setup):
        """Under the CWA, S_CWA = {S'} and Rep(S') = {S'}: all four
        semantics return Q(S') -- all 18 nodes."""
        setting, source, copied, query = anomaly_setup
        expected = query.evaluate(copied)
        results = all_four_semantics(setting, source, query)
        for name, answers in results.items():
            assert answers == expected, name

    def test_core_of_copying_setting_is_the_copy(self, anomaly_setup):
        setting, source, copied, _ = anomaly_setup
        from repro.core import isomorphic

        assert isomorphic(core_solution(setting, source), copied)


class TestCertainUniversalAnomaly:
    def test_domain_extension_keeps_u_certain_sane_here(self):
        """The u-certain anomaly needs the D-extension (end of Section
        3): on plain copying settings u-certain agrees with naive
        evaluation for our query; the CWA semantics agree on BOTH
        settings."""
        from repro.exchange import copying_setting_with_domain

        sigma = Schema.of(E=2, P=1)
        plain = copying_setting(sigma)
        extended = copying_setting_with_domain(sigma)
        source = section_3_source(cycle_length=5)
        query = parse_query("Q(x) :- P_t(x)")

        plain_answers = certain_answers(plain, source, query)
        extended_answers = certain_answers(extended, source, query)
        assert plain_answers == extended_answers == frozenset(
            {(Const("a4"),)}
        )
