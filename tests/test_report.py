"""Tests for exchange reports and DOT export."""

import pytest

from repro.core import Schema
from repro.dependencies import dependency_graph, parse_dependencies
from repro.dependencies.graph import to_dot
from repro.exchange import DataExchangeSetting, render, report
from repro.logic import parse_instance


class TestReport:
    def test_solved_report(self, setting_2_1, source_2_1):
        exchange_report = report(setting_2_1, source_2_1)
        assert exchange_report.status == "solved"
        text = render(exchange_report)
        assert "richly acyclic" in text
        assert "chase: success in 3 steps" in text
        assert "core (minimal CWA-solution): 3 atoms" in text
        assert "null justifications" in text

    def test_justifications_cover_core_nulls(self, setting_2_1, source_2_1):
        exchange_report = report(setting_2_1, source_2_1)
        produced = " ".join(p for _, p in exchange_report.justifications)
        for null in exchange_report.result.core_solution.nulls():
            assert str(null) in produced

    def test_no_solution_report(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        exchange_report = report(setting, source)
        assert exchange_report.status == "no solution"
        assert "FAILED" in render(exchange_report)

    def test_diverged_report(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(S0=2),
            Schema.of(E=2),
            ["S0(x, y) -> E(x, y)"],
            ["E(x, y) -> exists z . E(y, z)"],
        )
        source = parse_instance("S0('a','b')")
        exchange_report = report(setting, source, max_steps=50)
        assert exchange_report.status == "diverged"
        text = render(exchange_report)
        assert "DIVERGED" in text
        assert "NOT weakly acyclic" in text

    def test_restricted_class_mentioned(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1')")
        text = render(report(setting_egd_only, source))
        assert "egds only" in text


class TestDotExport:
    def test_edges_rendered(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        dot = to_dot(dependency_graph(deps))
        assert dot.startswith("digraph")
        assert '"E.2" -> "F.1";' in dot  # regular edge, 1-based positions
        assert "style=dashed" in dot  # the existential edge

    def test_extended_graph_has_more_dashed_edges(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(x, z)"])
        plain = to_dot(dependency_graph(deps))
        extended = to_dot(dependency_graph(deps, extended=True))
        assert extended.count("dashed") > plain.count("dashed")

    def test_empty_graph(self):
        dot = to_dot(dependency_graph([]))
        assert dot.startswith("digraph") and dot.endswith("}")
