"""Tests for CWA-solutions: Definition 4.7, Theorem 4.8, Example 4.9."""

import pytest

from repro.core import isomorphic
from repro.cwa import (
    core_solution,
    cwa_solution_exists,
    enumerate_cwa_presolutions,
    enumerate_cwa_solutions,
    is_cwa_presolution,
    is_cwa_solution,
)
from repro.generators.settings_library import example_4_9_non_solutions
from repro.homomorphism import has_homomorphism
from repro.logic import parse_instance


class TestExample21Solutions:
    def test_t2_and_t3_are_cwa_solutions(
        self, setting_2_1, source_2_1, solutions_2_1
    ):
        _, t2, t3 = solutions_2_1
        assert is_cwa_solution(setting_2_1, source_2_1, t2)
        assert is_cwa_solution(setting_2_1, source_2_1, t3)

    def test_t1_is_not(self, setting_2_1, source_2_1, solutions_2_1):
        t1, _, _ = solutions_2_1
        assert not is_cwa_solution(setting_2_1, source_2_1, t1)


class TestExample49:
    def test_t_prime_presolution_but_not_cwa_solution(
        self, setting_2_1, source_2_1
    ):
        """T' = {E(a,b), F(a,⊥), G(⊥,b)}: a CWA-presolution, but the fact
        ∃x (F(a,x) ∧ G(x,b)) does not follow from S and Σ."""
        t_prime, _ = example_4_9_non_solutions()
        assert is_cwa_presolution(setting_2_1, source_2_1, t_prime)
        assert not setting_2_1.is_universal_solution(source_2_1, t_prime)
        assert not is_cwa_solution(setting_2_1, source_2_1, t_prime)

    def test_t_double_prime_universal_but_not_presolution(
        self, setting_2_1, source_2_1
    ):
        """T'' is a universal solution but E(⊥3, b) is unjustified."""
        _, t_double_prime = example_4_9_non_solutions()
        assert setting_2_1.is_universal_solution(source_2_1, t_double_prime)
        assert not is_cwa_presolution(setting_2_1, source_2_1, t_double_prime)
        assert not is_cwa_solution(setting_2_1, source_2_1, t_double_prime)


class TestTheorem48:
    """CWA-solution ⟺ universal ∧ CWA-presolution, over the whole
    enumerated presolution space."""

    def test_equivalence_on_example_2_1(self, setting_2_1, source_2_1):
        presolutions = enumerate_cwa_presolutions(setting_2_1, source_2_1)
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        assert presolutions, "presolution space must not be empty"
        for candidate in presolutions:
            expected = setting_2_1.is_universal_solution(source_2_1, candidate)
            got = any(isomorphic(candidate, sol) for sol in solutions)
            assert got == expected

    def test_equivalence_on_example_5_3(self, setting_5_3, source_5_3):
        presolutions = enumerate_cwa_presolutions(setting_5_3, source_5_3)
        for candidate in presolutions:
            direct = is_cwa_solution(setting_5_3, source_5_3, candidate)
            via_thm = setting_5_3.is_universal_solution(
                source_5_3, candidate
            ) and is_cwa_presolution(setting_5_3, source_5_3, candidate)
            assert direct == via_thm


class TestExistence:
    def test_exists_for_example_2_1(self, setting_2_1, source_2_1):
        assert cwa_solution_exists(setting_2_1, source_2_1)

    def test_fails_on_constant_clash(self, setting_egd_only):
        # Two departments with two distinct constant managers... the
        # egd-only setting uses nulls, so build a failing source through
        # the full-tgd route instead.
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        assert not cwa_solution_exists(setting, source)
        assert core_solution(setting, source) is None

    def test_empty_source_has_empty_solution(self, setting_2_1):
        from repro.core import Instance

        empty = Instance()
        assert cwa_solution_exists(setting_2_1, empty)
        assert len(core_solution(setting_2_1, empty)) == 0


class TestCoreIsCwaSolution:
    """Theorem 5.1 across all fixture settings."""

    def test_example_2_1(self, setting_2_1, source_2_1, solutions_2_1):
        minimal = core_solution(setting_2_1, source_2_1)
        assert is_cwa_solution(setting_2_1, source_2_1, minimal)
        _, _, t3 = solutions_2_1
        assert isomorphic(minimal, t3)

    def test_example_5_3(self, setting_5_3, source_5_3):
        minimal = core_solution(setting_5_3, source_5_3)
        assert is_cwa_solution(setting_5_3, source_5_3, minimal)

    def test_egd_only_setting(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        minimal = core_solution(setting_egd_only, source)
        assert is_cwa_solution(setting_egd_only, source, minimal)

    def test_full_tgd_setting(self, setting_full_tgd):
        source = parse_instance(
            "Edge('a','b'), Edge('b','c'), Start('a')"
        )
        minimal = core_solution(setting_full_tgd, source)
        assert is_cwa_solution(setting_full_tgd, source, minimal)
        # Reachability was computed.
        assert minimal.count_of("Reach") == 3

    def test_core_has_homomorphism_into_every_cwa_solution(
        self, setting_2_1, source_2_1
    ):
        minimal = core_solution(setting_2_1, source_2_1)
        for solution in enumerate_cwa_solutions(setting_2_1, source_2_1):
            assert has_homomorphism(minimal, solution)
