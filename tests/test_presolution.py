"""Tests for CWA-presolution recognition (Definition 4.6)."""

import pytest

from repro.chase import ChaseStatus, alpha_chase
from repro.core import Instance, Schema, isomorphic
from repro.cwa import find_alpha, is_cwa_presolution
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance


class TestExample21:
    def test_t2_is_presolution(self, setting_2_1, source_2_1, solutions_2_1):
        _, t2, _ = solutions_2_1
        assert is_cwa_presolution(setting_2_1, source_2_1, t2)

    def test_t3_is_presolution(self, setting_2_1, source_2_1, solutions_2_1):
        _, _, t3 = solutions_2_1
        assert is_cwa_presolution(setting_2_1, source_2_1, t3)

    def test_t1_is_not_presolution(self, setting_2_1, source_2_1, solutions_2_1):
        # T1 contains E(c, ⊥2), which no justification produces.
        t1, _, _ = solutions_2_1
        assert not is_cwa_presolution(setting_2_1, source_2_1, t1)

    def test_example_4_9_t_prime_is_presolution_but_not_solution_check(
        self, setting_2_1, source_2_1
    ):
        """T' = {E(a,b), F(a,⊥), G(⊥,b)} is a CWA-presolution: the
        justification (d3, ⊥, a) may map its z to the constant b."""
        t_prime = parse_instance("E('a','b'), F('a',#1), G(#1,'b')")
        assert is_cwa_presolution(setting_2_1, source_2_1, t_prime)

    def test_example_4_9_t_double_prime_not_presolution(
        self, setting_2_1, source_2_1
    ):
        """T'' has the unjustified atom E(⊥3, b)."""
        t = parse_instance("E('a','b'), E(#3,'b'), F('b',#1), G(#1,#2)")
        assert not is_cwa_presolution(setting_2_1, source_2_1, t)

    def test_missing_atoms_rejected(self, setting_2_1, source_2_1):
        # The empty target is no solution (d1 forces E(a,b)).
        assert not is_cwa_presolution(setting_2_1, source_2_1, Instance())

    def test_violating_egd_rejected(self, setting_2_1, source_2_1):
        t = parse_instance(
            "E('a','b'), F('a',#1), F('a',#2), G(#1,#3), G(#2,#4)"
        )
        assert not is_cwa_presolution(setting_2_1, source_2_1, t)


class TestFindAlphaRoundtrip:
    def test_returned_alpha_reproduces_target(
        self, setting_2_1, source_2_1, solutions_2_1
    ):
        """find_alpha's witness drives an actual successful α-chase whose
        result is exactly S ∪ T."""
        _, t2, t3 = solutions_2_1
        for target in (t2, t3):
            alpha = find_alpha(setting_2_1, source_2_1, target)
            assert alpha is not None
            outcome = alpha_chase(
                source_2_1, list(setting_2_1.all_dependencies), alpha
            )
            assert outcome.successful
            assert outcome.instance == source_2_1.union(target)

    def test_none_for_non_presolution(self, setting_2_1, source_2_1, solutions_2_1):
        t1, _, _ = solutions_2_1
        assert find_alpha(setting_2_1, source_2_1, t1) is None


class TestWitnessChoices:
    @pytest.fixture
    def chain_setting(self):
        return DataExchangeSetting.from_strings(
            Schema.of(P=1),
            Schema.of(A=2, B=1),
            ["P(x) -> exists z . A(x, z)"],
            ["A(x, z) -> B(z)"],
        )

    def test_null_witness(self, chain_setting):
        source = parse_instance("P('a')")
        target = parse_instance("A('a', #1), B(#1)")
        assert is_cwa_presolution(chain_setting, source, target)

    def test_constant_witness(self, chain_setting):
        # α may map the existential to the constant a itself.
        source = parse_instance("P('a')")
        target = parse_instance("A('a', 'a'), B('a')")
        assert is_cwa_presolution(chain_setting, source, target)

    def test_extra_unjustified_atom_rejected(self, chain_setting):
        source = parse_instance("P('a')")
        target = parse_instance("A('a', #1), B(#1), B(#7)")
        assert not is_cwa_presolution(chain_setting, source, target)

    def test_two_justifications_may_share_a_witness(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(P=1, Q=1),
            Schema.of(A=2),
            ["P(x) -> exists z . A(x, z)", "Q(x) -> exists z . A(x, z)"],
        )
        source = parse_instance("P('a'), Q('a')")
        shared = parse_instance("A('a', #1)")
        separate = parse_instance("A('a', #1), A('a', #2)")
        assert is_cwa_presolution(setting, source, shared)
        assert is_cwa_presolution(setting, source, separate)

    def test_full_tgds_have_no_choice(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(E=2),
            Schema.of(F=2, G=2),
            ["E(x, y) -> F(x, y)"],
            ["F(x, y) -> G(y, x)"],
        )
        source = parse_instance("E('a','b')")
        good = parse_instance("F('a','b'), G('b','a')")
        incomplete = parse_instance("F('a','b')")
        assert is_cwa_presolution(setting, source, good)
        assert not is_cwa_presolution(setting, source, incomplete)


class TestCwa2Enforcement:
    def test_one_justification_cannot_generate_two_values(self):
        """CWA2: {A(a,⊥1), A(a,⊥2)} from a single justification is
        rejected -- one justification, one value."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(P=1),
            Schema.of(A=2),
            ["P(x) -> exists z . A(x, z)"],
        )
        source = parse_instance("P('a')")
        doubled = parse_instance("A('a', #1), A('a', #2)")
        assert not is_cwa_presolution(setting, source, doubled)

    def test_distinct_justifications_from_y_tuples(self):
        """(d, ū, v̄) with different v̄ are DIFFERENT justifications, so
        N(a,b) and N(a,c) may produce two F-atoms (cf. Example 4.4)."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
        )
        source = parse_instance("N('a','b'), N('a','c')")
        two = parse_instance("F('a',#1), F('a',#2)")
        three = parse_instance("F('a',#1), F('a',#2), F('a',#3)")
        assert is_cwa_presolution(setting, source, two)
        assert not is_cwa_presolution(setting, source, three)
