"""The process-pool executor: determinism, fallbacks, and wiring.

The load-bearing guarantee: for every entry point that accepts an
``executor``, a parallel run returns *exactly* what the serial run
returns -- same answer sets, same solution spaces up to isomorphism.
"""

import os

import pytest

import repro.obs as obs
from repro.answering.decision import AnswerLanguage
from repro.answering.semantics import all_four_semantics, answers_over_space
from repro.core.instance import isomorphic
from repro.cwa.enumeration import enumerate_cwa_solutions
from repro.engine import Executor, default_workers
from repro.engine.executor import WORKERS_ENV
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
    example_5_3_setting,
    example_5_3_source,
)
from repro.logic import parse_query

SEMANTICS = ("certain", "potential_certain", "persistent_maybe", "maybe")


def _square(x):
    return x * x


def _concat_chunk(chunk, suffix):
    return [item + suffix for item in chunk]


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


class TestDefaults:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1
        assert not Executor().parallel

    def test_env_sets_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        assert Executor().workers == 3

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        assert default_workers() == 1

    def test_explicit_workers_win(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert Executor(workers=2).workers == 2


class TestMapTasks:
    def test_serial_map(self):
        with Executor(workers=1) as executor:
            assert executor.map_worlds(_square, [3, 1, 2]) == [9, 1, 4]
        assert obs.snapshot()["counters"]["engine.serial_tasks"] == 3

    def test_parallel_map_preserves_order(self):
        with Executor(workers=2) as executor:
            result = executor.map_worlds(_square, list(range(16)))
        assert result == [x * x for x in range(16)]
        found = obs.snapshot()["counters"]
        assert found["engine.tasks_dispatched"] == 16

    def test_parallel_records_worker_time(self):
        with Executor(workers=2) as executor:
            executor.map_worlds(_square, list(range(4)))
        spans = obs.snapshot()["spans"]
        assert spans["engine.worlds"]["count"] == 4

    def test_unpicklable_falls_back_to_serial(self):
        with Executor(workers=2) as executor:
            result = executor.map_tasks(lambda x: x + 1, [(1,), (2,)])
        assert result == [2, 3]
        found = obs.snapshot()["counters"]
        assert found["engine.pickle_fallbacks"] == 1
        assert found.get("engine.tasks_dispatched", 0) == 0

    def test_empty_input(self):
        with Executor(workers=2) as executor:
            assert executor.map_worlds(_square, []) == []

    def test_map_valuations_chunks(self):
        with Executor(workers=2) as executor:
            chunks = executor.map_valuations(
                _concat_chunk, ["a", "b", "c", "d", "e"], "!", chunk_size=2
            )
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == ["a!", "b!", "c!", "d!", "e!"]


class TestProbeCache:
    def test_repeat_submissions_hit_probe_cache(self):
        with Executor(workers=2) as executor:
            executor.map_worlds(_square, [1, 2])
            executor.map_worlds(_square, [3, 4])
            executor.map_worlds(_square, [5, 6])
        found = obs.snapshot()["counters"]
        assert found["engine.probe_cache_hits"] == 2
        assert found["engine.tasks_dispatched"] == 6

    def test_unpicklable_verdict_is_cached(self):
        bad = lambda x: x + 1  # noqa: E731 -- lambdas cannot be pickled
        with Executor(workers=2) as executor:
            first = executor.map_tasks(bad, [(1,), (2,)])
            second = executor.map_tasks(bad, [(3,), (4,)])
        assert first == [2, 3]
        assert second == [4, 5]
        found = obs.snapshot()["counters"]
        # Both batches fell back to serial, but only the first paid the
        # probe; the second was answered from the cache.
        assert found["engine.pickle_fallbacks"] == 2
        assert found["engine.probe_cache_hits"] == 1
        assert found.get("engine.tasks_dispatched", 0) == 0


class TestSemanticsParity:
    def test_all_four_semantics_identical(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- E(x, y)")
        serial = all_four_semantics(setting, source, query)
        with Executor(workers=2) as executor:
            parallel = all_four_semantics(
                setting, source, query, executor=executor
            )
        assert serial == parallel

    def test_answers_over_space_identical(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- G(x, y)")
        space = enumerate_cwa_solutions(setting, source)
        with Executor(workers=2) as executor:
            for mode in SEMANTICS:
                serial = answers_over_space(
                    query, space, setting.target_dependencies, mode
                )
                parallel = answers_over_space(
                    query,
                    space,
                    setting.target_dependencies,
                    mode,
                    executor=executor,
                )
                assert serial == parallel, mode

    def test_batch_answer_matches_singles(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        queries = [
            parse_query("Q(x) :- E(x, y)"),
            parse_query("Q(x) :- F(x, y)"),
            parse_query("Q(x, y) :- E(x, y)"),
        ]
        singles = [
            all_four_semantics(setting, source, query)["certain"]
            for query in queries
        ]
        with Executor(workers=2) as executor:
            batched = executor.batch_answer(
                setting, source, queries, "certain"
            )
        assert batched == singles

    def test_batch_answer_rejects_unknown_semantics(self):
        from repro.core.errors import ReproError

        with Executor(workers=1) as executor:
            with pytest.raises(ReproError):
                executor.batch_answer(
                    example_2_1_setting(), example_2_1_source(), [], "nope"
                )


class TestEnumerationParity:
    @pytest.mark.parametrize("pairs", [1, 2])
    def test_example_5_3_space(self, pairs):
        setting = example_5_3_setting()
        source = example_5_3_source(pairs)
        serial = enumerate_cwa_solutions(setting, source)
        with Executor(workers=2) as executor:
            parallel = enumerate_cwa_solutions(
                setting, source, executor=executor
            )
        assert len(serial) == len(parallel)
        for candidate in serial:
            assert any(isomorphic(candidate, other) for other in parallel)


def _merged_counters(snapshot):
    """Counter totals that must agree between serial and pooled runs.

    ``engine.*`` accounting legitimately differs (serial_tasks vs
    tasks_dispatched), and ``plan.*`` differs because each worker
    process compiles into its own plan cache.
    """
    return {
        name: value
        for name, value in snapshot["counters"].items()
        if not name.startswith(("engine.", "plan."))
    }


class TestTelemetryParity:
    """Merged worker telemetry equals one registry that saw every task."""

    def _snapshots(self):
        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- E(x, y)")
        obs.reset()
        serial = all_four_semantics(setting, source, query)
        serial_snapshot = obs.snapshot()
        obs.reset()
        with Executor(workers=2) as executor:
            parallel = all_four_semantics(
                setting, source, query, executor=executor
            )
        parallel_snapshot = obs.snapshot()
        assert serial == parallel
        return serial_snapshot, parallel_snapshot

    def test_counter_totals_agree(self):
        serial_snapshot, parallel_snapshot = self._snapshots()
        assert _merged_counters(serial_snapshot) == _merged_counters(
            parallel_snapshot
        )

    def test_span_counts_agree_on_shared_paths(self):
        serial_snapshot, parallel_snapshot = self._snapshots()
        # obs.reset() zeroes span stats but keeps registered paths, so
        # compare only paths that actually fired in this run.
        serial_spans = {
            path: entry
            for path, entry in serial_snapshot["spans"].items()
            if entry["count"]
        }
        parallel_spans = parallel_snapshot["spans"]
        assert serial_spans, "serial run recorded no spans"
        for path, entry in serial_spans.items():
            assert entry["count"] == parallel_spans[path]["count"], path

    def test_executor_histograms_count_dispatched_tasks(self):
        with Executor(workers=2) as executor:
            executor.map_worlds(_square, list(range(6)))
        snapshot = obs.snapshot()
        dispatched = snapshot["counters"]["engine.tasks_dispatched"]
        assert dispatched == 6
        histograms = snapshot["histograms"]
        assert histograms["engine.executor.task_seconds"]["count"] == 6
        waits = histograms["engine.executor.queue_wait_seconds"]
        assert waits["count"] == 6
        assert waits["min"] >= 0.0

    def test_worker_spans_nest_under_parent_path(self):
        with Executor(workers=2) as executor:
            with obs.span("outer"):
                executor.map_worlds(_square, list(range(4)))
        spans = obs.snapshot()["spans"]
        assert spans["outer/engine.worlds"]["count"] == 4
        # Merging worker blobs must not zero the parent's span minima
        # (forked workers export only entries their task touched).
        assert spans["outer"]["min"] > 0.0
        assert spans["outer/engine.worlds"]["min"] > 0.0

    def test_worker_events_carry_lanes(self):
        sink = obs.RecordingSink()
        previous = obs.install_sink(sink)
        try:
            with Executor(workers=2) as executor:
                executor.map_worlds(_square, list(range(8)))
        finally:
            obs.install_sink(previous)
        worker_events = [e for e in sink.events if "lane" in e]
        assert worker_events, "no worker trace events replayed"
        lanes = {e["lane"] for e in worker_events}
        assert all(lane != os.getpid() for lane in lanes)
        trace_ids = {e.get("trace") for e in worker_events}
        assert len(trace_ids) == 1
        for lane in lanes:
            in_lane = [e for e in worker_events if e["lane"] == lane]
            starts = sum(1 for e in in_lane if e["type"] == "span_start")
            ends = sum(1 for e in in_lane if e["type"] == "span_end")
            assert starts == ends


class TestDecisionParity:
    def test_general_setting_membership(self):
        # Example 5.3 settings are outside the CanSol classes, so the
        # decision procedure walks the enumerated space -- the branch
        # the executor parallelizes.
        setting = example_5_3_setting()
        source = example_5_3_source(1)
        query = parse_query("Q() :- E(x, y, z)", setting.target_schema)
        serial = AnswerLanguage(setting, query, "maybe")
        with Executor(workers=2) as executor:
            parallel = AnswerLanguage(
                setting, query, "maybe", executor=executor
            )
            assert serial(source, ()) == parallel(source, ())
