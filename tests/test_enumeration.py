"""Tests for enumerating CWA-(pre)solutions; Example 5.3."""

import pytest

from repro.core import isomorphic
from repro.cwa import (
    enumerate_cwa_presolutions,
    enumerate_cwa_solutions,
    is_cwa_solution,
    is_homomorphic_image_of,
    is_maximal_cwa_solution,
    is_minimal_cwa_solution,
    core_solution,
)
from repro.generators.settings_library import (
    example_5_3_named_solutions,
    example_5_3_source,
)
from repro.logic import parse_instance


class TestExample53:
    def test_exactly_four_solutions_for_one_p_fact(
        self, setting_5_3, source_5_3
    ):
        """For S = {P(1)} the CWA-solutions, up to renaming of nulls, are
        the four equality patterns of (z1..z4) that map into the
        canonical solution: all distinct, z3=z4, z1=z2, and both
        (the core)."""
        solutions = enumerate_cwa_solutions(setting_5_3, source_5_3)
        assert len(solutions) == 4

    def test_named_solutions_present(self, setting_5_3, source_5_3):
        solutions = enumerate_cwa_solutions(setting_5_3, source_5_3)
        t, t_prime = example_5_3_named_solutions()
        assert any(isomorphic(t, s) for s in solutions)
        assert any(isomorphic(t_prime, s) for s in solutions)

    def test_t_and_t_prime_incomparable(self, setting_5_3, source_5_3):
        """Neither T nor T' is a homomorphic image of another
        CWA-solution (the paper's incomparability claim)."""
        solutions = enumerate_cwa_solutions(setting_5_3, source_5_3)
        t, t_prime = example_5_3_named_solutions()
        for named in (t, t_prime):
            others = [s for s in solutions if not isomorphic(s, named)]
            assert not any(
                is_homomorphic_image_of(named, other) for other in others
            )

    def test_no_maximal_solution(self, setting_5_3, source_5_3):
        solutions = enumerate_cwa_solutions(setting_5_3, source_5_3)
        assert not any(
            is_maximal_cwa_solution(setting_5_3, source_5_3, s, solutions)
            for s in solutions
        )

    def test_core_is_the_unique_minimal(self, setting_5_3, source_5_3):
        solutions = enumerate_cwa_solutions(setting_5_3, source_5_3)
        minimal = core_solution(setting_5_3, source_5_3)
        assert is_minimal_cwa_solution(
            setting_5_3, source_5_3, minimal, solutions
        )
        non_core = [s for s in solutions if not isomorphic(s, minimal)]
        assert not any(
            is_minimal_cwa_solution(setting_5_3, source_5_3, s, solutions)
            for s in non_core
        )

    def test_solution_count_grows_exponentially(self, setting_5_3):
        """|CWA-solutions(S_n)| = 4^n: each P(i) independently picks one
        of the 4 patterns (the paper lower-bounds this by 2^n)."""
        counts = {}
        for n in (1, 2):
            source = example_5_3_source(n)
            counts[n] = len(enumerate_cwa_solutions(setting_5_3, source))
        assert counts[1] == 4
        assert counts[2] == 16


class TestEnumerationSoundness:
    def test_every_enumerated_presolution_is_one(
        self, setting_2_1, source_2_1
    ):
        from repro.cwa import is_cwa_presolution

        presolutions = enumerate_cwa_presolutions(setting_2_1, source_2_1)
        assert presolutions
        for candidate in presolutions:
            assert is_cwa_presolution(setting_2_1, source_2_1, candidate)

    def test_every_enumerated_solution_is_one(self, setting_2_1, source_2_1):
        for candidate in enumerate_cwa_solutions(setting_2_1, source_2_1):
            assert is_cwa_solution(setting_2_1, source_2_1, candidate)

    def test_results_pairwise_non_isomorphic(self, setting_2_1, source_2_1):
        results = enumerate_cwa_presolutions(setting_2_1, source_2_1)
        for i, left in enumerate(results):
            for right in results[i + 1 :]:
                assert not isomorphic(left, right)

    def test_known_solutions_found(self, setting_2_1, source_2_1, solutions_2_1):
        _, t2, t3 = solutions_2_1
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        assert any(isomorphic(t2, s) for s in solutions)
        assert any(isomorphic(t3, s) for s in solutions)

    def test_no_solution_no_enumeration(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        assert enumerate_cwa_solutions(setting, source) == []

    def test_empty_source(self, setting_2_1):
        from repro.core import Instance

        solutions = enumerate_cwa_solutions(setting_2_1, Instance())
        assert len(solutions) == 1
        assert len(solutions[0]) == 0
