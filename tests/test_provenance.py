"""Tests for the derivation provenance ledger (``repro.obs/prov/v1``).

The verbatim justification chain is checked against the hand-derived
derivation of Example 2.1: the standard chase fires d1 once (E(a,b)),
d2 once on N(a,b) (E(a,⊥0), F(a,⊥1); the N(a,c) trigger is skipped by
Remark 4.3), and d3 once on F(a,⊥1) (G(⊥1,⊥2)) -- so the paper-style
justification of G(⊥1,⊥2) is

    G(⊥1,⊥2)  ⇐  d3 with y ↦ a, x ↦ ⊥1 and witness z ↦ ⊥2
    F(a,⊥1)   ⇐  d2 with x ↦ a, y ↦ b and witnesses z1 ↦ ⊥0, z2 ↦ ⊥1
    N(a,b)    ⇐  source
"""

import pytest

from repro import obs
from repro.chase import standard_chase
from repro.chase.oblivious import oblivious_chase
from repro.chase.seminaive import seminaive_chase
from repro.core import ReproError
from repro.core.atoms import Atom
from repro.core.schema import RelationSymbol
from repro.core.terms import Const, Null
from repro.dependencies import parse_dependencies
from repro.homomorphism import core
from repro.logic import parse_instance
from repro.obs import NULL_SINK
from repro.obs.provenance import (
    ProvenanceLedger,
    active_ledger,
    recording,
)


@pytest.fixture(autouse=True)
def clean_registry():
    """Gauge assertions need a zeroed registry and the null sink."""
    previous = obs.install_sink(NULL_SINK)
    obs.reset()
    yield
    obs.install_sink(previous)
    obs.reset()


def atom(name, *args):
    values = tuple(
        Null(item) if isinstance(item, int) else Const(item) for item in args
    )
    return Atom(RelationSymbol(name, len(values)), values)


# ----------------------------------------------------------------------
# Activation idiom
# ----------------------------------------------------------------------


class TestActivation:
    def test_disabled_by_default(self):
        assert active_ledger() is None

    def test_recording_installs_and_restores(self):
        with recording() as outer:
            assert active_ledger() is outer
            with recording() as inner:
                assert active_ledger() is inner
            assert active_ledger() is outer
        assert active_ledger() is None

    def test_recording_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert active_ledger() is None

    def test_chase_without_recording_leaves_no_trace(self, setting_2_1, source_2_1):
        outcome = standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        assert outcome.successful
        assert active_ledger() is None


# ----------------------------------------------------------------------
# Recording through the engines
# ----------------------------------------------------------------------


class TestRecording:
    def test_example_2_1_dag_shape(self, setting_2_1, source_2_1):
        with recording() as ledger:
            outcome = standard_chase(
                source_2_1, list(setting_2_1.all_dependencies)
            )
        assert outcome.successful
        kinds = [step.kind for step in ledger.steps]
        assert kinds == ["source", "tgd", "tgd", "tgd"]
        assert [s.dependency for s in ledger.steps[1:]] == ["d1", "d2", "d3"]
        assert all(s.via == "standard" for s in ledger.steps[1:])
        # Every chase-result fact is live in the ledger.
        assert set(ledger.live_facts()) == set(outcome.instance)

    def test_why_reproduces_paper_justification_verbatim(self, setting_2_1):
        # The single-N-trigger prefix of Example 2.1: with one N atom
        # there is exactly one d2 justification, so the rendered chain
        # is fully deterministic (with both N atoms, *which* of the two
        # interchangeable triggers justifies F(a,⊥1) depends on set
        # iteration order; see the modulo-trigger test below).
        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            standard_chase(source, list(setting_2_1.all_dependencies))
        assert ledger.render_why(atom("G", 1, 2)) == (
            "G(⊥1, ⊥2) ⇐ d3[x ↦ ⊥1, y ↦ a; z ↦ ⊥2]\n"
            "  F(a, ⊥1) ⇐ d2[x ↦ a, y ↦ b; z1 ↦ ⊥0, z2 ↦ ⊥1]\n"
            "    N(a, b) ⇐ source"
        )

    def test_why_on_full_source_modulo_trigger_choice(
        self, setting_2_1, source_2_1
    ):
        # With both N atoms present either trigger justifies F(a,⊥1);
        # the chain shape and everything but the interchangeable b/c
        # binding is pinned.
        with recording() as ledger:
            standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        rendered = ledger.render_why(atom("G", 1, 2))
        witness = "b" if "N(a, b) ⇐ source" in rendered else "c"
        assert rendered == (
            "G(⊥1, ⊥2) ⇐ d3[x ↦ ⊥1, y ↦ a; z ↦ ⊥2]\n"
            f"  F(a, ⊥1) ⇐ d2[x ↦ a, y ↦ {witness}; z1 ↦ ⊥0, z2 ↦ ⊥1]\n"
            f"    N(a, {witness}) ⇐ source"
        )

    def test_why_tree_structure(self, setting_2_1):
        source = parse_instance("M('a','b'), N('a','b')")
        with recording() as ledger:
            standard_chase(source, list(setting_2_1.all_dependencies))
        justification = ledger.why(atom("G", 1, 2))
        chain = justification.chain()
        assert [node.kind for node in chain] == ["tgd", "tgd", "source"]
        assert chain[-1].fact == atom("N", "a", "b")
        # The witnesses of the producing step are part of the record.
        assert justification.step.witnesses == (("z", Null(2)),)

    def test_seminaive_records_equivalent_dag(self, setting_2_1, source_2_1):
        with recording() as ledger:
            outcome = seminaive_chase(
                source_2_1, list(setting_2_1.all_dependencies)
            )
        assert outcome.successful
        assert all(
            s.via == "seminaive" for s in ledger.steps if s.kind == "tgd"
        )
        assert ledger.why(atom("G", 1, 2)) is not None

    def test_oblivious_chase_records_via_alpha(self, setting_2_1, source_2_1):
        # Drop the egd d4: under the fresh-null α an egd merge re-enables
        # its justification and the chase loops (Example 4.4, α₃).
        tgds_only = list(setting_2_1.st_dependencies) + [
            setting_2_1.target_dependencies[0]
        ]
        with recording() as ledger:
            outcome, _ = oblivious_chase(source_2_1, tgds_only)
        assert outcome.successful
        tgd_steps = [s for s in ledger.steps if s.kind == "tgd"]
        assert tgd_steps
        assert all(s.via == "alpha" for s in tgd_steps)
        # The oblivious chase fires *every* justification -- both
        # N-triggers of d2 -- so the DAG has more firings than the
        # standard chase's three.
        assert len(tgd_steps) > 3

    def test_egd_merge_rewrites_live_facts(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        with recording() as ledger:
            outcome = standard_chase(source, deps)
        assert outcome.successful
        merges = [s for s in ledger.steps if s.kind == "egd"]
        assert len(merges) == 1
        old, new = merges[0].merged
        assert old == Null(0) and new == Const("c")
        assert (atom("F", "a", 0), atom("F", "a", "c")) in merges[0].rewrites
        # The rewritten-away fact is gone; its merged form is live.
        assert atom("F", "a", 0) not in set(ledger.live_facts())
        assert atom("F", "a", "c") in set(ledger.live_facts())
        assert "rewritten to F(a, c)" in ledger.why_not(atom("F", "a", 0))

    def test_why_through_an_egd_rewrite(self):
        # Only tgd-derived facts mention the null, so the merged form's
        # first producer is the rewrite step itself: why() must narrate
        # through the egd node down to the pre-merge derivation.
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "H(x, y) -> F(x, y)",
                "F(x, y) & H(u, y) -> x = u",
            ]
        )
        source = parse_instance("E('a','b'), H('c','q')")
        with recording() as ledger:
            outcome = standard_chase(source, deps)
        assert outcome.successful
        # F(a,⊥0) and F(c,q) exist; no merge applies to them -- keep it
        # simple: just check every live fact has a justification.
        for fact in ledger.live_facts():
            assert ledger.why(fact) is not None

    def test_retraction_recorded_by_core_folding(self, setting_2_1, source_2_1):
        with recording() as ledger:
            outcome = standard_chase(
                source_2_1, list(setting_2_1.all_dependencies)
            )
            target = outcome.instance.reduct(setting_2_1.target_schema)
            folded = core(target)
        dropped = set(target) - set(folded)
        assert dropped  # E(a,⊥0) folds into E(a,b)
        retractions = [s for s in ledger.steps if s.kind == "retract"]
        assert retractions
        for fact in dropped:
            explanation = ledger.why_not(fact)
            assert "retracted by core" in explanation
            assert "endomorphism" in explanation

    def test_why_not_never_derived(self, setting_2_1, source_2_1):
        with recording() as ledger:
            standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        assert "never derived" in ledger.why_not(atom("G", "x", "y"))

    def test_source_recording_is_idempotent(self, source_2_1):
        ledger = ProvenanceLedger()
        ledger.record_source(source_2_1)
        ledger.record_source(source_2_1)
        assert len(ledger.steps) == 1


# ----------------------------------------------------------------------
# Serialization (repro.obs/prov/v1)
# ----------------------------------------------------------------------


class TestSerialization:
    def _recorded_ledger(self, setting, source):
        with recording() as ledger:
            outcome = standard_chase(source, list(setting.all_dependencies))
            folded = core(outcome.instance.reduct(setting.target_schema))
            assert folded is not None
        return ledger

    def test_roundtrip_preserves_fingerprint(self, setting_2_1, source_2_1):
        ledger = self._recorded_ledger(setting_2_1, source_2_1)
        text = ledger.dumps()
        back = ProvenanceLedger.loads(text)
        assert back.fingerprint() == ledger.fingerprint()
        assert back.dumps() == text

    def test_roundtrip_preserves_queries(self, setting_2_1, source_2_1):
        ledger = self._recorded_ledger(setting_2_1, source_2_1)
        back = ProvenanceLedger.loads(ledger.dumps())
        assert set(back.live_facts()) == set(ledger.live_facts())
        assert back.render_why(atom("G", 1, 2)) == ledger.render_why(
            atom("G", 1, 2)
        )
        assert back.why_not(atom("E", "a", 0)) == ledger.why_not(
            atom("E", "a", 0)
        )

    def test_egd_steps_roundtrip(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        with recording() as ledger:
            standard_chase(source, deps)
        back = ProvenanceLedger.loads(ledger.dumps())
        assert back.fingerprint() == ledger.fingerprint()
        merges = [s for s in back.steps if s.kind == "egd"]
        assert merges and merges[0].merged == (Null(0), Const("c"))

    def test_payload_schema_versioned(self, setting_2_1, source_2_1):
        ledger = self._recorded_ledger(setting_2_1, source_2_1)
        payload = ledger.to_payload()
        assert payload["schema"] == "repro.obs/prov/v1"
        kinds = {step["kind"] for step in payload["steps"]}
        assert kinds == {"source", "tgd", "retract"}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ReproError):
            ProvenanceLedger.from_payload({"schema": "bogus/v9", "steps": []})

    def test_invalid_json_rejected(self):
        with pytest.raises(ReproError):
            ProvenanceLedger.loads("{not json")

    def test_malformed_step_rejected(self):
        with pytest.raises(ReproError):
            ProvenanceLedger.from_payload(
                {"schema": "repro.obs/prov/v1", "steps": [{"kind": "wat"}]}
            )


# ----------------------------------------------------------------------
# The new instance-size gauges
# ----------------------------------------------------------------------


class TestSizeGauges:
    def test_standard_chase_sets_size_gauges(self, setting_2_1, source_2_1):
        outcome = standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        gauges = obs.snapshot()["gauges"]
        assert gauges["chase.instance_size"] == len(outcome.instance)
        # Example 2.1's chase only grows, so the peak is the final size.
        assert gauges["chase.peak_atoms"] == len(outcome.instance)
        assert gauges["chase.peak_atoms"] >= len(source_2_1)

    def test_seminaive_chase_sets_size_gauges(self, setting_2_1, source_2_1):
        outcome = seminaive_chase(
            source_2_1, list(setting_2_1.all_dependencies)
        )
        gauges = obs.snapshot()["gauges"]
        assert gauges["chase.instance_size"] == len(outcome.instance)
        assert gauges["chase.peak_atoms"] == len(outcome.instance)

    def test_oblivious_chase_sets_size_gauges(self, setting_2_1, source_2_1):
        outcome, _ = oblivious_chase(
            source_2_1, list(setting_2_1.all_dependencies)
        )
        gauges = obs.snapshot()["gauges"]
        assert gauges["chase.instance_size"] == len(outcome.instance)
        assert gauges["chase.peak_atoms"] >= gauges["chase.instance_size"]

    def test_peak_can_exceed_final_size_after_merges(self):
        # A merge shrinks the instance: F(a,⊥0) and F(a,c) collapse, so
        # the peak strictly exceeds the fixpoint size.
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        outcome = standard_chase(source, deps)
        gauges = obs.snapshot()["gauges"]
        assert gauges["chase.instance_size"] == len(outcome.instance)
        assert gauges["chase.peak_atoms"] > gauges["chase.instance_size"]
