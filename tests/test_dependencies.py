"""Tests for tgds, egds, and dependency parsing."""

import pytest

from repro.core import Const, DependencyError, Instance, Null, atom, RelationSymbol, Variable
from repro.dependencies import Egd, Tgd, parse_dependency, split_dependencies
from repro.logic import parse_instance

E = RelationSymbol("E", 2)
F = RelationSymbol("F", 2)


class TestTgdParsing:
    def test_simple_tgd(self):
        tgd = parse_dependency("E(x, y) -> F(x, y)")
        assert tgd.is_tgd and tgd.is_full

    def test_existential_tgd(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        assert not tgd.is_full
        assert [v.name for v in tgd.existential] == ["z"]

    def test_variable_roles(self):
        tgd = parse_dependency("N(x, y) -> exists z1, z2 . E(x, z1) & F(x, z2)")
        assert [v.name for v in tgd.frontier] == ["x"]
        assert [v.name for v in tgd.premise_only] == ["y"]
        assert [v.name for v in tgd.existential] == ["z1", "z2"]

    def test_undeclared_existentials_inferred(self):
        tgd = parse_dependency("E(x, y) -> F(y, z)")
        assert [v.name for v in tgd.existential] == ["z"]

    def test_mismatched_declaration_rejected(self):
        with pytest.raises(DependencyError):
            parse_dependency("E(x, y) -> exists w . F(y, z)")

    def test_multi_atom_premise(self):
        tgd = parse_dependency("E(x, y) & E(y, z) -> F(x, z)")
        assert len(tgd.premise_atoms) == 2

    def test_constants_in_conclusion(self):
        tgd = parse_dependency("P(x) -> F(x, '0')")
        assert Const("0") in tgd.conclusion_atoms[0].values

    def test_fo_premise(self):
        tgd = Tgd.parse("(exists y . E(x, y)) -> G(x)")
        assert tgd.premise_formula is not None
        assert not tgd.has_conjunctive_premise

    def test_no_conclusion_rejected(self):
        with pytest.raises((DependencyError, Exception)):
            Tgd(premise_atoms=[atom(E, "a", "b")], conclusion_atoms=[])

    def test_repr_mentions_arrow(self):
        assert "→" in repr(parse_dependency("E(x, y) -> F(x, y)"))


class TestTgdSemantics:
    def test_premise_matches(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b'), E('b','c')")
        matches = list(tgd.premise_matches(inst))
        assert len(matches) == 2

    def test_conclusion_holds(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b'), F('b','w')")
        match = next(iter(tgd.premise_matches(inst)))
        assert tgd.conclusion_holds(inst, match)

    def test_conclusion_fails_without_witness(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b'), F('q','w')")
        match = next(iter(tgd.premise_matches(inst)))
        assert not tgd.conclusion_holds(inst, match)

    def test_conclusion_atoms_under(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b')")
        match = next(iter(tgd.premise_matches(inst)))
        atoms = tgd.conclusion_atoms_under(match, (Null(5),))
        assert atoms == (atom(F, "b", Null(5)),)

    def test_conclusion_present(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b'), F('b',#5)")
        match = next(iter(tgd.premise_matches(inst)))
        assert tgd.conclusion_present(inst, match, (Null(5),))
        assert not tgd.conclusion_present(inst, match, (Null(6),))

    def test_witness_arity_checked(self):
        tgd = parse_dependency("E(x, y) -> exists z . F(y, z)")
        inst = parse_instance("E('a','b')")
        match = next(iter(tgd.premise_matches(inst)))
        with pytest.raises(DependencyError):
            tgd.conclusion_atoms_under(match, ())

    def test_fo_premise_matching(self):
        tgd = Tgd.parse("(exists y . E(x, y)) -> G(x)")
        inst = parse_instance("E('a','b'), E('b','c')")
        matched = {m[Variable("x")] for m in tgd.premise_matches(inst)}
        assert matched == {Const("a"), Const("b")}

    def test_relations(self):
        tgd = parse_dependency("E(x, y) -> F(x, y)")
        assert {r.name for r in tgd.premise_relations()} == {"E"}
        assert {r.name for r in tgd.conclusion_relations()} == {"F"}


class TestEgd:
    def test_parse(self):
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        assert egd.is_egd
        assert egd.left.name == "y" and egd.right.name == "z"

    def test_variables_must_occur(self):
        with pytest.raises(DependencyError):
            Egd.parse("F(x, y) -> y = w")

    def test_violations(self):
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        inst = parse_instance("F('a','b'), F('a','c')")
        pairs = set(egd.violations(inst))
        assert (Const("b"), Const("c")) in pairs or (Const("c"), Const("b")) in pairs

    def test_satisfied(self):
        egd = parse_dependency("F(x, y) & F(x, z) -> y = z")
        assert egd.is_satisfied(parse_instance("F('a','b'), F('q','c')"))
        assert not egd.is_satisfied(parse_instance("F('a','b'), F('a','c')"))

    def test_merge_direction_null_to_constant(self):
        assert Egd.merge_direction(Null(3), Const("a")) == (Null(3), Const("a"))
        assert Egd.merge_direction(Const("a"), Null(3)) == (Null(3), Const("a"))

    def test_merge_direction_larger_null_replaced(self):
        assert Egd.merge_direction(Null(7), Null(2)) == (Null(7), Null(2))
        assert Egd.merge_direction(Null(2), Null(7)) == (Null(7), Null(2))

    def test_merge_direction_constants_fail(self):
        assert Egd.merge_direction(Const("a"), Const("b")) is None

    def test_empty_premise_rejected(self):
        with pytest.raises(DependencyError):
            Egd([], Variable("x"), Variable("x"))


class TestDispatch:
    def test_parse_dependency_dispatches(self):
        assert parse_dependency("E(x,y) -> F(x,y)").is_tgd
        assert parse_dependency("F(x,y) & F(x,z) -> y = z").is_egd

    def test_missing_arrow(self):
        from repro.core import ParseError

        with pytest.raises(ParseError):
            parse_dependency("E(x, y) & F(x, y)")

    def test_split(self):
        deps = [
            parse_dependency("E(x,y) -> F(x,y)"),
            parse_dependency("F(x,y) & F(x,z) -> y = z"),
        ]
        tgds, egds = split_dependencies(deps)
        assert len(tgds) == 1 and len(egds) == 1
