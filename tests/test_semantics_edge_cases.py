"""Edge cases of the answering layer."""

import pytest

from repro.answering import NoCwaSolutionError, answers_over_space
from repro.answering.semantics import _cansol_applies
from repro.core import Const, Instance, Schema
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance, parse_query


class TestCansolApplies:
    def test_no_target_deps(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(P=1), Schema.of(Q=1), ["P(x) -> Q(x)"]
        )
        assert _cansol_applies(setting)

    def test_egds_only(self, setting_egd_only):
        assert _cansol_applies(setting_egd_only)

    def test_full_tgds(self, setting_full_tgd):
        assert _cansol_applies(setting_full_tgd)

    def test_existential_target_tgd(self, setting_2_1):
        assert not _cansol_applies(setting_2_1)


class TestAnswersOverSpace:
    def test_empty_space_raises(self):
        query = parse_query("Q(x) :- E(x, y)")
        with pytest.raises(NoCwaSolutionError):
            answers_over_space(query, [], [], "certain")

    def test_single_solution_space(self):
        query = parse_query("Q(x) :- E(x, y)")
        solution = parse_instance("E('a','b')")
        for mode in ("certain", "potential_certain", "persistent_maybe", "maybe"):
            assert answers_over_space(query, [solution], [], mode) == frozenset(
                {(Const("a"),)}
            )

    def test_union_vs_intersection(self):
        query = parse_query("Q(x) :- E(x, y)")
        first = parse_instance("E('a','b')")
        second = parse_instance("E('a','b'), E('c','d')")
        certain = answers_over_space(query, [first, second], [], "certain")
        potential = answers_over_space(
            query, [first, second], [], "potential_certain"
        )
        assert certain == frozenset({(Const("a"),)})
        assert potential == frozenset({(Const("a"),), (Const("c"),)})


class TestEmptySourceAnswering:
    def test_all_semantics_empty(self, setting_2_1):
        from repro.answering import all_four_semantics

        query = parse_query("Q(x) :- E(x, y)")
        results = all_four_semantics(setting_2_1, Instance(), query)
        assert all(answers == frozenset() for answers in results.values())

    def test_boolean_query_on_empty(self, setting_2_1):
        from repro.answering import certain_answers

        query = parse_query("Q() :- E(x, y)")
        assert not certain_answers(setting_2_1, Instance(), query)


class TestConstantsInQueries:
    def test_query_constant_absent_from_target(self, setting_2_1, source_2_1):
        from repro.answering import certain_answers, maybe_answers

        query = parse_query("Q() :- E('zzz', y)")
        assert not certain_answers(setting_2_1, source_2_1, query)
        # No E-atom has an unknown first component: not even maybe.
        assert not maybe_answers(setting_2_1, source_2_1, query)

    def test_maybe_through_null_position(self, setting_2_1, source_2_1):
        from repro.answering import certain_answers, maybe_answers

        # F(a, ⊥): the witness could be 'zzz'.
        query = parse_query("Q() :- F('a', 'zzz')")
        assert not certain_answers(setting_2_1, source_2_1, query)
        assert maybe_answers(setting_2_1, source_2_1, query)
