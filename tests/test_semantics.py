"""Tests for the four CWA answer semantics (Section 7.1, Theorem 7.1,
Corollary 7.2)."""

import pytest

from repro.answering import (
    NoCwaSolutionError,
    all_four_semantics,
    answers_over_space,
    certain_answers,
    maybe_answers,
    persistent_maybe_answers,
    potential_certain_answers,
)
from repro.core import Const, Schema
from repro.cwa import enumerate_cwa_solutions
from repro.exchange import DataExchangeSetting
from repro.logic import parse_instance, parse_query


class TestExample21Semantics:
    def test_certain_answers_via_core(self, setting_2_1, source_2_1):
        query = parse_query("Q(x, y) :- E(x, y)")
        answers = certain_answers(setting_2_1, source_2_1, query)
        # Only E(a,b) is certain; E(a,⊥) could be anything.
        assert answers == frozenset({(Const("a"), Const("b"))})

    def test_boolean_fact_queries(self, setting_2_1, source_2_1):
        definitely = parse_query("Q() :- E('a', 'b')")
        assert certain_answers(setting_2_1, source_2_1, definitely)
        chain = parse_query("Q() :- F('a', u), G(u, w)")
        assert certain_answers(setting_2_1, source_2_1, chain)
        wrong = parse_query("Q() :- G('a', u)")
        assert not certain_answers(setting_2_1, source_2_1, wrong)

    def test_chain_inclusion_corollary_7_2(self, setting_2_1, source_2_1):
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        queries = [
            parse_query("Q(x) :- E(x, y)"),
            parse_query("Q(x) :- E(y, x)"),
            parse_query("Q(x, y) :- F(x, y)"),
            parse_query("Q() :- E(x, y), F(x, z), y != z"),
        ]
        for query in queries:
            results = all_four_semantics(
                setting_2_1, source_2_1, query, solutions=solutions
            )
            assert results["certain"] <= results["potential_certain"]
            assert results["potential_certain"] <= results["persistent_maybe"]
            assert results["persistent_maybe"] <= results["maybe"]

    def test_fast_paths_match_direct_definition(self, setting_2_1, source_2_1):
        """Theorem 7.1: certain□ and maybe□ via the core equal the
        intersection over the whole enumerated CWA-solution space."""
        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        tdeps = setting_2_1.target_dependencies
        query = parse_query("Q(x) :- E(x, y)")
        assert certain_answers(setting_2_1, source_2_1, query) == (
            answers_over_space(query, solutions, tdeps, "certain")
        )
        assert persistent_maybe_answers(setting_2_1, source_2_1, query) == (
            answers_over_space(query, solutions, tdeps, "persistent_maybe")
        )


class TestTheorem71Sandwich:
    """Theorem 7.1's middle claims: for EVERY CWA-solution T,
    certain◇ ⊇ □Q(T) and maybe□ ⊆ ◇Q(T)."""

    def test_sandwich_on_every_solution(self, setting_2_1, source_2_1):
        from repro.answering.valuations import certain_on, maybe_on

        solutions = enumerate_cwa_solutions(setting_2_1, source_2_1)
        tdeps = setting_2_1.target_dependencies
        for text in ("Q(x) :- E(x, y)", "Q(x, y) :- F(x, y)"):
            query = parse_query(text)
            potential = potential_certain_answers(
                setting_2_1, source_2_1, query, solutions=solutions
            )
            persistent = persistent_maybe_answers(
                setting_2_1, source_2_1, query
            )
            for solution in solutions:
                assert certain_on(query, solution, tdeps) <= potential
                assert persistent <= maybe_on(query, solution, tdeps)


class TestRestrictedClassFastPath:
    def test_egd_only_setting(self, setting_egd_only):
        source = parse_instance("Emp('e1','d1'), Emp('e2','d1')")
        solutions = enumerate_cwa_solutions(setting_egd_only, source)
        tdeps = setting_egd_only.target_dependencies
        query = parse_query("Q(d) :- Dept(d, m)")
        fast = potential_certain_answers(setting_egd_only, source, query)
        direct = answers_over_space(
            query, solutions, tdeps, "potential_certain"
        )
        assert fast == direct
        fast_maybe = maybe_answers(setting_egd_only, source, query)
        direct_maybe = answers_over_space(query, solutions, tdeps, "maybe")
        assert fast_maybe == direct_maybe

    def test_full_tgd_setting_all_semantics_coincide(self, setting_full_tgd):
        source = parse_instance("Edge('a','b'), Edge('b','c'), Start('a')")
        query = parse_query("Q(x) :- Reach(x)")
        results = all_four_semantics(setting_full_tgd, source, query)
        expected = frozenset({(Const("a"),), (Const("b"),), (Const("c"),)})
        assert all(value == expected for value in results.values())


class TestNoSolution:
    def test_raises_without_solutions(self):
        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        query = parse_query("Q(x) :- Tgt(x, y)")
        with pytest.raises(NoCwaSolutionError):
            certain_answers(setting, source, query)
        with pytest.raises(NoCwaSolutionError):
            maybe_answers(setting, source, query)


class TestAgainstAnomalies:
    def test_copying_setting_all_semantics_equal_naive(self):
        """For copying settings S_CWA = {T*} and Rep = {T*}: all four
        semantics equal Q evaluated on the copy (Section 7.1)."""
        from repro.exchange import copy_instance, copying_setting

        sigma = Schema.of(E=2, P=1)
        setting = copying_setting(sigma)
        source = parse_instance("E('a','b'), E('b','a'), P('a')")
        copied = copy_instance(source, sigma)
        query = parse_query("Q(x) :- E_t(x, y), P_t(y)")
        results = all_four_semantics(setting, source, query)
        expected = query.evaluate(copied)
        assert all(value == expected for value in results.values())
