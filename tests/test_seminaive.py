"""Tests for the semi-naive chase engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import satisfies_all, standard_chase
from repro.chase.seminaive import seminaive_chase
from repro.core import Atom, Const, Instance, RelationSymbol
from repro.dependencies import parse_dependencies
from repro.homomorphism import hom_equivalent
from repro.logic import parse_instance

M = RelationSymbol("M", 2)
N = RelationSymbol("N", 2)


class TestAgreementWithStandard:
    def test_simple_tgd(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        source = parse_instance("E('a','b'), E('b','c')")
        semi = seminaive_chase(source, deps)
        full = standard_chase(source, deps)
        assert semi.successful and full.successful
        assert hom_equivalent(semi.instance, full.instance)

    def test_recursive_full_tgd(self):
        deps = parse_dependencies(
            ["E(x, y) -> R(x, y)", "R(x, y) & E(y, z) -> R(x, z)"]
        )
        atoms = ", ".join(f"E('v{i}','v{i+1}')" for i in range(8))
        source = parse_instance(atoms)
        semi = seminaive_chase(source, deps)
        full = standard_chase(source, deps)
        assert semi.successful
        # Transitive closure of a path: n(n+1)/2 pairs.
        assert semi.instance.count_of("R") == 8 * 9 // 2
        assert semi.instance.atoms_of("R") == full.instance.atoms_of("R")

    def test_egd_merging(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c')")
        semi = seminaive_chase(source, deps)
        assert semi.successful
        assert semi.instance.atoms_of("F") == frozenset(
            {Atom(RelationSymbol("F", 2), (Const("a"), Const("c")))}
        )

    def test_egd_failure(self):
        deps = parse_dependencies(["F(x, y) & F(x, z) -> y = z"])
        source = parse_instance("F('a','b'), F('a','c')")
        assert seminaive_chase(source, deps).failed

    def test_divergence(self):
        deps = parse_dependencies(["E(x, y) -> exists z . E(y, z)"])
        outcome = seminaive_chase(
            parse_instance("E('a','b')"), deps, max_steps=40
        )
        assert outcome.diverged

    def test_merge_reactivates_matches(self):
        """After an egd merge, the rewritten atoms must re-seed the
        delta: the H-rule fires on the merged F-atom."""
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
                "F(x, y) & K(y) -> H(x)",
            ]
        )
        source = parse_instance("E('a','b'), G('a','c'), K('c')")
        outcome = seminaive_chase(source, deps)
        assert outcome.successful
        assert outcome.instance.count_of("H") == 1

    def test_example_2_1(self, setting_2_1, source_2_1):
        deps = list(setting_2_1.all_dependencies)
        semi = seminaive_chase(source_2_1, deps)
        full = standard_chase(source_2_1, deps)
        assert semi.successful
        assert satisfies_all(semi.instance, deps)
        assert hom_equivalent(semi.instance, full.instance)

    def test_trace(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        outcome = seminaive_chase(
            parse_instance("E('a','b')"), deps, trace=True
        )
        assert len(outcome.trace) == 1


@st.composite
def random_sources(draw):
    pool = [Const(name) for name in "abcd"]
    atoms = []
    for relation in (M, N):
        pairs = draw(
            st.lists(
                st.tuples(st.sampled_from(pool), st.sampled_from(pool)),
                max_size=4,
            )
        )
        atoms.extend(Atom(relation, pair) for pair in pairs)
    return Instance(atoms)


DEPS = parse_dependencies(
    [
        "M(x, y) -> E(x, y)",
        "N(x, y) -> exists z1, z2 . E(x, z1) & F(x, z2)",
        "F(y, x) -> exists z . G(x, z)",
        "F(x, y) & F(x, z) -> y = z",
    ]
)


@given(random_sources())
@settings(max_examples=25, deadline=None)
def test_seminaive_agrees_with_standard_on_random_inputs(source):
    semi = seminaive_chase(source, DEPS)
    full = standard_chase(source, DEPS)
    assert semi.status == full.status
    if semi.successful:
        assert satisfies_all(semi.instance, DEPS)
        assert hom_equivalent(semi.instance, full.instance)
