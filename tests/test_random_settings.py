"""Tests for the random-setting generator + cross-module sweeps with it."""

import pytest

from repro.chase import satisfies_all, standard_chase
from repro.chase.seminaive import seminaive_chase
from repro.core import isomorphic
from repro.cwa import core_solution, is_cwa_solution
from repro.generators import random_source_for, random_weakly_acyclic_setting
from repro.homomorphism import blockwise_core, core, hom_equivalent


class TestGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_weakly_acyclic_by_construction(self, seed):
        setting = random_weakly_acyclic_setting(seed)
        assert setting.is_weakly_acyclic

    @pytest.mark.parametrize("seed", range(8))
    def test_richly_acyclic_flag(self, seed):
        setting = random_weakly_acyclic_setting(
            seed, richly_acyclic_only=True
        )
        assert setting.is_richly_acyclic

    def test_reproducible(self):
        left = random_weakly_acyclic_setting(42)
        right = random_weakly_acyclic_setting(42)
        assert [repr(d) for d in left.all_dependencies] == [
            repr(d) for d in right.all_dependencies
        ]

    def test_source_matches_schema(self):
        setting = random_weakly_acyclic_setting(1)
        source = random_source_for(setting, seed=1)
        setting.validate_source(source)


class TestRandomSweeps:
    """The paper's structural theorems over generated settings."""

    @pytest.mark.parametrize("seed", range(10))
    def test_chase_terminates_and_satisfies(self, seed):
        setting = random_weakly_acyclic_setting(seed)
        source = random_source_for(setting, seed=seed)
        outcome = standard_chase(source, list(setting.all_dependencies))
        assert not outcome.diverged  # weak acyclicity's guarantee
        if outcome.successful:
            assert satisfies_all(outcome.instance, setting.all_dependencies)

    @pytest.mark.parametrize("seed", range(10))
    def test_engines_agree(self, seed):
        setting = random_weakly_acyclic_setting(seed)
        source = random_source_for(setting, seed=seed + 100)
        deps = list(setting.all_dependencies)
        full = standard_chase(source, deps)
        semi = seminaive_chase(source, deps)
        assert full.status == semi.status
        if full.successful:
            assert hom_equivalent(full.instance, semi.instance)

    @pytest.mark.parametrize("seed", range(8))
    def test_core_algorithms_agree(self, seed):
        setting = random_weakly_acyclic_setting(seed)
        source = random_source_for(setting, seed=seed + 200)
        canonical = setting.canonical_universal_solution(source)
        if canonical is None:
            return
        assert isomorphic(core(canonical), blockwise_core(canonical))

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem_5_1_holds(self, seed):
        setting = random_weakly_acyclic_setting(seed)
        source = random_source_for(
            setting, seed=seed + 300, atoms_per_relation=2
        )
        minimal = core_solution(setting, source)
        if minimal is None:
            return
        assert is_cwa_solution(setting, source, minimal)
