"""Tests for the Turing machine substrate and D_halt (Theorem 6.2)."""

import pytest

from repro.chase import standard_chase
from repro.core import ReproError
from repro.cwa import is_cwa_presolution
from repro.reductions.turing import (
    BLANK,
    TuringMachine,
    chase_configurations,
    d_halt_setting,
    encode_machine,
    halting_machine,
    halting_witness,
    looping_machine,
    zigzag_machine,
)


class TestMachineSubstrate:
    def test_halting_machine_halts(self):
        run = halting_machine(3).run_on_empty(100)
        assert run.halted
        assert run.steps == 4  # three writes plus the final hop to halt

    def test_looping_machine_never_halts(self):
        run = looping_machine().run_on_empty(200)
        assert not run.halted
        assert run.steps == 200

    def test_zigzag_stays_bounded(self):
        run = zigzag_machine().run_on_empty(50)
        assert not run.halted
        assert all(c.head in (1, 2, 3) for c in run.configurations)

    def test_tape_contents(self):
        run = halting_machine(2).run_on_empty(100)
        final = run.configurations[-1]
        assert final.symbol_at(1) == "1" and final.symbol_at(2) == "1"
        assert final.symbol_at(10) == BLANK

    def test_delta_totality_enforced(self):
        with pytest.raises(ReproError):
            TuringMachine(
                ["q", "halt"], ["1"], {("q", "1"): ("halt", "1", "R")},
                "q", ["halt"],
            )

    def test_delta_on_final_state_rejected(self):
        with pytest.raises(ReproError):
            TuringMachine(
                ["q", "halt"],
                [],
                {
                    ("q", BLANK): ("halt", BLANK, "R"),
                    ("halt", BLANK): ("halt", BLANK, "R"),
                },
                "q",
                ["halt"],
            )

    def test_left_edge_guard(self):
        machine = TuringMachine(
            ["q", "halt"],
            [],
            {("q", BLANK): ("q", BLANK, "L")},
            "q",
            ["halt"],
        )
        with pytest.raises(ReproError):
            machine.run_on_empty(5)

    def test_bad_direction_rejected(self):
        with pytest.raises(ReproError):
            TuringMachine(
                ["q", "halt"], [], {("q", BLANK): ("q", BLANK, "X")},
                "q", ["halt"],
            )


class TestDHaltSetting:
    def test_not_weakly_acyclic(self):
        # The END rule feeds NEXTPOS which feeds the END premise:
        # undecidability lives outside the weakly acyclic class.
        assert not d_halt_setting().is_weakly_acyclic

    def test_encoding_size(self):
        machine = halting_machine(2)
        source = encode_machine(machine)
        assert len(source) == len(machine.delta) + 1

    def test_chase_simulates_machine(self):
        """The chase of S_M reproduces M's run: states and head
        positions along the NEXT chain match the direct simulation."""
        machine = halting_machine(2)
        run = machine.run_on_empty(50)
        expected = [(c.state, c.head) for c in run.configurations]
        readout = chase_configurations(machine, chase_steps=400)
        overlap = min(len(readout), len(expected))
        assert overlap >= 3
        assert readout[:overlap] == expected[:overlap]

    def test_chase_simulates_looping_machine_prefix(self):
        machine = zigzag_machine()
        run = machine.run_on_empty(6)
        expected = [(c.state, c.head) for c in run.configurations]
        readout = chase_configurations(machine, chase_steps=500)
        overlap = min(len(readout), len(expected), 4)
        assert readout[:overlap] == expected[:overlap]

    def test_standard_chase_never_terminates(self):
        """The END rule extends the time-0 tape forever: the standard
        chase diverges for every machine -- which is why it cannot
        decide Existence-of-CWA-Solutions (Theorem 6.2)."""
        setting = d_halt_setting()
        for machine in (halting_machine(1), looping_machine()):
            outcome = standard_chase(
                encode_machine(machine),
                list(setting.all_dependencies),
                max_steps=300,
            )
            assert outcome.diverged


class TestHaltingWitness:
    def test_witness_is_a_solution(self):
        machine = halting_machine(1)
        setting = d_halt_setting()
        witness = halting_witness(machine)
        assert setting.is_solution(encode_machine(machine), witness)

    def test_witness_is_a_cwa_presolution(self):
        """The finite run grid with the looped tape end is justified:
        every atom derives from the init tgd, the transition tgds, the
        copy tgds, or the END tgd with p' chosen by α."""
        machine = halting_machine(1)
        setting = d_halt_setting()
        witness = halting_witness(machine)
        assert is_cwa_presolution(setting, encode_machine(machine), witness)

    def test_witness_larger_machines_still_solutions(self):
        machine = halting_machine(3)
        setting = d_halt_setting()
        witness = halting_witness(machine)
        assert setting.is_solution(encode_machine(machine), witness)

    def test_no_witness_for_looping_machine(self):
        with pytest.raises(ReproError):
            halting_witness(looping_machine(), max_steps=100)

    def test_chain_growth_tracks_budget_for_looping_machine(self):
        """For a non-halting machine every chase budget yields a longer
        NEXT chain: no finite instance can close the run off."""
        machine = zigzag_machine()
        shallow = chase_configurations(machine, chase_steps=220)
        deep = chase_configurations(machine, chase_steps=900)
        assert len(deep) > len(shallow) >= 1
