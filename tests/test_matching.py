"""Tests for the backtracking conjunctive matcher."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Atom, Const, Instance, Null, RelationSymbol, Substitution, Variable, atom
from repro.logic.matching import exists_match, first_match, match

E = RelationSymbol("E", 2)
P = RelationSymbol("P", 1)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def all_matches(patterns, instance, inequalities=()):
    return {
        sub.as_tuple(sorted({v for a in patterns for v in a.variables}, key=lambda v: v.name))
        for sub in match(patterns, instance, inequalities=inequalities)
    }


class TestSingleAtom:
    def test_matches_every_fact(self):
        inst = Instance([atom(E, "a", "b"), atom(E, "b", "c")])
        results = all_matches([Atom(E, (x, y))], inst)
        assert results == {(Const("a"), Const("b")), (Const("b"), Const("c"))}

    def test_constant_in_pattern_filters(self):
        inst = Instance([atom(E, "a", "b"), atom(E, "b", "c")])
        results = all_matches([Atom(E, (Const("a"), y))], inst)
        assert results == {(Const("b"),)}

    def test_repeated_variable_requires_equality(self):
        inst = Instance([atom(E, "a", "a"), atom(E, "a", "b")])
        results = all_matches([Atom(E, (x, x))], inst)
        assert results == {(Const("a"),)}

    def test_no_match(self):
        inst = Instance([atom(E, "a", "b")])
        assert not exists_match([Atom(E, (Const("z"), y))], inst)

    def test_matches_nulls_as_values(self):
        inst = Instance([atom(E, "a", Null(0))])
        results = all_matches([Atom(E, (x, y))], inst)
        assert results == {(Const("a"), Null(0))}


class TestJoins:
    def test_two_atom_join(self):
        inst = Instance(
            [atom(E, "a", "b"), atom(E, "b", "c"), atom(E, "c", "d")]
        )
        patterns = [Atom(E, (x, y)), Atom(E, (y, z))]
        results = all_matches(patterns, inst)
        assert results == {
            (Const("a"), Const("b"), Const("c")),
            (Const("b"), Const("c"), Const("d")),
        }

    def test_cross_relation_join(self):
        inst = Instance([atom(E, "a", "b"), atom(P, "b")])
        patterns = [Atom(E, (x, y)), Atom(P, (y,))]
        assert all_matches(patterns, inst) == {(Const("a"), Const("b"))}

    def test_triangle(self):
        inst = Instance(
            [atom(E, "a", "b"), atom(E, "b", "c"), atom(E, "c", "a")]
        )
        patterns = [Atom(E, (x, y)), Atom(E, (y, z)), Atom(E, (z, x))]
        assert len(all_matches(patterns, inst)) == 3  # three rotations

    def test_empty_pattern_matches_once(self):
        results = list(match([], Instance([atom(P, "a")])))
        assert len(results) == 1


class TestInitialBindings:
    def test_initial_restricts(self):
        inst = Instance([atom(E, "a", "b"), atom(E, "b", "c")])
        initial = Substitution({x: Const("b")})
        results = list(match([Atom(E, (x, y))], inst, initial=initial))
        assert len(results) == 1
        assert results[0][y] == Const("c")

    def test_initial_preserved_in_output(self):
        inst = Instance([atom(P, "a")])
        initial = Substitution({z: Const("q")})
        result = first_match([Atom(P, (x,))], inst, initial=initial)
        assert result[z] == Const("q")


class TestInequalities:
    def test_inequality_prunes(self):
        inst = Instance([atom(E, "a", "a"), atom(E, "a", "b")])
        results = all_matches(
            [Atom(E, (x, y))], inst, inequalities=[(x, y)]
        )
        assert results == {(Const("a"), Const("b"))}

    def test_inequality_with_constant(self):
        inst = Instance([atom(P, "a"), atom(P, "b")])
        results = all_matches(
            [Atom(P, (x,))], inst, inequalities=[(x, Const("a"))]
        )
        assert results == {(Const("b"),)}

    def test_violated_initial_inequality(self):
        inst = Instance([atom(P, "a")])
        initial = Substitution({x: Const("a")})
        assert (
            first_match(
                [Atom(P, (x,))], inst, initial=initial, inequalities=[(x, Const("a"))]
            )
            is None
        )

    def test_nulls_differ_from_constants(self):
        # A null is never equal to a constant in naive evaluation.
        inst = Instance([atom(E, "a", Null(0))])
        results = all_matches(
            [Atom(E, (x, y))], inst, inequalities=[(y, Const("a"))]
        )
        assert results == {(Const("a"), Null(0))}


@st.composite
def random_graph(draw):
    size = draw(st.integers(min_value=0, max_value=12))
    names = [Const(f"v{i}") for i in range(4)]
    atoms = [
        Atom(E, (draw(st.sampled_from(names)), draw(st.sampled_from(names))))
        for _ in range(size)
    ]
    return Instance(atoms)


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_matcher_agrees_with_bruteforce_on_paths(inst):
    """Path query E(x,y), E(y,z): matcher output == nested-loop join."""
    patterns = [Atom(E, (x, y)), Atom(E, (y, z))]
    found = all_matches(patterns, inst)
    expected = set()
    for first_atom in inst.atoms_of(E):
        for second_atom in inst.atoms_of(E):
            if first_atom.args[1] == second_atom.args[0]:
                expected.add(
                    (first_atom.args[0], first_atom.args[1], second_atom.args[1])
                )
    assert found == expected


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_matcher_with_inequality_agrees_with_bruteforce(inst):
    patterns = [Atom(E, (x, y))]
    found = all_matches(patterns, inst, inequalities=[(x, y)])
    expected = {
        (a.args[0], a.args[1]) for a in inst.atoms_of(E) if a.args[0] != a.args[1]
    }
    assert found == expected
