"""Tests for partitioned (per-component, block-parallel) core computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.chase import standard_chase
from repro.core import Atom, Const, Instance, Null, RelationSymbol, isomorphic
from repro.engine import Executor, fingerprint_instance
from repro.homomorphism import blockwise_core, core, is_core, partitioned_core
from repro.generators import disjoint_scaled_sources, example_2_1_setting

E = RelationSymbol("E", 2)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


def _canonical_solution(copies=3, pairs=8, seed=11):
    setting = example_2_1_setting()
    source = disjoint_scaled_sources(copies, pairs, seed=seed)
    outcome = standard_chase(source, list(setting.all_dependencies))
    assert outcome.successful
    return outcome.instance.reduct(setting.target_schema)


class TestPartitionedCore:
    def test_matches_blockwise_on_multi_component(self):
        canonical = _canonical_solution()
        assert len(canonical.components()) > 1
        assert _fp(partitioned_core(canonical)) == _fp(blockwise_core(canonical))

    def test_result_is_core(self):
        canonical = _canonical_solution(copies=2, pairs=6, seed=3)
        result = partitioned_core(canonical)
        assert is_core(result)

    def test_parity_with_executor(self):
        canonical = _canonical_solution(copies=4, pairs=6, seed=5)
        serial = partitioned_core(canonical)
        with Executor(workers=2) as executor:
            parallel = partitioned_core(canonical, executor)
        assert _fp(parallel) == _fp(serial)
        assert obs.counter("core.blocks_parallel").value > 0

    def test_ground_instance_unchanged(self):
        inst = Instance(
            [Atom(E, (Const("a"), Const("b"))), Atom(E, (Const("c"), Const("d")))]
        )
        assert partitioned_core(inst) == inst

    def test_empty_instance(self):
        assert len(partitioned_core(Instance())) == 0

    def test_single_component_falls_back(self):
        inst = Instance(
            [Atom(E, (Const("a"), Null(0))), Atom(E, (Const("a"), Const("b")))]
        )
        before = obs.counter("core.partition_fallbacks").value
        result = partitioned_core(inst)
        assert isomorphic(result, core(inst))
        assert obs.counter("core.partition_fallbacks").value == before + 1

    def test_all_null_component_falls_back_and_stays_exact(self):
        # Two isomorphic all-null components: the union's core is a
        # single atom (one component folds onto the other), which only
        # the global pass can see -- the guard must force the fallback.
        inst = Instance(
            [Atom(E, (Null(0), Null(1))), Atom(E, (Null(2), Null(3)))]
        )
        before = obs.counter("core.partition_fallbacks").value
        result = partitioned_core(inst)
        assert len(result) == 1
        assert isomorphic(result, core(inst))
        assert obs.counter("core.partition_fallbacks").value == before + 1

    def test_mixed_anchored_and_null_component_falls_back(self):
        inst = Instance(
            [
                Atom(E, (Const("a"), Null(0))),
                Atom(E, (Null(1), Null(2))),
            ]
        )
        result = partitioned_core(inst)
        assert isomorphic(result, core(inst))


def small_multi_component_instances():
    """Unions of two value-disjoint random halves, every atom anchored."""

    def build(pairs):
        left, right = pairs
        inst = Instance()
        for index, value in left:
            inst.add(Atom(E, (Const(f"a{index % 2}"), value)))
        for index, value in right:
            inst.add(
                Atom(
                    E,
                    (
                        Const(f"b{index % 2}"),
                        Const(value.name.replace("a", "b"))
                        if isinstance(value, Const)
                        else Null(value.ident + 10),
                    ),
                )
            )
        return inst

    half = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.one_of(
                st.sampled_from([Const("a0"), Const("a1")]),
                st.integers(min_value=0, max_value=3).map(Null),
            ),
        ),
        max_size=5,
    )
    return st.tuples(half, half).map(build)


@given(small_multi_component_instances())
@settings(max_examples=60, deadline=None)
def test_partitioned_core_equals_global_core(inst):
    assert isomorphic(partitioned_core(inst), core(inst))
