"""Unit and property tests for instances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Atom,
    Const,
    Instance,
    Null,
    RelationSymbol,
    Schema,
    SchemaError,
    Variable,
    atom,
    isomorphic,
)

E = RelationSymbol("E", 2)
P = RelationSymbol("P", 1)


def values():
    return st.one_of(
        st.integers(min_value=0, max_value=3).map(lambda i: Const(f"c{i}")),
        st.integers(min_value=0, max_value=3).map(Null),
    )


def instances(max_atoms=8):
    return st.lists(
        st.tuples(values(), values()).map(lambda pair: Atom(E, pair)),
        max_size=max_atoms,
    ).map(Instance)


class TestBasics:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(atom(E, "a", "b"))
        assert not inst.add(atom(E, "a", "b"))  # duplicate
        assert atom(E, "a", "b") in inst
        assert len(inst) == 1

    def test_non_ground_rejected(self):
        with pytest.raises(SchemaError):
            Instance().add(Atom(E, (Variable("x"), Const("a"))))

    def test_discard(self):
        inst = Instance([atom(E, "a", "b")])
        assert inst.discard(atom(E, "a", "b"))
        assert not inst.discard(atom(E, "a", "b"))
        assert len(inst) == 0

    def test_indexes_follow_discard(self):
        inst = Instance([atom(E, "a", "b"), atom(E, "a", "c")])
        inst.discard(atom(E, "a", "b"))
        assert inst.atoms_with(E, 0, Const("a")) == frozenset({atom(E, "a", "c")})
        assert inst.count_with(E, 1, Const("b")) == 0

    def test_atoms_of(self):
        inst = Instance([atom(E, "a", "b"), atom(P, "a")])
        assert inst.atoms_of("E") == frozenset({atom(E, "a", "b")})
        assert inst.atoms_of(P) == frozenset({atom(P, "a")})

    def test_relation_names(self):
        inst = Instance([atom(E, "a", "b"), atom(P, "a")])
        assert inst.relation_names() == ("E", "P")

    def test_bool(self):
        assert not Instance()
        assert Instance([atom(P, "a")])


class TestDomains:
    def test_active_domain(self):
        inst = Instance([atom(E, "a", Null(0))])
        assert inst.active_domain() == frozenset({Const("a"), Null(0)})

    def test_constants_and_nulls(self):
        inst = Instance([atom(E, "a", Null(0))])
        assert inst.constants() == frozenset({Const("a")})
        assert inst.nulls() == frozenset({Null(0)})

    def test_is_ground(self):
        assert Instance([atom(E, "a", "b")]).is_ground
        assert not Instance([atom(E, "a", Null(0))]).is_ground

    def test_null_factory_is_fresh(self):
        inst = Instance([atom(E, Null(4), Null(9))])
        assert inst.null_factory().fresh() == Null(10)


class TestAlgebra:
    def test_union(self):
        left = Instance([atom(P, "a")])
        right = Instance([atom(P, "b")])
        assert len(left | right) == 2
        assert len(left) == 1  # inputs untouched

    def test_difference(self):
        left = Instance([atom(P, "a"), atom(P, "b")])
        assert left.difference(Instance([atom(P, "a")])) == Instance([atom(P, "b")])

    def test_issubset(self):
        small = Instance([atom(P, "a")])
        big = Instance([atom(P, "a"), atom(P, "b")])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_reduct(self):
        inst = Instance([atom(E, "a", "b"), atom(P, "a")])
        assert inst.reduct(Schema.of(P=1)) == Instance([atom(P, "a")])

    def test_copy_is_independent(self):
        original = Instance([atom(P, "a")])
        duplicate = original.copy()
        duplicate.add(atom(P, "b"))
        assert len(original) == 1

    def test_replace_value(self):
        inst = Instance([atom(E, Null(0), Null(1)), atom(E, Null(1), "a")])
        inst.replace_value(Null(1), Null(0))
        assert inst == Instance([atom(E, Null(0), Null(0)), atom(E, Null(0), "a")])

    def test_replace_value_merges_atoms(self):
        inst = Instance([atom(P, Null(0)), atom(P, Null(1))])
        inst.replace_value(Null(1), Null(0))
        assert len(inst) == 1

    def test_rename_values(self):
        inst = Instance([atom(E, Null(0), "a")])
        image = inst.rename_values({Null(0): Const("b")})
        assert image == Instance([atom(E, "b", "a")])

    def test_frozen_snapshot(self):
        inst = Instance([atom(P, "a")])
        snapshot = inst.frozen()
        inst.add(atom(P, "b"))
        assert len(snapshot) == 1

    def test_instances_unhashable(self):
        with pytest.raises(TypeError):
            hash(Instance())


class TestIsomorphism:
    def test_equal_instances_isomorphic(self):
        inst = Instance([atom(E, "a", Null(0))])
        assert isomorphic(inst, inst.copy())

    def test_null_renaming(self):
        left = Instance([atom(E, "a", Null(0))])
        right = Instance([atom(E, "a", Null(7))])
        assert isomorphic(left, right)

    def test_constants_fixed(self):
        left = Instance([atom(E, "a", "b")])
        right = Instance([atom(E, "a", "c")])
        assert not isomorphic(left, right)

    def test_different_sizes(self):
        left = Instance([atom(P, Null(0))])
        right = Instance([atom(P, Null(0)), atom(P, Null(1))])
        assert not isomorphic(left, right)

    def test_structure_matters(self):
        left = Instance([atom(E, Null(0), Null(0))])  # a loop
        right = Instance([atom(E, Null(0), Null(1))])  # an edge
        assert not isomorphic(left, right)

    def test_cross_structure(self):
        left = Instance([atom(E, Null(0), Null(1)), atom(E, Null(1), Null(2))])
        right = Instance([atom(E, Null(5), Null(6)), atom(E, Null(6), Null(7))])
        assert isomorphic(left, right)

    def test_canonical_renames_to_low_idents(self):
        inst = Instance([atom(E, Null(100), Null(200))])
        canonical = inst.canonical()
        assert canonical.nulls() == frozenset({Null(0), Null(1)})
        assert isomorphic(inst, canonical)

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_canonical_preserves_isomorphism(self, inst):
        assert isomorphic(inst, inst.canonical())

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_isomorphism_reflexive(self, inst):
        assert isomorphic(inst, inst.copy())
