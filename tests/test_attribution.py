"""Attributed execution: plan stats, dependency attribution, heartbeat.

Covers the ``repro.obs.attribution`` tables end to end: off-by-default
(no producer records anything), profiled plan execution, per-dependency
attribution from all four chase engines, component cost rows on the
sharded/partitioned paths, the state-section round trip through the
executor's worker-state protocol (serial == parallel on every count
field), and the progress heartbeat's divergence signal.
"""

import io
import json
import os

import pytest

from repro import obs
from repro.chase.oblivious import (
    fire_all_source_justifications,
    oblivious_chase,
)
from repro.chase.seminaive import seminaive_chase
from repro.chase.standard import standard_chase
from repro.engine import Executor
from repro.exchange.solve import solve
from repro.logic import plans
from repro.logic.parser import parse_instance
from repro.obs import attribution

SHARDED_SOURCE = (
    "M('a','b'), N('a','b'), N('a','c'),"
    "M('p','q'), N('p','q'), N('p','r'),"
    "M('u','v'), N('u','v'), N('u','w')"
)


@pytest.fixture(autouse=True)
def clean_attribution():
    attribution.disable_heartbeat()
    attribution.enable(False)
    attribution.reset()
    yield
    attribution.disable_heartbeat()
    attribution.enable(False)
    attribution.reset()


def _dep_counts():
    """The count fields of the dependency table (times stripped)."""
    return {
        name: (
            record["triggers"],
            record["firings"],
            record["merges"],
            record["nulls"],
        )
        for name, record in attribution.dependencies().items()
    }


class TestOffByDefault:
    def test_disabled_runs_record_nothing(self, setting_2_1, source_2_1):
        assert not attribution.enabled()
        outcome = standard_chase(
            source_2_1, list(setting_2_1.all_dependencies)
        )
        assert outcome.successful
        assert attribution.export() is None
        assert attribution.plans() == {}
        assert attribution.dependencies() == {}

    def test_attributing_scope_restores(self):
        with attribution.attributing():
            assert attribution.enabled()
            with attribution.attributing():
                assert attribution.enabled()
            assert attribution.enabled()
        assert not attribution.enabled()


class TestPlanStats:
    def test_profiled_run_fills_plan_records(self, setting_2_1, source_2_1):
        with attribution.attributing():
            outcome = standard_chase(
                source_2_1, list(setting_2_1.all_dependencies)
            )
        assert outcome.successful
        table = attribution.plans()
        assert table
        for identity, record in table.items():
            assert len(identity) == 16
            assert record["uses"] > 0
            assert len(record["counts"]) == len(record["steps"])
            for step, (probes, candidates, emitted, seconds) in zip(
                record["steps"], record["counts"]
            ):
                # Emitted bindings never exceed candidates scanned.
                assert emitted <= candidates
                assert seconds >= 0.0
                assert set(step) >= {"relation", "checks", "ground"}
        # At least one plan actually emitted bindings (the chase fired).
        assert any(
            counts[2] > 0
            for record in table.values()
            for counts in record["counts"]
        )

    def test_profiled_matches_agree_with_plain(self, setting_2_1, source_2_1):
        tgd = setting_2_1.st_dependencies[0]
        plan = plans.plan_for(tuple(tgd.premise_atoms), (), frozenset())
        plain = list(plan.matches(source_2_1, {}))
        with attribution.attributing():
            profiled = list(plan.matches(source_2_1, {}))
        assert [s._mapping for s in plain] == [s._mapping for s in profiled]

    def test_identity_is_content_stable(self, setting_2_1):
        tgd = setting_2_1.st_dependencies[0]
        first = plans.plan_for(tuple(tgd.premise_atoms), (), frozenset())
        second = plans.plan_for(tuple(tgd.premise_atoms), (), frozenset())
        assert first.identity == second.identity
        other = plans.plan_for(
            tuple(tgd.conclusion_atoms), (), frozenset(tgd.frontier)
        )
        assert other.identity != first.identity

    def test_step_estimate_and_misestimate(self):
        step = {"checks": 2}
        assert attribution.step_estimate(step, 100) == pytest.approx(1.0)
        # 100 candidates, estimate 1.0, actual 100 -> 100x off: flagged.
        assert attribution.step_misestimate(step, [0, 100, 100, 0.0]) >= 8.0
        # Below the candidate floor: never flagged.
        assert attribution.step_misestimate(step, [0, 10, 10, 0.0]) is None
        # Estimate close to actual: not flagged.
        assert (
            attribution.step_misestimate({"checks": 0}, [0, 100, 100, 0.0])
            is None
        )


class TestDependencyAttribution:
    def test_standard_engine(self, setting_2_1, source_2_1):
        st1, st2 = (
            attribution.dep_label(dep)
            for dep in setting_2_1.st_dependencies
        )
        target_tgd = attribution.dep_label(
            next(d for d in setting_2_1.target_dependencies if d.is_tgd)
        )
        with attribution.attributing():
            outcome = standard_chase(
                source_2_1, list(setting_2_1.all_dependencies)
            )
        assert outcome.successful
        table = attribution.dependencies()
        assert {st1, st2, target_tgd} <= set(table)
        for record in table.values():
            assert record["triggers"] >= record["firings"]
            assert record["seconds"] >= 0.0
            assert record["rounds"]
        # Example 2.1: the second s-t tgd invents z1, z2; the target
        # tgd invents z.
        assert table[st2]["nulls"] == 2
        assert table[target_tgd]["nulls"] == 1

    def test_seminaive_matches_standard_counts(self, setting_2_1, source_2_1):
        deps = list(setting_2_1.all_dependencies)
        with attribution.attributing():
            standard_chase(source_2_1, deps)
        standard_counts = {
            name: (record["firings"], record["nulls"])
            for name, record in attribution.dependencies().items()
        }
        attribution.reset()
        with attribution.attributing():
            seminaive_chase(source_2_1, deps)
        seminaive_counts = {
            name: (record["firings"], record["nulls"])
            for name, record in attribution.dependencies().items()
        }
        assert standard_counts == seminaive_counts

    def test_oblivious_engine(self, setting_2_1, source_2_1):
        st1, st2 = (
            attribution.dep_label(dep)
            for dep in setting_2_1.st_dependencies
        )
        with attribution.attributing():
            fire_all_source_justifications(
                source_2_1, setting_2_1.st_dependencies
            )
        table = attribution.dependencies()
        assert {st1, st2} <= set(table)
        assert table[st1]["firings"] == 1
        assert table[st2]["firings"] == 2
        assert table[st2]["nulls"] == 4

    def test_alpha_engine(self, setting_2_1, source_2_1):
        st1, st2 = (
            attribution.dep_label(dep)
            for dep in setting_2_1.st_dependencies
        )
        with attribution.attributing():
            outcome, _ = oblivious_chase(
                source_2_1, list(setting_2_1.st_dependencies)
            )
        assert outcome.successful
        table = attribution.dependencies()
        assert {st1, st2} <= set(table)
        assert table[st1]["firings"] >= 1

    def test_round_breakdown_is_bounded(self):
        for round_index in range(attribution.MAX_ROUNDS + 40):
            attribution.record_dependency(
                "d", round_index=round_index, triggers=1
            )
        rounds = attribution.dependencies()["d"]["rounds"]
        assert len(rounds) == attribution.MAX_ROUNDS + 1
        assert rounds["overflow"]["triggers"] == 40


class TestStateSection:
    def test_export_merge_round_trip(self):
        attribution.record_dependency("d1", round_index=0, triggers=2, firings=1)
        attribution.record_component("chase.shard", size=5, seconds=0.25)
        payload = attribution.export()
        assert payload["schema"] == attribution.ATTRIBUTION_SCHEMA
        attribution.reset()
        assert attribution.export() is None
        attribution.merge(payload)
        assert attribution.export() == payload

    def test_merge_is_associative(self):
        attribution.record_dependency("d", round_index=0, triggers=1, nulls=2)
        first = attribution.export()
        attribution.reset()
        attribution.record_dependency("d", round_index=1, triggers=3)
        attribution.record_dependency("e", firings=1)
        second = attribution.export()
        attribution.reset()

        attribution.merge(first)
        attribution.merge(second)
        forward = attribution.export()
        attribution.reset()
        attribution.merge(second)
        attribution.merge(first)
        backward = attribution.export()
        assert forward == backward

    def test_section_travels_through_telemetry_state(self):
        attribution.record_dependency("d1", triggers=1)
        state = obs.get_telemetry().export_state()
        assert "attribution" in state
        attribution.reset()
        obs.get_telemetry().merge_state(state)
        assert attribution.dependencies()["d1"]["triggers"] == 1

    def test_snapshot_carries_section_additively(self):
        snapshot = obs.snapshot()
        assert "attribution" not in snapshot
        attribution.record_dependency("d1", triggers=1)
        snapshot = obs.snapshot()
        assert snapshot["schema"] == "repro.obs/v1"
        assert (
            snapshot["attribution"]["schema"]
            == attribution.ATTRIBUTION_SCHEMA
        )

    def test_obs_reset_clears_tables(self):
        attribution.record_dependency("d1", triggers=1)
        obs.reset()
        assert attribution.export() is None

    def test_plan_gauges(self, setting_2_1, source_2_1):
        with attribution.attributing():
            standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        gauges = obs.snapshot()["gauges"]
        assert gauges["plan.steps_profiled"] > 0
        assert gauges["plan.misestimates"] >= 0


class TestParallelParity:
    def test_serial_and_pooled_counts_agree(self, setting_2_1):
        source = parse_instance(SHARDED_SOURCE, setting_2_1.joint_schema)
        with attribution.attributing():
            serial = solve(setting_2_1, source, shard="on")
        assert serial.cwa_solution_exists
        serial_counts = _dep_counts()
        serial_components = {
            kind: len(rows)
            for kind, rows in attribution.components().items()
        }
        attribution.reset()

        with attribution.attributing():
            with Executor(workers=2) as executor:
                parallel = solve(
                    setting_2_1, source, shard="on", executor=executor
                )
        assert parallel.cwa_solution_exists
        assert _dep_counts() == serial_counts
        parallel_components = {
            kind: len(rows)
            for kind, rows in attribution.components().items()
        }
        assert parallel_components == serial_components
        assert serial_components["chase.shard"] == 3


class TestHeartbeat:
    def test_beat_is_noop_without_heartbeat(self):
        assert attribution.heartbeat() is None
        attribution.beat(
            engine="standard",
            round_index=0,
            steps=1,
            instance_size=2,
            nulls_created=0,
        )  # must not raise

    def test_lines_and_divergence_flag(self):
        stream = io.StringIO()
        hb = attribution.Heartbeat(stream)
        nulls = 0
        for round_index, delta in enumerate((20, 40, 100, 240)):
            nulls += delta
            hb.beat(
                engine="standard",
                round_index=round_index,
                steps=nulls,
                instance_size=nulls,
                nulls_created=nulls,
            )
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert len(lines) == 4
        for record in lines:
            assert record["type"] == "heartbeat"
            assert record["engine"] == "standard"
            assert record["pid"] == os.getpid()
        # Round 0's jump from zero counts toward the streak, so three
        # consecutive growing rounds flag at index 2 and stay flagged.
        assert [record["diverging"] for record in lines] == [
            False,
            False,
            True,
            True,
        ]
        assert lines[-1]["nulls_delta"] == 240

    def test_flat_growth_never_diverges(self):
        stream = io.StringIO()
        hb = attribution.Heartbeat(stream)
        for round_index in range(8):
            hb.beat(
                engine="seminaive",
                round_index=round_index,
                steps=round_index,
                instance_size=100,
                nulls_created=20 * (round_index + 1),
            )
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert not any(record["diverging"] for record in lines)

    def test_engines_emit_rounds(self, setting_2_1, source_2_1, tmp_path):
        path = tmp_path / "progress.jsonl"
        attribution.enable_heartbeat(str(path))
        try:
            standard_chase(source_2_1, list(setting_2_1.all_dependencies))
        finally:
            attribution.disable_heartbeat()
        lines = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert lines
        assert [record["round"] for record in lines] == list(
            range(len(lines))
        )
        assert all(record["engine"] == "standard" for record in lines)
        assert lines[-1]["atoms"] > 0

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        attribution.configure_from_env(
            {
                "REPRO_ATTRIBUTION": "1",
                "REPRO_PROGRESS": str(path),
                "REPRO_PROGRESS_INTERVAL": "0.5",
            }
        )
        try:
            assert attribution.enabled()
            assert attribution.heartbeat() is not None
            assert attribution.heartbeat()._interval == 0.5
        finally:
            attribution.disable_heartbeat()
            attribution.enable(False)
