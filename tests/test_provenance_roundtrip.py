"""Ledger persistence at scale: ``dumps`` -> ``loads`` is lossless.

Satellite of ISSUE 10: the incremental path persists the provenance
ledger between processes (``repro solve --provenance`` then
``--incremental-from``), so serialization must preserve everything the
resume path reads -- the step sequence, the live-fact and chase-state
sets, the ``why()`` justification DAG, and the retraction/deletion
bookkeeping that ``why_not()`` reports.  Property-tested over randomly
generated chase runs including egd merges, core retractions, and delta
deletions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro import DeltaSession, SourceDelta
from repro.exchange.solve import solve
from repro.generators import (
    random_source_for,
    random_weakly_acyclic_setting,
)
from repro.obs.provenance import ProvenanceLedger, recording


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _recorded_solve(seed):
    """Chase + core a random setting under recording; None on failure."""
    setting = random_weakly_acyclic_setting(seed, egd_probability=0.5)
    source = random_source_for(setting, seed=seed + 1)
    ledger = ProvenanceLedger()
    try:
        with recording(ledger):
            solve(setting, source, engine="seminaive")
    except Exception:
        return None, None, None
    return setting, source, ledger


def _assert_equivalent(original, resumed):
    assert len(resumed) == len(original)
    assert resumed.facts() == original.facts()
    assert resumed.live_facts() == original.live_facts()
    assert resumed.chase_facts() == original.chase_facts()
    assert resumed.has_merges() == original.has_merges()
    assert resumed.fingerprint() == original.fingerprint()
    for kept, loaded in zip(original.steps, resumed.steps):
        assert loaded.kind == kept.kind
        assert loaded.added == kept.added
        assert loaded.parents == kept.parents
        assert loaded.dropped == kept.dropped
        assert loaded.merged == kept.merged
        assert loaded.rewrites == kept.rewrites
    for fact in original.facts():
        just = original.why(fact)
        back = resumed.why(fact)
        if just is None:
            assert back is None
        else:
            assert back is not None
            assert resumed.render_why(fact) == original.render_why(fact)
    # Retracted facts explain themselves identically after the trip.
    for fact in set(original.facts()) - set(original.live_facts()):
        assert resumed.why_not(fact) == original.why_not(fact)


class TestRoundTripProperties:
    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_random_chase_runs_roundtrip(self, seed):
        setting, source, ledger = _recorded_solve(seed)
        if ledger is None or not len(ledger):
            return
        _assert_equivalent(ledger, ProvenanceLedger.loads(ledger.dumps()))

    @given(seed=st.integers(min_value=0, max_value=25))
    @settings(max_examples=15, deadline=None)
    def test_session_ledgers_roundtrip_with_deletions(self, seed):
        """Ledgers holding delta ``delete`` steps survive the trip too."""
        setting = random_weakly_acyclic_setting(seed, egd_probability=0.3)
        source = random_source_for(setting, seed=seed + 1)
        try:
            session = DeltaSession(setting, source)
        except Exception:
            return
        atoms = sorted(session.source)
        if not atoms:
            return
        try:
            session.apply(SourceDelta(deletions=[atoms[seed % len(atoms)]]))
        except Exception:
            return
        ledger = session.ledger
        _assert_equivalent(ledger, ProvenanceLedger.loads(ledger.dumps()))

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_is_idempotent(self, seed):
        _, _, ledger = _recorded_solve(seed)
        if ledger is None:
            return
        once = ledger.dumps()
        assert ProvenanceLedger.loads(once).dumps() == once


class TestRoundTripResume:
    @given(seed=st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_resumed_ledger_supports_from_ledger(self, seed):
        """The persisted form is good enough to seed a DeltaSession."""
        setting, source, ledger = _recorded_solve(seed)
        if ledger is None or not len(ledger):
            return
        resumed = ProvenanceLedger.loads(ledger.dumps())
        session = DeltaSession.from_ledger(setting, source, resumed)
        batch = solve(setting, source, engine="seminaive")
        assert (
            session.result.cwa_solution_exists == batch.cwa_solution_exists
        )
