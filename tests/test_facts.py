"""Tests for facts, the canonical fact φ_T, and Definition 4.7 verbatim."""

import pytest

from repro.core import ReproError, isomorphic
from repro.cwa import (
    canonical_fact,
    enumerate_cwa_presolutions,
    fact_follows,
    is_cwa_solution,
    is_cwa_solution_by_definition,
)
from repro.generators.settings_library import example_4_9_non_solutions
from repro.logic import parse_instance, parse_query


class TestFactFollows:
    def test_forced_fact_follows(self, setting_2_1, source_2_1):
        fact = parse_query("Q() :- E('a', 'b')")
        assert fact_follows(setting_2_1, source_2_1, fact)

    def test_chain_fact_follows(self, setting_2_1, source_2_1):
        # d2 then d3 force an F-G chain from a.
        fact = parse_query("Q() :- F('a', x), G(x, y)")
        assert fact_follows(setting_2_1, source_2_1, fact)

    def test_paper_counterexample_does_not_follow(self, setting_2_1, source_2_1):
        """The fact 'a and b are connected by an F-G path of length two'
        (Section 4's motivating example for CWA3) does not follow."""
        fact = parse_query("Q() :- F('a', x), G(x, 'b')")
        assert not fact_follows(setting_2_1, source_2_1, fact)

    def test_non_boolean_rejected(self, setting_2_1, source_2_1):
        with pytest.raises(ReproError):
            fact_follows(setting_2_1, source_2_1, parse_query("Q(x) :- E(x, y)"))

    def test_inequalities_rejected(self, setting_2_1, source_2_1):
        with pytest.raises(ReproError):
            fact_follows(
                setting_2_1,
                source_2_1,
                parse_query("Q() :- E(x, y), x != y"),
            )

    def test_vacuous_when_no_solution(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        assert fact_follows(setting, source, parse_query("Q() :- Tgt('q','q')"))


class TestCanonicalFact:
    def test_shape(self):
        target = parse_instance("E('a', #1), F(#1, #2)")
        fact = canonical_fact(target)
        assert fact.arity == 0
        assert len(fact.body) == 2

    def test_follows_iff_homomorphism(self, setting_2_1, source_2_1, solutions_2_1):
        """φ_T follows iff hom(T → canonical universal solution) -- the
        bridge the paper uses to prove Theorem 4.8."""
        from repro.homomorphism import has_homomorphism

        canonical = setting_2_1.canonical_universal_solution(source_2_1)
        for target in solutions_2_1:
            assert fact_follows(
                setting_2_1, source_2_1, canonical_fact(target)
            ) == has_homomorphism(target, canonical)


class TestDefinition47Verbatim:
    def test_agrees_with_theorem_4_8_on_named_instances(
        self, setting_2_1, source_2_1, solutions_2_1
    ):
        t1, t2, t3 = solutions_2_1
        t_prime, t_double_prime = example_4_9_non_solutions()
        for target in (t1, t2, t3, t_prime, t_double_prime):
            assert is_cwa_solution_by_definition(
                setting_2_1, source_2_1, target
            ) == is_cwa_solution(setting_2_1, source_2_1, target)

    def test_agrees_on_enumerated_presolutions(self, setting_2_1, source_2_1):
        for candidate in enumerate_cwa_presolutions(setting_2_1, source_2_1):
            assert is_cwa_solution_by_definition(
                setting_2_1, source_2_1, candidate
            ) == is_cwa_solution(setting_2_1, source_2_1, candidate)

    def test_agrees_on_example_5_3(self, setting_5_3, source_5_3):
        for candidate in enumerate_cwa_presolutions(setting_5_3, source_5_3):
            assert is_cwa_solution_by_definition(
                setting_5_3, source_5_3, candidate
            ) == is_cwa_solution(setting_5_3, source_5_3, candidate)
