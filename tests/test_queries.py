"""Tests for query classes: CQ, UCQ, FO queries."""

import pytest

from repro.core import Const, Instance, Null, RelationSymbol, UnsupportedQueryError, Variable, atom
from repro.logic import parse_instance, parse_query
from repro.logic.queries import (
    ConjunctiveQuery,
    FirstOrderQuery,
    UnionOfConjunctiveQueries,
    canonical_query,
)
from repro.core import Atom

E = RelationSymbol("E", 2)
x, y = Variable("x"), Variable("y")


@pytest.fixture
def graph():
    return parse_instance("E('a','b'), E('b','c'), E('c','a'), E('a', #1)")


class TestConjunctiveQuery:
    def test_evaluate(self, graph):
        query = parse_query("Q(x) :- E(x, y), E(y, z)")
        answers = query.evaluate(graph)
        assert (Const("a"),) in answers
        assert (Const("b"),) in answers

    def test_boolean_query(self, graph):
        query = parse_query("Q() :- E(x, x)")
        assert not query.holds_in(graph)
        query2 = parse_query("Q() :- E(x, y), E(y, z), E(z, x)")
        assert query2.holds_in(graph)

    def test_answers_can_contain_nulls(self, graph):
        query = parse_query("Q(y) :- E('a', y)")
        answers = query.evaluate(graph)
        assert (Null(1),) in answers
        assert (Const("b"),) in answers

    def test_certain_part_drops_nulls(self, graph):
        query = parse_query("Q(y) :- E('a', y)")
        assert query.certain_part(graph) == frozenset({(Const("b"),)})

    def test_inequalities(self, graph):
        query = parse_query("Q(x, y) :- E(x, y), x != y")
        assert (Const("a"), Const("b")) in query.evaluate(graph)

    def test_unsafe_head_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            ConjunctiveQuery([x], [Atom(E, (y, y))])

    def test_unsafe_inequality_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            ConjunctiveQuery([x], [Atom(E, (x, x))], [(y, Const("a"))])

    def test_arity(self):
        query = parse_query("Q(x, y) :- E(x, y)")
        assert query.arity == 2
        assert not query.is_boolean

    def test_to_formula_roundtrip(self, graph):
        query = parse_query("Q(x) :- E(x, y), E(y, z)")
        formula_query = FirstOrderQuery(query.head, query.to_formula())
        assert formula_query.evaluate(graph) == query.evaluate(graph)

    def test_to_formula_with_inequality_roundtrip(self, graph):
        query = parse_query("Q(x) :- E(x, y), x != y")
        formula_query = FirstOrderQuery(query.head, query.to_formula())
        assert formula_query.evaluate(graph) == query.evaluate(graph)

    def test_has_inequalities_flag(self):
        assert parse_query("Q(x) :- E(x, y), x != y").has_inequalities
        assert not parse_query("Q(x) :- E(x, y)").has_inequalities


class TestUnionOfConjunctiveQueries:
    def test_union_evaluation(self, graph):
        query = parse_query("Q(v) :- E(v, 'b') ; Q(v) :- E('b', v)")
        answers = query.evaluate(graph)
        assert answers == frozenset({(Const("a"),), (Const("c"),)})

    def test_mixed_arity_rejected(self):
        one = parse_query("Q(x) :- E(x, y)")
        two = parse_query("Q(x, y) :- E(x, y)")
        with pytest.raises(UnsupportedQueryError):
            UnionOfConjunctiveQueries([one, two])

    def test_empty_union_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            UnionOfConjunctiveQueries([])

    def test_pure_ucq_flag(self):
        pure = parse_query("Q(x) :- E(x, y) ; Q(x) :- E(y, x)")
        assert pure.is_pure_ucq
        impure = parse_query("Q(x) :- E(x, y), x != y ; Q(x) :- E(y, x)")
        assert not impure.is_pure_ucq
        assert impure.max_inequalities_per_disjunct == 1

    def test_to_formula_aligns_heads(self, graph):
        query = parse_query("Q(v) :- E(v, 'b') ; Q(w) :- E('b', w)")
        formula_query = FirstOrderQuery(query.disjuncts[0].head, query.to_formula())
        assert formula_query.evaluate(graph) == query.evaluate(graph)


class TestFirstOrderQuery:
    def test_negation_query(self, graph):
        query = parse_query("Q(v) :- E(v, w)")  # has outgoing
        fo = parse_query("Q(v) := exists w . E(v, w)")
        assert fo.evaluate(graph) == query.evaluate(graph)

    def test_query_with_universal(self, graph):
        # nodes with outgoing edges, all of which lead to 'c': only 'b'.
        fo = parse_query(
            "Q(v) := (exists w . E(v, w)) & (forall w . E(v, w) -> w = 'c')"
        )
        assert fo.evaluate(graph) == frozenset({(Const("b"),)})

    def test_head_must_match_free_variables(self):
        from repro.logic.formulas import RelationalAtom

        with pytest.raises(UnsupportedQueryError):
            FirstOrderQuery([x], RelationalAtom(Atom(E, (x, y))))


class TestCanonicalQuery:
    def test_nulls_become_variables(self):
        inst = Instance([atom(E, "a", Null(0)), atom(E, Null(0), Null(1))])
        query = canonical_query(inst)
        assert query.arity == 0
        assert len(query.body) == 2

    def test_chandra_merlin(self):
        """I ⊨ φ_T iff hom(T → I) exists."""
        from repro.homomorphism import has_homomorphism

        t = Instance([atom(E, "a", Null(0))])
        bigger = Instance([atom(E, "a", "b")])
        unrelated = Instance([atom(E, "b", "c")])
        assert canonical_query(t).holds_in(bigger) == has_homomorphism(t, bigger)
        assert canonical_query(t).holds_in(unrelated) == has_homomorphism(t, unrelated)
