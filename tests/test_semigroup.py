"""Tests for D_emb and Example 6.1."""

import pytest

from repro.chase import standard_chase
from repro.core import Const
from repro.homomorphism import find_homomorphism
from repro.reductions.semigroup import (
    d_emb_setting,
    encode_partial_function,
    example_6_1_source,
    instance_as_table,
    is_associative_total,
    modular_addition_solution,
    refute_cwa_solution,
    successor_chain,
)


@pytest.fixture(scope="module")
def setting():
    return d_emb_setting()


@pytest.fixture(scope="module")
def source():
    return example_6_1_source()


class TestSetting:
    def test_shape(self, setting):
        assert len(setting.st_dependencies) == 1
        # d_func, d_assoc, and nine d_total conjuncts.
        assert len(setting.target_dependencies) == 11
        assert len(setting.target_egds) == 1
        assert len(setting.target_tgds) == 10

    def test_not_weakly_acyclic(self, setting):
        assert not setting.is_weakly_acyclic

    def test_source_encoding(self):
        source = encode_partial_function({("0", "1"): "1", ("1", "1"): "0"})
        assert len(source) == 2


class TestModularSolutions:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_is_solution(self, setting, source, k):
        assert setting.is_solution(source, modular_addition_solution(k))

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_encodes_a_semigroup(self, k):
        target = modular_addition_solution(k)
        table = instance_as_table(target)
        domain = [str(i) for i in range(k + 2)]
        assert is_associative_total(table, domain)

    def test_extends_the_partial_function(self):
        table = instance_as_table(modular_addition_solution(2))
        assert table[("0", "1")] == "1"

    def test_successor_chain_of_modular_solution(self):
        # In Z_4: 0 -> 1 -> 2 -> 3 -> 0; the chain stops on repetition.
        chain = successor_chain(modular_addition_solution(2))
        assert [str(v) for v in chain] == ["1", "2", "3", "0"]


class TestExample61:
    """S = {R(0,1,1)} has solutions but no CWA-solution."""

    def test_no_homomorphism_between_different_moduli(self):
        # Z_{k+2} has a (k+2)-cycle under +1; Z_{k+3}'s chain is longer,
        # so the shorter cycle cannot map into it (constants are rigid
        # and distinct cycles of different length are incompatible).
        small = modular_addition_solution(0)  # Z_2
        large = modular_addition_solution(3)  # Z_5
        assert find_homomorphism(small, large) is None

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_refutation_executes_papers_argument(self, setting, source, k):
        """Each candidate finite solution is refuted: its successor
        chain closes into a cycle that cannot map into Z_{chain+2}."""
        candidate = modular_addition_solution(k)
        assert setting.is_solution(source, candidate)
        explanation = refute_cwa_solution(candidate)
        assert explanation is not None
        assert "not universal" in explanation

    def test_standard_chase_diverges(self, setting, source):
        """d_total keeps inventing products: the chase never stops, so
        no universal solution is ever produced this way."""
        outcome = standard_chase(
            source, list(setting.all_dependencies), max_steps=400
        )
        assert outcome.diverged

    def test_kolaitis_reduction_has_solution_here(self, setting, source):
        """The contrast of Example 6.1/Remark 6.3: Existence-of-Solutions
        is answered 'yes' by the mod tables, while the CWA variant is
        'no' -- the two reductions are genuinely different."""
        assert setting.is_solution(source, modular_addition_solution(1))
