"""Tests for the SolutionSpace poset (Section 5's structure, as an API)."""

import pytest

from repro.core import isomorphic
from repro.cwa import SolutionSpace, core_solution
from repro.generators.settings_library import (
    egd_only_setting,
    example_5_3_setting,
    example_5_3_source,
    full_tgd_setting,
)
from repro.logic import parse_instance


class TestExample53Space:
    @pytest.fixture(scope="class")
    def space(self):
        return SolutionSpace.build(
            example_5_3_setting(), example_5_3_source(1)
        )

    def test_size(self, space):
        assert len(space) == 4

    def test_unique_minimal_is_core(self, space):
        minimal = space.minimal_indices()
        assert len(minimal) == 1
        core = core_solution(example_5_3_setting(), example_5_3_source(1))
        assert isomorphic(space.solutions[minimal[0]], core)

    def test_no_maximal(self, space):
        assert space.maximal_indices() == []
        assert not space.has_maximum()

    def test_antichain_of_incomparable_solutions(self, space):
        # T and T' (and the third pattern) are pairwise incomparable.
        assert len(space.largest_antichain()) >= 2

    def test_not_a_chain(self, space):
        assert not space.is_chain()

    def test_census_and_describe(self, space):
        census = space.census()
        assert census["solutions"] == 4
        assert census["maximal"] == 0
        text = space.describe()
        assert "none exists" in text
        assert "minimal" in text


class TestExample21Space:
    def test_core_minimal_and_below_everything(self, setting_2_1, source_2_1):
        space = SolutionSpace.build(setting_2_1, source_2_1)
        minimal = space.minimal_indices()
        assert len(minimal) == 1
        # The core is a hom-image of every solution.
        core_index = minimal[0]
        assert all(
            space.below(core_index, j) for j in range(len(space))
        )


class TestRestrictedClassSpaces:
    def test_egd_only_space_has_maximum(self):
        setting = egd_only_setting()
        source = parse_instance("Emp('e1','d1'), Emp('e2','d2')")
        space = SolutionSpace.build(setting, source)
        assert space.has_maximum()  # Proposition 5.4

    def test_full_tgd_space_is_singleton_chain(self):
        setting = full_tgd_setting()
        source = parse_instance("Edge('a','b'), Start('a')")
        space = SolutionSpace.build(setting, source)
        assert len(space) == 1
        assert space.is_chain()
        assert space.has_maximum()
        assert space.census()["largest_antichain"] == 1

    def test_empty_space(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        space = SolutionSpace.build(setting, source)
        assert space.is_empty
        assert len(space) == 0
