"""Tests for Gaifman blocks and blockwise core computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Atom, Const, Instance, Null, RelationSymbol, isomorphic
from repro.homomorphism import core
from repro.homomorphism.blocks import (
    _minimize_block,
    block_atoms,
    block_statistics,
    blockwise_core,
    null_blocks,
)
from repro.logic import parse_instance

E = RelationSymbol("E", 2)


class TestBlocks:
    def test_disjoint_nulls_separate_blocks(self):
        inst = parse_instance("E('a', #1), E('b', #2)")
        blocks = null_blocks(inst)
        assert len(blocks) == 2
        assert {frozenset({Null(1)}), frozenset({Null(2)})} == set(blocks)

    def test_cooccurrence_merges(self):
        inst = parse_instance("E(#1, #2), E(#2, #3), E('a', #4)")
        blocks = null_blocks(inst)
        assert frozenset({Null(1), Null(2), Null(3)}) in blocks
        assert frozenset({Null(4)}) in blocks

    def test_ground_instance_has_no_blocks(self):
        assert null_blocks(parse_instance("E('a','b')")) == []

    def test_block_atoms(self):
        inst = parse_instance("E(#1, #2), E('a', 'b'), E('a', #3)")
        blocks = null_blocks(inst)
        first = next(b for b in blocks if Null(1) in b)
        owned = block_atoms(inst, first)
        assert len(owned) == 1

    def test_statistics(self):
        inst = parse_instance("E(#1, #2), E('a', #3)")
        stats = block_statistics(inst)
        assert stats["blocks"] == 2
        assert stats["largest"] == 2

    def test_statistics_empty(self):
        assert block_statistics(Instance())["blocks"] == 0


class TestBlockwiseCore:
    def test_agrees_on_paper_example(self, setting_2_1, source_2_1):
        canonical = setting_2_1.canonical_universal_solution(source_2_1)
        assert isomorphic(blockwise_core(canonical), core(canonical))

    def test_simple_fold(self):
        inst = parse_instance("E('a', #1), E('a', 'b')")
        assert blockwise_core(inst) == parse_instance("E('a', 'b')")

    def test_cross_block_fold(self):
        # #1's block folds onto #2's block (or vice versa).
        inst = parse_instance("E('a', #1), E('a', #2), E(#2, 'b')")
        folded = blockwise_core(inst)
        assert len(folded) == 2
        assert isomorphic(folded, core(inst))

    def test_ground_instance_untouched(self):
        inst = parse_instance("E('a','b'), E('b','c')")
        assert blockwise_core(inst) == inst

    def test_result_is_core(self):
        inst = parse_instance(
            "E('a', #1), E(#1, #2), E('a', 'b'), E('b', 'c'), E('q', #3)"
        )
        from repro.homomorphism import is_core

        assert is_core(blockwise_core(inst))


class TestMinimizeBlock:
    def test_input_instance_is_never_mutated(self):
        inst = parse_instance("E('a', #1), E('a', 'b')")
        snapshot = set(inst.sorted_atoms())
        block = frozenset({Null(1)})
        folded = _minimize_block(inst, block)
        assert folded is not None
        assert set(inst.sorted_atoms()) == snapshot

    def test_returns_none_when_block_is_minimal(self):
        inst = parse_instance("E('a', #1)")
        assert _minimize_block(inst, frozenset({Null(1)})) is None

    def test_pattern_cache_reuse_is_counted(self):
        import repro.obs as obs

        obs.reset()
        # Distinctive constants guarantee a cache key no earlier test
        # populated; the second pass over the unchanged block must hit.
        inst = parse_instance("E('reuse_probe', #1), E(#1, 'reuse_probe')")
        block = frozenset({Null(1)})
        _minimize_block(inst, block)
        before = obs.counter("core.block_pattern_reuse").value
        _minimize_block(inst, block)
        assert obs.counter("core.block_pattern_reuse").value > before
        obs.reset()


def small_instances():
    values = st.one_of(
        st.sampled_from([Const("a"), Const("b")]),
        st.integers(min_value=0, max_value=3).map(Null),
    )
    return st.lists(
        st.tuples(values, values).map(lambda pair: Atom(E, pair)),
        max_size=7,
    ).map(Instance)


@given(small_instances())
@settings(max_examples=60, deadline=None)
def test_blockwise_core_equals_global_core(inst):
    assert isomorphic(blockwise_core(inst), core(inst))
