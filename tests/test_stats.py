"""Tests for ``repro stats`` and :mod:`repro.obs.stats`.

Covers the three input shapes (plain ``repro.obs/v1`` snapshot files,
single- and multi-run ``repro.obs/log/v1`` metrics logs), the merge
semantics (counters add, histograms fold bucket-wise so multi-run
percentiles are true percentiles), and both CLI renderings (aggregate
table and two-file delta view).
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.errors import ReproError
from repro.obs import NULL_SINK, MetricsLog
from repro.obs.stats import load_stats_file, merge_snapshots, render_delta


@pytest.fixture(autouse=True)
def clean_registry():
    previous = obs.install_sink(NULL_SINK)
    obs.reset()
    yield
    obs.install_sink(previous)
    obs.reset()


def make_snapshot(firings, span_seconds):
    obs.reset()
    obs.counter("chase.tgd_firings").inc(firings)
    with obs.span("solve"):
        pass
    obs.get_telemetry()._spans["solve"].zero()
    obs.get_telemetry()._spans["solve"].record(span_seconds)
    obs.histogram("engine.cache.hit_seconds").record(span_seconds / 10.0)
    return obs.snapshot()


def write_snapshot(path, snapshot):
    path.write_text(json.dumps(snapshot, sort_keys=True), encoding="utf-8")
    return str(path)


def write_log(path, snapshots):
    with MetricsLog(str(path)) as log:
        for index, snapshot in enumerate(snapshots):
            log.log_run(
                command="solve",
                status=0,
                seconds=0.1,
                snapshot=snapshot,
                run_id=f"run{index}",
            )
    return str(path)


class TestLoading:
    def test_plain_snapshot_file(self, tmp_path):
        snapshot = make_snapshot(4, 0.02)
        path = write_snapshot(tmp_path / "snap.json", snapshot)
        loaded, runs = load_stats_file(path)
        assert runs == 1
        assert loaded["counters"]["chase.tgd_firings"] == 4

    def test_metrics_log_merges_all_runs(self, tmp_path):
        first = make_snapshot(3, 0.010)
        second = make_snapshot(5, 0.030)
        path = write_log(tmp_path / "metrics.jsonl", [first, second])
        merged, runs = load_stats_file(path)
        assert runs == 2
        assert merged["counters"]["chase.tgd_firings"] == 8
        solve = merged["spans"]["solve"]
        assert solve["count"] == 2
        assert solve["seconds"] == pytest.approx(0.040)
        assert solve["min"] == pytest.approx(0.010)
        assert solve["max"] == pytest.approx(0.030)
        hist = merged["histograms"]["engine.cache.hit_seconds"]
        assert hist["count"] == 2

    def test_single_line_log_parses(self, tmp_path):
        path = write_log(tmp_path / "one.jsonl", [make_snapshot(1, 0.001)])
        merged, runs = load_stats_file(path)
        assert runs == 1
        assert merged["counters"]["chase.tgd_firings"] == 1

    def test_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ReproError):
            load_stats_file(str(path))

    def test_garbage_line_is_an_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(ReproError):
            load_stats_file(str(path))

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ReproError):
            load_stats_file(str(tmp_path / "nope.json"))


class TestMergeSnapshots:
    def test_counters_add_and_gauges_last_write(self):
        into = {"counters": {"a": 1}, "gauges": {"g": 10}}
        merge_snapshots(into, {"counters": {"a": 2, "b": 5}, "gauges": {"g": 7}})
        assert into["counters"] == {"a": 3, "b": 5}
        assert into["gauges"]["g"] == 7

    def test_span_percentiles_recomputed_over_union(self):
        first = make_snapshot(1, 0.001)
        second = make_snapshot(1, 1.0)
        merged = merge_snapshots(dict(first), second)
        solve = merged["spans"]["solve"]
        # The union's p99 lives near the slow run, not the fast one.
        assert solve["p99"] > 0.01
        assert solve["min"] == pytest.approx(0.001)


class TestCli:
    def test_stats_renders_aggregate_table(self, tmp_path, capsys):
        path = write_log(
            tmp_path / "metrics.jsonl",
            [make_snapshot(3, 0.01), make_snapshot(4, 0.02)],
        )
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "2 run(s)" in out
        assert "chase.tgd_firings" in out
        assert "p95" in out
        assert "solve" in out

    def test_stats_delta_view(self, tmp_path, capsys):
        baseline = write_snapshot(
            tmp_path / "base.json", make_snapshot(2, 0.010)
        )
        fresh = write_snapshot(tmp_path / "fresh.json", make_snapshot(6, 0.020))
        assert main(["stats", baseline, fresh]) == 0
        out = capsys.readouterr().out
        assert "delta" in out
        assert "chase.tgd_firings" in out
        assert "3.00x" in out  # 6 vs 2 firings
        assert "ratio" in out

    def test_stats_json_output(self, tmp_path, capsys):
        path = write_snapshot(tmp_path / "snap.json", make_snapshot(1, 0.001))
        assert main(["stats", "--json", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["chase.tgd_firings"] == 1

    def test_stats_rejects_three_files(self, tmp_path, capsys):
        path = write_snapshot(tmp_path / "s.json", make_snapshot(1, 0.001))
        assert main(["stats", path, path, path]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "gone.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestRenderDelta:
    def test_new_counter_shows_as_new(self):
        out = render_delta(
            {"counters": {}},
            {"counters": {"solve.cache_hits": 2}},
        )
        assert "new" in out
        assert "solve.cache_hits" in out
