"""Tests for active-domain FO evaluation."""

import pytest

from repro.core import Const, Instance, Null, atom, RelationSymbol
from repro.logic import parse_formula, parse_instance
from repro.logic.evaluation import holds, satisfying_assignments
from repro.logic.parser import parse_query

E = RelationSymbol("E", 2)
P = RelationSymbol("P", 1)


@pytest.fixture
def path():
    return parse_instance("E('a','b'), E('b','c'), P('a')")


class TestHolds:
    def test_atom_true(self, path):
        assert holds(parse_formula("E('a','b')"), path)

    def test_atom_false(self, path):
        assert not holds(parse_formula("E('b','a')"), path)

    def test_conjunction(self, path):
        assert holds(parse_formula("E('a','b') & E('b','c')"), path)
        assert not holds(parse_formula("E('a','b') & E('c','a')"), path)

    def test_disjunction(self, path):
        assert holds(parse_formula("E('c','a') | P('a')"), path)

    def test_negation(self, path):
        assert holds(parse_formula("~E('b','a')"), path)

    def test_exists(self, path):
        assert holds(parse_formula("exists x . E('a', x)"), path)
        assert not holds(parse_formula("exists x . E(x, 'a')"), path)

    def test_forall(self, path):
        # Every P-node has an outgoing edge.
        assert holds(parse_formula("forall x . P(x) -> exists y . E(x, y)"), path)
        # Not every node has an outgoing edge ('c' does not).
        assert not holds(parse_formula("forall x . exists y . E(x, y)"), path)

    def test_implication(self, path):
        assert holds(parse_formula("E('c','z') -> E('z','c')"), path)

    def test_equality(self, path):
        assert holds(parse_formula("exists x . x = 'a'"), path)
        assert holds(parse_formula("exists x, y . E(x, y) & x != y"), path)

    def test_free_variable_assignment(self):
        inst = parse_instance("P('a')")
        formula = parse_formula("P(x)")
        x = next(iter(formula.free_variables()))
        assert holds(formula, inst, {x: Const("a")})
        assert not holds(formula, inst, {x: Const("b")})

    def test_missing_assignment_raises(self):
        formula = parse_formula("P(x)")
        with pytest.raises(ValueError):
            holds(formula, parse_instance("P('a')"))

    def test_true_false_literals(self, path):
        assert holds(parse_formula("true"), path)
        assert not holds(parse_formula("false"), path)


class TestNullSemantics:
    def test_null_equals_only_itself(self):
        inst = Instance([atom(P, Null(0)), atom(P, Null(1))])
        assert holds(parse_formula("exists x, y . P(x) & P(y) & x != y"), inst)
        assert not holds(parse_formula("exists x . P(x) & x = 'a'"), inst)

    def test_null_in_atom_formula(self):
        inst = Instance([atom(E, "a", Null(3))])
        # The DSL writes the null as #3.
        assert holds(parse_formula("E('a', #3)"), inst)
        assert not holds(parse_formula("E('a', #4)"), inst)


class TestQuantifierDomain:
    def test_formula_constants_join_domain(self):
        # 'z' does not occur in the instance but is mentioned by the
        # formula, so the existential quantifier can still reach it...
        inst = parse_instance("P('a')")
        assert holds(parse_formula("exists x . x = 'z'"), inst)

    def test_active_domain_restricts(self):
        inst = parse_instance("P('a')")
        # only 'a' is in the domain; no second distinct element exists.
        assert not holds(parse_formula("exists x, y . x != y"), inst)


class TestSatisfyingAssignments:
    def test_enumerates_answers(self, path):
        formula = parse_formula("exists y . E(x, y)")
        x = next(iter(formula.free_variables()))
        answers = set(satisfying_assignments(formula, path, [x]))
        assert answers == {(Const("a"),), (Const("b"),)}

    def test_zero_ary(self, path):
        formula = parse_formula("exists x . P(x)")
        assert list(satisfying_assignments(formula, path, [])) == [()]
