"""Unit tests for schemas and relation symbols."""

import pytest

from repro.core import RelationSymbol, Schema, SchemaError


class TestRelationSymbol:
    def test_equality(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert RelationSymbol("R", 2) != RelationSymbol("R", 3)
        assert RelationSymbol("R", 2) != RelationSymbol("S", 2)

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_primed(self):
        assert RelationSymbol("R", 2).primed() == RelationSymbol("R_t", 2)

    def test_str(self):
        assert str(RelationSymbol("R", 2)) == "R/2"

    def test_sortable(self):
        symbols = sorted([RelationSymbol("B", 1), RelationSymbol("A", 2)])
        assert symbols[0].name == "A"


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(E=2, P=1)
        assert schema["E"].arity == 2
        assert schema["P"].arity == 1

    def test_len_and_iter(self):
        schema = Schema.of(E=2, P=1)
        assert len(schema) == 2
        assert [s.name for s in schema] == ["E", "P"]

    def test_contains_by_name_and_symbol(self):
        schema = Schema.of(E=2)
        assert "E" in schema
        assert RelationSymbol("E", 2) in schema
        assert RelationSymbol("E", 3) not in schema

    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema.of(E=2)["F"]

    def test_get_returns_none(self):
        assert Schema.of(E=2).get("F") is None

    def test_conflicting_arities_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("R", 1), RelationSymbol("R", 2)])

    def test_union(self):
        joint = Schema.of(E=2) | Schema.of(F=1)
        assert "E" in joint and "F" in joint

    def test_union_conflict_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(E=2) | Schema.of(E=3)

    def test_disjointness(self):
        assert Schema.of(E=2).disjoint_from(Schema.of(F=2))
        assert not Schema.of(E=2).disjoint_from(Schema.of(E=2))

    def test_primed_schema(self):
        primed = Schema.of(E=2, P=1).primed()
        assert sorted(primed.names) == ["E_t", "P_t"]

    def test_positions(self):
        positions = Schema.of(E=2, P=1).positions()
        assert len(positions) == 3
        assert (RelationSymbol("E", 2), 0) in positions
        assert (RelationSymbol("E", 2), 1) in positions
        assert (RelationSymbol("P", 1), 0) in positions

    def test_from_mapping(self):
        schema = Schema.from_mapping({"R": 3})
        assert schema["R"].arity == 3

    def test_equality_and_hash(self):
        assert Schema.of(E=2) == Schema.of(E=2)
        assert hash(Schema.of(E=2)) == hash(Schema.of(E=2))
        assert Schema.of(E=2) != Schema.of(E=3)
