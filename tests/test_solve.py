"""Tests for the end-to-end solve driver and the existence problem."""

import pytest

from repro.core import ChaseDivergence, Instance, isomorphic
from repro.exchange import existence_of_cwa_solutions, solve
from repro.generators import chain_setting, chain_source
from repro.logic import parse_instance


class TestSolve:
    def test_example_2_1(self, setting_2_1, source_2_1, solutions_2_1):
        result = solve(setting_2_1, source_2_1)
        assert result.cwa_solution_exists
        _, _, t3 = solutions_2_1
        assert isomorphic(result.core_solution, t3)
        assert len(result.canonical_solution) == 4
        assert result.chase_steps > 0

    def test_core_skippable(self, setting_2_1, source_2_1):
        result = solve(setting_2_1, source_2_1, compute_core=False)
        assert result.core_solution is None
        assert result.canonical_solution is not None

    def test_failure_reported(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        result = solve(setting, source)
        assert not result.cwa_solution_exists
        assert result.canonical_solution is None
        assert result.cwa_solution is None

    def test_divergence_raises(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(S0=2),
            Schema.of(E=2),
            ["S0(x, y) -> E(x, y)"],
            ["E(x, y) -> exists z . E(y, z)"],
        )
        source = parse_instance("S0('a','b')")
        with pytest.raises(ChaseDivergence):
            solve(setting, source, max_steps=100)

    def test_chain_setting_scales(self):
        setting = chain_setting(5)
        source = chain_source(4)
        result = solve(setting, source)
        assert result.cwa_solution_exists
        # Each hop materializes at least one atom per chain relation.
        for level in range(1, 6):
            assert result.canonical_solution.count_of(f"R{level}") >= 1


class TestExistence:
    def test_positive(self, setting_2_1, source_2_1):
        assert existence_of_cwa_solutions(setting_2_1, source_2_1)

    def test_negative(self):
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        source = parse_instance("Src('a','b'), Src('a','c')")
        assert not existence_of_cwa_solutions(setting, source)

    def test_agrees_with_corollary_5_2(self, setting_2_1, source_2_1):
        """Existence of CWA-solutions == existence of universal
        solutions == existence of the core (Corollary 5.2)."""
        from repro.cwa import core_solution, cwa_solution_exists

        direct = existence_of_cwa_solutions(setting_2_1, source_2_1)
        via_universal = setting_2_1.universal_solution_exists(source_2_1)
        via_core = core_solution(setting_2_1, source_2_1) is not None
        assert direct == via_universal == via_core == cwa_solution_exists(
            setting_2_1, source_2_1
        )
