"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    _parse_schema,
    build_parser,
    load_setting_text,
    main,
)
from repro.core import ReproError

SETTING_TEXT = """
# Example 2.1 of the paper
source:      M/2 N/2
target:      E/2 F/2 G/2
st:          M(x1,x2) -> E(x1,x2)
st:          N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)
target-dep:  F(y,x) -> exists z . G(x,z)
target-dep:  F(x,y) & F(x,z) -> y = z
"""

SOURCE_TEXT = "M('a','b'), N('a','b'), N('a','c')"


@pytest.fixture
def setting_file(tmp_path):
    path = tmp_path / "setting.txt"
    path.write_text(SETTING_TEXT, encoding="utf-8")
    return str(path)


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "source.txt"
    path.write_text(SOURCE_TEXT, encoding="utf-8")
    return str(path)


class TestSettingFormat:
    def test_parse_schema(self):
        schema = _parse_schema("M/2 N/3")
        assert schema["M"].arity == 2 and schema["N"].arity == 3

    def test_bad_schema_token(self):
        with pytest.raises(ReproError):
            _parse_schema("M/two")

    def test_load_setting(self):
        setting = load_setting_text(SETTING_TEXT)
        assert len(setting.st_dependencies) == 2
        assert len(setting.target_dependencies) == 2
        assert setting.is_weakly_acyclic

    def test_comments_and_blank_lines_ignored(self):
        text = "# hi\n\nsource: P/1\ntarget: Q/1\nst: P(x) -> Q(x)\n"
        setting = load_setting_text(text)
        assert len(setting.st_dependencies) == 1

    def test_missing_schema_rejected(self):
        with pytest.raises(ReproError):
            load_setting_text("st: P(x) -> Q(x)")

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError):
            load_setting_text("source: P/1\ntarget: Q/1\nbogus: nope")

    def test_malformed_line_rejected(self):
        with pytest.raises(ReproError):
            load_setting_text("source P/1")


class TestCommands:
    def test_solve(self, setting_file, source_file, capsys):
        code = main(["solve", setting_file, source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "core (minimal CWA-solution)" in out
        assert "E(a, b)" in out

    def test_solve_seminaive_engine(self, setting_file, source_file, capsys):
        code = main(
            ["solve", setting_file, source_file, "--engine", "seminaive"]
        )
        assert code == 0
        assert "core" in capsys.readouterr().out

    def test_chase_narration(self, setting_file, source_file, capsys):
        code = main(["chase", setting_file, source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("I0 = ")
        assert "result: success" in out

    def test_certain(self, setting_file, source_file, capsys):
        code = main(
            ["certain", setting_file, source_file, "Q(x, y) :- E(x, y)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "a\tb" in out

    def test_certain_boolean(self, setting_file, source_file, capsys):
        code = main(
            [
                "certain",
                setting_file,
                source_file,
                "Q() :- F('a', u), G(u, w)",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_maybe_semantics(self, setting_file, source_file, capsys):
        code = main(
            [
                "certain",
                setting_file,
                source_file,
                "Q() :- E('a', 'q')",
                "--semantics",
                "maybe",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_check(self, setting_file, source_file, tmp_path, capsys):
        target = tmp_path / "target.txt"
        target.write_text(
            "E('a','b'), F('a',#1), G(#1,#2)", encoding="utf-8"
        )
        code = main(["check", setting_file, source_file, str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "CWA-solution     : yes" in out.replace("  ", " ") or "yes" in out

    def test_check_non_solution(self, setting_file, source_file, tmp_path, capsys):
        target = tmp_path / "target.txt"
        target.write_text("E('a','b')", encoding="utf-8")
        code = main(["check", setting_file, source_file, str(target)])
        out = capsys.readouterr().out
        assert code == 1
        assert "solution" in out

    def test_analyze(self, setting_file, capsys):
        code = main(["analyze", setting_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "weakly acyclic: yes" in out
        assert "richly acyclic: yes" in out

    def test_analyze_warns_outside_weak_acyclicity(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text(
            "source: S/2\ntarget: E/2\nst: S(x,y) -> E(x,y)\n"
            "target-dep: E(x,y) -> exists z . E(y,z)\n",
            encoding="utf-8",
        )
        code = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "undecidable" in out

    def test_report(self, setting_file, source_file, capsys):
        code = main(["report", setting_file, source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "data exchange report" in out
        assert "gaifman blocks" in out
        assert "null justifications" in out

    def test_report_no_solution(self, tmp_path, capsys):
        setting = tmp_path / "key.txt"
        setting.write_text(
            "source: Src/2\ntarget: Tgt/2\nst: Src(x,y) -> Tgt(x,y)\n"
            "target-dep: Tgt(x,y) & Tgt(x,z) -> y = z\n",
            encoding="utf-8",
        )
        source = tmp_path / "clash.txt"
        source.write_text("Src('a','b'), Src('a','c')", encoding="utf-8")
        code = main(["report", str(setting), str(source)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_solve_from_csv_directory(self, setting_file, tmp_path, capsys):
        from repro.io import dump_instance
        from repro.logic import parse_instance as parse

        dump_instance(
            parse("M('a','b'), N('a','b'), N('a','c')"), tmp_path / "csvdata"
        )
        code = main(["solve", setting_file, str(tmp_path / "csvdata")])
        assert code == 0
        assert "core" in capsys.readouterr().out

    def test_error_reporting(self, tmp_path, capsys):
        path = tmp_path / "broken.txt"
        path.write_text("source P/1", encoding="utf-8")
        code = main(["analyze", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain(self, setting_file, source_file, capsys):
        code = main(["explain", setting_file, source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("I0 = ")
        assert "result: success" in out

    def test_explain_why(self, setting_file, source_file, capsys):
        code = main(
            ["explain", setting_file, source_file, "--why", "G(#1, #2)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "G(⊥1, ⊥2) ⇐ " in out
        assert "⇐ source" in out

    def test_explain_why_rejects_multiple_atoms(
        self, setting_file, source_file, capsys
    ):
        code = main(
            [
                "explain",
                setting_file,
                source_file,
                "--why",
                "G(#1,#2), E('a','b')",
            ]
        )
        assert code == 2
        assert "exactly one atom" in capsys.readouterr().err

    def test_bench_compare(self, tmp_path, capsys):
        import json

        def bench(path, median):
            path.write_text(
                json.dumps(
                    {"schema": "repro.bench/v1", "t.median_seconds": median}
                ),
                encoding="utf-8",
            )
            return str(path)

        base = bench(tmp_path / "base.json", 1.0)
        ok = bench(tmp_path / "ok.json", 1.1)
        bad = bench(tmp_path / "bad.json", 2.0)
        assert main(["bench-compare", base, ok, "--tolerance", "0.25"]) == 0
        assert "passed" in capsys.readouterr().out
        assert main(["bench-compare", base, bad, "--tolerance", "0.25"]) == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestSinkLifecycle:
    """Trace artifacts must be complete and parseable on every exit path."""

    def _failing_exchange(self, tmp_path):
        setting = tmp_path / "key.txt"
        setting.write_text(
            "source: Src/2\ntarget: Tgt/2\nst: Src(x,y) -> Tgt(x,y)\n"
            "target-dep: Tgt(x,y) & Tgt(x,z) -> y = z\n",
            encoding="utf-8",
        )
        source = tmp_path / "clash.txt"
        source.write_text("Src('a','b'), Src('a','c')", encoding="utf-8")
        return str(setting), str(source)

    def test_failing_chase_still_writes_valid_trace_files(
        self, tmp_path, capsys
    ):
        import json

        setting, source = self._failing_exchange(tmp_path)
        trace_json = tmp_path / "run.jsonl"
        trace_viewer = tmp_path / "run.trace.json"
        code = main(
            [
                "report",
                setting,
                source,
                "--trace-json",
                str(trace_json),
                "--trace-viewer",
                str(trace_viewer),
            ]
        )
        capsys.readouterr()
        assert code == 1  # the egd failed: no solution exists
        # Line-JSON: every line parses, and the stream is complete
        # (ends with the snapshot event).
        lines = trace_json.read_text(encoding="utf-8").splitlines()
        events = [json.loads(line) for line in lines]
        assert events[-1]["type"] == "snapshot"
        # Trace-viewer: one complete JSON object, B/E balanced.
        payload = json.loads(trace_viewer.read_text(encoding="utf-8"))
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) > 0

    def test_usage_error_still_writes_valid_trace_file(
        self, tmp_path, setting_file, capsys
    ):
        import json

        trace_viewer = tmp_path / "err.trace.json"
        code = main(
            [
                "chase",
                setting_file,
                str(tmp_path / "no-such-source.txt"),
                "--trace-viewer",
                str(trace_viewer),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
        payload = json.loads(trace_viewer.read_text(encoding="utf-8"))
        assert isinstance(payload["traceEvents"], list)

    def test_provenance_flag_writes_ledger(
        self, tmp_path, setting_file, source_file, capsys
    ):
        from repro.obs.provenance import ProvenanceLedger

        path = tmp_path / "prov.json"
        code = main(
            ["solve", setting_file, source_file, "--provenance", str(path)]
        )
        capsys.readouterr()
        assert code == 0
        ledger = ProvenanceLedger.loads(path.read_text(encoding="utf-8"))
        assert len(ledger.steps) > 0
        kinds = {step.kind for step in ledger.steps}
        assert "source" in kinds and "tgd" in kinds

    def test_provenance_written_on_failing_chase(self, tmp_path, capsys):
        from repro.obs.provenance import ProvenanceLedger

        setting, source = self._failing_exchange(tmp_path)
        path = tmp_path / "prov.json"
        code = main(["report", setting, source, "--provenance", str(path)])
        capsys.readouterr()
        assert code == 1
        ledger = ProvenanceLedger.loads(path.read_text(encoding="utf-8"))
        assert {step.kind for step in ledger.steps} >= {"source", "tgd"}


SHARDED_SOURCE_TEXT = (
    "M('a','b'), N('a','b'), N('a','c'),"
    "M('p','q'), N('p','q'), N('p','r'),"
    "M('u','v'), N('u','v'), N('u','w')"
)


@pytest.fixture
def sharded_source_file(tmp_path):
    path = tmp_path / "sharded.source"
    path.write_text(SHARDED_SOURCE_TEXT, encoding="utf-8")
    return str(path)


class TestExplainPlan:
    def test_text_report_covers_every_dependency(
        self, setting_file, source_file, capsys
    ):
        code = main(["explain-plan", setting_file, source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXPLAIN ANALYZE" in out
        for name in ("st1", "st2", "t1", "t2"):
            assert f"\n{name} " in out
        assert "triggers=" in out and "est=" in out
        assert "-> step 0" in out

    def test_json_document(self, setting_file, source_file, capsys):
        import json

        code = main(["explain-plan", "--json", setting_file, source_file])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["schema"] == "repro.obs/attribution/v1"
        assert document["solved"] is True
        assert [d["name"] for d in document["dependencies"]] == [
            "st1",
            "st2",
            "t1",
            "t2",
        ]
        for dep in document["dependencies"]:
            assert dep["plans"], dep["name"]
            # Every dependency shows per-step rows and estimates.
            assert any(
                step["candidates"] or step["probes"]
                for plan in dep["plans"]
                for step in plan["steps"]
            ), dep["name"]
            for plan in dep["plans"]:
                for step in plan["steps"]:
                    assert "estimated_rows" in step
                    assert "seconds" in step

    def test_sharded_run_reports_components(
        self, setting_file, sharded_source_file, capsys
    ):
        import json

        code = main(
            [
                "explain-plan",
                "--shard",
                "on",
                "--json",
                setting_file,
                sharded_source_file,
            ]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(document["components"]["chase.shard"]) == 3
        for row in document["components"]["chase.shard"]:
            assert row["size"] == 3
            assert row["seconds"] >= 0.0

    def test_attribution_stays_off_afterwards(
        self, setting_file, source_file, capsys
    ):
        import os

        from repro.obs import attribution

        main(["explain-plan", setting_file, source_file])
        capsys.readouterr()
        assert not attribution.enabled()
        assert "REPRO_ATTRIBUTION" not in os.environ


class TestProgressFlag:
    def test_solve_progress_heartbeat(self, setting_file, source_file, capsys):
        import json

        from repro.obs import attribution

        code = main(["solve", setting_file, source_file, "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        beats = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.startswith("{")
        ]
        assert beats
        assert all(record["type"] == "heartbeat" for record in beats)
        assert beats[0]["round"] == 0
        assert beats[-1]["atoms"] > 0
        # The CLI uninstalls its heartbeat in the finally block.
        assert attribution.heartbeat() is None


class TestStatsTop:
    def _metrics_log(self, tmp_path, setting_file, source_file, capsys):
        path = tmp_path / "metrics.jsonl"
        main(
            [
                "solve",
                setting_file,
                source_file,
                "--metrics-log",
                str(path),
            ]
        )
        capsys.readouterr()
        return str(path)

    def test_top_truncates_and_ranks(
        self, tmp_path, setting_file, source_file, capsys
    ):
        log = self._metrics_log(tmp_path, setting_file, source_file, capsys)
        code = main(["stats", log, "--top", "2"])
        out = capsys.readouterr().out
        assert code == 0
        span_lines = [
            line
            for line in out.splitlines()
            if line.startswith("solve")
        ]
        # Only the two most expensive spans survive, costliest first.
        assert len(span_lines) == 2
        assert span_lines[0].startswith("solve ")
        assert "more spans" in out
        assert "more counters" in out

    def test_without_top_all_rows_render(
        self, tmp_path, setting_file, source_file, capsys
    ):
        log = self._metrics_log(tmp_path, setting_file, source_file, capsys)
        code = main(["stats", log])
        out = capsys.readouterr().out
        assert code == 0
        assert "more spans" not in out
        assert "chase.tgd_firings" in out


class TestShardedTraceViewer:
    def test_worker_lanes_render_in_sharded_trace(
        self, tmp_path, setting_file, sharded_source_file, capsys
    ):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "solve",
                setting_file,
                sharded_source_file,
                "--shard",
                "on",
                "--workers",
                "2",
                "--trace-viewer",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        lane_names = {
            event["args"]["name"]
            for event in events
            if event.get("name") == "thread_name"
        }
        assert "main" in lane_names
        workers = {name for name in lane_names if name.startswith("worker-")}
        assert workers, f"no worker lanes in {sorted(lane_names)}"
        # Worker lanes carry real span events (the shard chases).
        worker_tids = {
            event["tid"]
            for event in events
            if event.get("name") == "thread_name"
            and event["args"]["name"].startswith("worker-")
        }
        assert any(
            event.get("tid") in worker_tids and event.get("ph") in ("B", "E")
            for event in events
        )
