"""Shared fixtures: the paper's settings and instances."""

import pytest

from repro.generators.settings_library import (
    egd_only_setting,
    example_2_1_setting,
    example_2_1_solutions,
    example_2_1_source,
    example_5_3_setting,
    example_5_3_source,
    full_tgd_setting,
)


@pytest.fixture
def setting_2_1():
    return example_2_1_setting()


@pytest.fixture
def source_2_1():
    return example_2_1_source()


@pytest.fixture
def solutions_2_1():
    return example_2_1_solutions()


@pytest.fixture
def setting_5_3():
    return example_5_3_setting()


@pytest.fixture
def source_5_3():
    return example_5_3_source(1)


@pytest.fixture
def setting_egd_only():
    return egd_only_setting()


@pytest.fixture
def setting_full_tgd():
    return full_tgd_setting()
