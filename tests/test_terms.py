"""Unit tests for constants, nulls, and variables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Const, Null, NullFactory, Variable, as_value, const, null, var
from repro.core.terms import constants, variables


class TestConst:
    def test_equality_by_name(self):
        assert Const("a") == Const("a")
        assert Const("a") != Const("b")

    def test_accepts_ints(self):
        assert Const(3) == Const("3")

    def test_is_constant_not_null(self):
        assert Const("a").is_constant
        assert not Const("a").is_null

    def test_hashable(self):
        assert len({Const("a"), Const("a"), Const("b")}) == 2

    def test_ordering_among_constants(self):
        assert Const("a") < Const("b")
        assert not Const("b") < Const("a")

    def test_str(self):
        assert str(Const("a")) == "a"

    def test_not_equal_to_null(self):
        assert Const("1") != Null(1)

    def test_not_equal_to_same_named_variable(self):
        assert Const("x") != Variable("x")


class TestNull:
    def test_equality_by_ident(self):
        assert Null(0) == Null(0)
        assert Null(0) != Null(1)

    def test_is_null(self):
        assert Null(0).is_null
        assert not Null(0).is_constant

    def test_ordering_by_ident(self):
        assert Null(1) < Null(2)

    def test_constants_sort_below_nulls(self):
        # Footnote 4's merge rule relies on a total order over Dom.
        assert Const("zzz") < Null(0)
        assert not Null(0) < Const("zzz")

    def test_le(self):
        assert Null(1) <= Null(1)
        assert Null(1) <= Null(2)

    def test_str_uses_bottom_symbol(self):
        assert str(Null(3)) == "⊥3"


class TestNullFactory:
    def test_fresh_are_increasing(self):
        factory = NullFactory()
        first, second = factory.fresh(), factory.fresh()
        assert first.ident < second.ident

    def test_fresh_tuple_distinct(self):
        factory = NullFactory()
        batch = factory.fresh_tuple(5)
        assert len(set(batch)) == 5

    def test_above_skips_existing(self):
        factory = NullFactory.above([Null(7), Const("a"), Null(2)])
        assert factory.fresh() == Null(8)

    def test_above_empty(self):
        factory = NullFactory.above([])
        assert factory.fresh() == Null(0)

    def test_start(self):
        assert NullFactory(start=10).fresh() == Null(10)


class TestHelpers:
    def test_as_value_coerces_strings(self):
        assert as_value("a") == Const("a")

    def test_as_value_coerces_ints(self):
        assert as_value(7) == Const("7")

    def test_as_value_passes_through(self):
        assert as_value(Null(1)) == Null(1)

    def test_as_value_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_value(3.14)

    def test_variables_helper(self):
        x, y = variables("x y")
        assert x == var("x") and y == var("y")

    def test_constants_helper(self):
        a, b = constants("a b")
        assert a == const("a") and b == const("b")

    def test_null_helper(self):
        assert null(4) == Null(4)


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
def test_null_order_is_total(i, j):
    left, right = Null(i), Null(j)
    assert (left < right) or (right < left) or (left == right)


@given(st.text(min_size=1, max_size=10))
def test_const_roundtrip(name):
    assert Const(name).name == name
    assert Const(name) == Const(name)
