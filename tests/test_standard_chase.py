"""Tests for the standard chase."""

import pytest

from repro.chase import ChaseStatus, chase_to_solution, satisfies_all, standard_chase, violations
from repro.core import ChaseDivergence, Const, Instance, Schema, atom, RelationSymbol
from repro.dependencies import parse_dependencies, parse_dependency
from repro.logic import parse_instance


class TestBasicChase:
    def test_single_tgd(self):
        deps = parse_dependencies(["E(x, y) -> F(y, x)"])
        outcome = standard_chase(parse_instance("E('a','b')"), deps)
        assert outcome.successful
        assert atom(RelationSymbol("F", 2), "b", "a") in outcome.instance

    def test_existential_creates_null(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        outcome = standard_chase(parse_instance("E('a','b')"), deps)
        result = outcome.require_success()
        assert len(result.nulls()) == 1

    def test_satisfied_conclusion_does_not_fire(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(x, z)"])
        outcome = standard_chase(parse_instance("E('a','b'), F('a','w')"), deps)
        assert outcome.steps == 0

    def test_result_satisfies_dependencies(self, setting_2_1, source_2_1):
        deps = list(setting_2_1.all_dependencies)
        outcome = standard_chase(source_2_1, deps)
        assert outcome.successful
        assert satisfies_all(outcome.instance, deps)

    def test_input_not_mutated(self):
        deps = parse_dependencies(["E(x, y) -> F(y, x)"])
        source = parse_instance("E('a','b')")
        standard_chase(source, deps)
        assert len(source) == 1

    def test_cascading_tgds(self):
        deps = parse_dependencies(
            [
                "R0(x, y) -> exists z . R1(y, z)",
                "R1(x, y) -> exists z . R2(y, z)",
            ]
        )
        outcome = standard_chase(parse_instance("R0('a','b')"), deps)
        result = outcome.require_success()
        assert result.count_of("R1") == 1 and result.count_of("R2") == 1


class TestEgdHandling:
    def test_merge_nulls(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "N(x, y) -> exists z . F(x, z)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        outcome = standard_chase(parse_instance("E('a','b'), N('a','c')"), deps)
        result = outcome.require_success()
        assert result.count_of("F") == 1

    def test_merge_null_with_constant(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        outcome = standard_chase(parse_instance("E('a','b'), G('a','c')"), deps)
        result = outcome.require_success()
        assert result.atoms_of("F") == frozenset(
            {atom(RelationSymbol("F", 2), "a", "c")}
        )

    def test_constant_clash_fails(self):
        deps = parse_dependencies(["F(x, y) & F(x, z) -> y = z"])
        outcome = standard_chase(parse_instance("F('a','b'), F('a','c')"), deps)
        assert outcome.failed

    def test_chase_to_solution_none_on_failure(self):
        deps = parse_dependencies(["F(x, y) & F(x, z) -> y = z"])
        assert chase_to_solution(parse_instance("F('a','b'), F('a','c')"), deps) is None


class TestDivergence:
    def test_non_terminating_setting_diverges(self):
        deps = parse_dependencies(["E(x, y) -> exists z . E(y, z)"])
        outcome = standard_chase(
            parse_instance("E('a','b')"), deps, max_steps=50
        )
        assert outcome.diverged

    def test_chase_to_solution_raises_on_divergence(self):
        deps = parse_dependencies(["E(x, y) -> exists z . E(y, z)"])
        with pytest.raises(ChaseDivergence):
            chase_to_solution(parse_instance("E('a','b')"), deps, max_steps=50)


class TestTrace:
    def test_trace_records_steps(self):
        deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
        outcome = standard_chase(parse_instance("E('a','b')"), deps, trace=True)
        assert len(outcome.trace) == outcome.steps == 1
        step = outcome.trace[0]
        assert step.kind == "tgd"
        assert len(step.added) == 1

    def test_trace_records_merges(self):
        deps = parse_dependencies(
            [
                "E(x, y) -> exists z . F(x, z)",
                "G(x, y) -> F(x, y)",
                "F(x, y) & F(x, z) -> y = z",
            ]
        )
        outcome = standard_chase(
            parse_instance("E('a','b'), G('a','c')"), deps, trace=True
        )
        kinds = [step.kind for step in outcome.trace]
        assert "egd" in kinds


class TestViolationsHelper:
    def test_reports_violated_tgd(self):
        deps = parse_dependencies(["E(x, y) -> F(y, x)"])
        problems = violations(parse_instance("E('a','b')"), deps)
        assert len(problems) == 1 and "tgd" in problems[0]

    def test_reports_violated_egd(self):
        deps = parse_dependencies(["F(x, y) & F(x, z) -> y = z"])
        problems = violations(parse_instance("F('a','b'), F('a','c')"), deps)
        assert len(problems) == 1 and "egd" in problems[0]

    def test_clean_instance_has_no_violations(self):
        deps = parse_dependencies(["E(x, y) -> F(y, x)"])
        assert violations(parse_instance("E('a','b'), F('b','a')"), deps) == []
