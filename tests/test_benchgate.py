"""Tests for the benchmark regression gate (``repro bench-compare``)."""

import json

import pytest

from repro.benchgate import (
    BENCH_SCHEMA,
    BenchDelta,
    compare,
    load_bench,
    main,
    medians,
    run_gate,
)
from repro.core import ReproError


def bench_record(**entries):
    record = {"schema": BENCH_SCHEMA}
    record.update(entries)
    return record


def write_bench(path, **entries):
    path.write_text(json.dumps(bench_record(**entries)), encoding="utf-8")
    return str(path)


class TestMedians:
    def test_only_median_keys_participate(self):
        record = bench_record(**{
            "test_a.median_seconds": 0.5,
            "test_a.rounds": 12,
            "counter.chase.tgd_firings": 999,
        })
        assert medians(record) == {"test_a": 0.5}

    def test_compare_pairs_common_names_sorted(self):
        baseline = bench_record(**{
            "b.median_seconds": 1.0,
            "a.median_seconds": 1.0,
            "gone.median_seconds": 1.0,
        })
        fresh = bench_record(**{
            "a.median_seconds": 1.1,
            "b.median_seconds": 0.9,
            "new.median_seconds": 5.0,
        })
        deltas = compare(baseline, fresh, 0.25)
        assert [d.name for d in deltas] == ["a", "b"]

    def test_verdicts(self):
        assert BenchDelta("x", 1.0, 1.2, 0.25).verdict == "ok"
        assert BenchDelta("x", 1.0, 1.3, 0.25).verdict == "REGRESSED"
        assert BenchDelta("x", 1.0, 0.5, 0.25).verdict == "improved"
        assert BenchDelta("x", 0.0, 0.5, 0.25).ratio == 1.0


class TestGate:
    def test_within_tolerance_passes(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", **{"a.median_seconds": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", **{"a.median_seconds": 1.2})
        assert run_gate(base, fresh, tolerance=0.25) == 0
        out = capsys.readouterr().out
        assert "passed" in out

    def test_regression_fails_nonzero(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", **{"a.median_seconds": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", **{"a.median_seconds": 1.5})
        assert run_gate(base, fresh, tolerance=0.25) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "FAILED" in out

    def test_empty_intersection_fails(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", **{"a.median_seconds": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", **{"b.median_seconds": 1.0})
        assert run_gate(base, fresh) == 1
        assert "nothing to compare" in capsys.readouterr().out

    def test_coverage_warnings(self, tmp_path, capsys):
        base = write_bench(
            tmp_path / "base.json",
            **{"a.median_seconds": 1.0, "gone.median_seconds": 1.0},
        )
        fresh = write_bench(
            tmp_path / "fresh.json",
            **{"a.median_seconds": 1.0, "new.median_seconds": 1.0},
        )
        assert run_gate(base, fresh) == 0
        out = capsys.readouterr().out
        assert "warning: gone" in out
        assert "note: new" in out

    def test_unversioned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a.median_seconds": 1.0}', encoding="utf-8")
        with pytest.raises(ReproError):
            load_bench(str(path))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(ReproError):
            load_bench(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            load_bench(str(tmp_path / "absent.json"))

    def test_committed_baseline_is_gateable(self, capsys):
        # The committed chase baseline compared against itself is the
        # degenerate no-regression case; this also pins the on-disk
        # schema the gate expects.
        import pathlib

        baseline = str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_chase.json"
        )
        assert run_gate(baseline, baseline, tolerance=0.03) == 0
        assert "passed" in capsys.readouterr().out


class TestStandaloneMain:
    def test_main_ok(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", **{"a.median_seconds": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", **{"a.median_seconds": 1.0})
        assert main([base, fresh]) == 0
        capsys.readouterr()

    def test_main_tolerance_flag(self, tmp_path, capsys):
        base = write_bench(tmp_path / "base.json", **{"a.median_seconds": 1.0})
        fresh = write_bench(tmp_path / "fresh.json", **{"a.median_seconds": 1.04})
        assert main([base, fresh, "--tolerance", "0.03"]) == 1
        capsys.readouterr()

    def test_main_reports_data_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json"), str(tmp_path / "x")]) == 2
        assert "error:" in capsys.readouterr().out
