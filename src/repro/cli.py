"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``solve``      chase a source instance and print the canonical universal
               solution and the core (= the minimal CWA-solution).
``chase``      run a chase engine with a narrated trace.
``certain``    answer a query under one of the four CWA semantics.
``check``      classify a candidate target instance (solution /
               universal / CWA-presolution / CWA-solution).
``analyze``    report weak/rich acyclicity and restricted-class
               membership of a setting.
``report``     the full exchange report: acyclicity, chase stats,
               Gaifman blocks, core size, per-null justifications.
``explain``    paper-style I₀, I₁, ..., Iₘ chase narration, with
               optional DAG-aware justification of one fact (--why).
``explain-plan``  EXPLAIN ANALYZE for the chase: run a solve with
               attributed execution on and print, per dependency, the
               compiled match plans actually used -- join order, probe
               choices, per-step candidate/row counts, self-time, and
               estimated-vs-actual misestimate flags (``--json`` emits
               the repro.obs/attribution/v1 document).
``bench-compare``  diff fresh benchmark medians against a committed
               BENCH_*.json baseline; exits nonzero on regression.
``delta-bench``  race incremental re-solves (``repro.incremental``)
               against full re-solves over a random source-edit stream,
               asserting core fingerprint parity on every edit.

``solve`` can re-solve *incrementally*: ``--provenance LEDGER`` on a
first run persists the derivation ledger, and a later ``solve
--incremental-from LEDGER --delta FILE`` resumes from it, applies the
source delta, and maintains the solution without re-chasing.

Settings are described in a small text format, one declaration per line
(``#`` starts a comment):

    source:      M/2 N/2
    target:      E/2 F/2 G/2
    st:          M(x1,x2) -> E(x1,x2)
    st:          N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)
    target-dep:  F(y,x) -> exists z . G(x,z)
    target-dep:  F(x,y) & F(x,z) -> y = z

Instances use the library DSL: ``M('a','b'), N('a','b'), N('a','c')``.

``solve``, ``certain`` and ``report`` accept ``--cache DIR`` (reuse
chase/core/answer results across invocations, content-addressed) and
``--workers N`` (process-pool evaluation; ``REPRO_WORKERS`` sets the
default).  For ``solve`` the per-item work is the partitioned pipeline:
``--shard`` chases independent source components as shards and
``--workers``/``--core-algorithm partitioned`` minimize value
components of the canonical solution on the pool.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import uuid
from typing import List, Optional, Sequence

from . import obs
from .core.errors import ReproError
from .core.instance import Instance
from .core.schema import Schema
from .exchange.setting import DataExchangeSetting
from .logic.parser import parse_instance, parse_query


def load_setting_text(text: str) -> DataExchangeSetting:
    """Parse the setting file format described in the module docstring."""
    source_decl: Optional[str] = None
    target_decl: Optional[str] = None
    st_lines: List[str] = []
    target_dep_lines: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if ":" not in line:
            raise ReproError(
                f"malformed setting line (expected 'key: value'): {line!r}"
            )
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "source":
            source_decl = value
        elif key == "target":
            target_decl = value
        elif key == "st":
            st_lines.append(value)
        elif key in ("target-dep", "tdep", "t"):
            target_dep_lines.append(value)
        else:
            raise ReproError(f"unknown setting key {key!r} in {line!r}")
    if source_decl is None or target_decl is None:
        raise ReproError("a setting needs 'source:' and 'target:' lines")
    return DataExchangeSetting.from_strings(
        _parse_schema(source_decl),
        _parse_schema(target_decl),
        st_lines,
        target_dep_lines,
    )


def _parse_schema(declaration: str) -> Schema:
    """Parse ``"M/2 N/2"`` into a schema."""
    arities = {}
    for token in declaration.split():
        name, _, arity = token.partition("/")
        if not arity.isdigit():
            raise ReproError(
                f"bad relation declaration {token!r} (expected Name/arity)"
            )
        arities[name] = int(arity)
    return Schema.from_mapping(arities)


def load_setting(path: str) -> DataExchangeSetting:
    with open(path, encoding="utf-8") as handle:
        return load_setting_text(handle.read())


def load_instance(path: str, setting: Optional[DataExchangeSetting] = None) -> Instance:
    """Load an instance from a DSL file or a CSV directory."""
    import os

    schema = setting.joint_schema if setting is not None else None
    if os.path.isdir(path):
        from .io import load_instance as load_csv_directory

        return load_csv_directory(path, schema)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Strip comment lines so instance files can be annotated.
    cleaned = "\n".join(
        line for line in text.splitlines() if not line.strip().startswith("#")
    )
    return parse_instance(cleaned, schema)


def _print_instance(instance: Instance, label: str) -> None:
    print(f"{label} ({len(instance)} atoms):")
    print(instance.pretty())


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by solve / chase / certain / report."""
    subparser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-phase wall-time and counter table to stderr",
    )
    subparser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the telemetry event stream as line-JSON to PATH",
    )
    subparser.add_argument(
        "--trace-viewer",
        metavar="PATH",
        default=None,
        help=(
            "write a Chrome trace-event timeline to PATH (load it in "
            "https://ui.perfetto.dev or chrome://tracing)"
        ),
    )
    subparser.add_argument(
        "--provenance",
        metavar="PATH",
        default=None,
        help=(
            "record a derivation provenance ledger during the run and "
            "write it to PATH as repro.obs/prov/v1 JSON"
        ),
    )
    subparser.add_argument(
        "--metrics-log",
        metavar="PATH",
        default=None,
        help=(
            "append one repro.obs/log/v1 JSONL record (status, wall "
            "seconds, full telemetry snapshot) to PATH; $REPRO_METRICS "
            "sets the default path"
        ),
    )
    subparser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "emit a one-line JSON heartbeat per chase round to stderr "
            "(round, instance size, null-creation rate, divergence "
            "flag); $REPRO_PROGRESS selects another target, "
            "$REPRO_PROGRESS_INTERVAL rate-limits in seconds"
        ),
    )


def _add_engine_flags(
    subparser: argparse.ArgumentParser, *, workers: bool = True
) -> None:
    """``repro.engine`` flags: result cache and process-pool width."""
    subparser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "reuse chase/core/answer results from a content-addressed "
            "cache rooted at DIR (created on first use)"
        ),
    )
    if workers:
        subparser.add_argument(
            "--workers",
            metavar="N",
            type=int,
            default=None,
            help=(
                "evaluate valuations/solutions across N worker processes "
                "(default: $REPRO_WORKERS, else 1 = serial)"
            ),
        )


def _engine_from_args(args: argparse.Namespace):
    """(cache, executor) per the engine flags; either may be None.

    The executor is only instantiated when it would actually go
    parallel, so serial invocations never pay for pool machinery.
    """
    cache = None
    executor = None
    if getattr(args, "cache", None):
        from .engine import ResultCache

        cache = ResultCache(args.cache)
    from .engine import Executor, default_workers

    workers = getattr(args, "workers", None)
    if workers is None:
        workers = default_workers()
    if workers > 1:
        executor = Executor(workers=workers)
    return cache, executor


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def command_solve(args: argparse.Namespace) -> int:
    from .exchange.solve import solve

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    cache, executor = _engine_from_args(args)
    try:
        if args.incremental_from:
            result = _solve_incremental(args, setting, source, cache)
        else:
            result = solve(
                setting,
                source,
                max_steps=args.max_steps,
                engine=args.engine,
                core_algorithm=args.core_algorithm,
                cache=cache,
                executor=executor,
                shard=args.shard,
            )
    finally:
        if executor is not None:
            executor.close()
    if not result.cwa_solution_exists:
        print("no solution exists (the chase failed on an egd)")
        return 1
    _print_instance(result.canonical_solution, "canonical universal solution")
    print()
    _print_instance(result.core_solution, "core (minimal CWA-solution)")
    print(f"\nchase steps: {result.chase_steps}")
    if args.fingerprint:
        from .engine.fingerprint import fingerprint_instance

        print(
            "core fingerprint: "
            f"{fingerprint_instance(result.core_solution, canonical=True)}"
        )
    return 0


def _solve_incremental(
    args: argparse.Namespace, setting: DataExchangeSetting, source: Instance, cache
):
    """The ``solve --incremental-from`` path: resume a ledger, apply a delta.

    ``source`` is the instance the persisted ledger describes; ``--delta``
    edits it.  When ``--provenance`` is recording, the persisted ledger is
    ingested into the outer recording ledger, so the file written at exit
    holds the *updated* derivation DAG (ready for the next increment).
    """
    from .incremental import DeltaSession, SourceDelta
    from .obs.provenance import active_ledger

    with open(args.incremental_from, encoding="utf-8") as handle:
        persisted = handle.read()
    session = DeltaSession.from_ledger(
        setting,
        source,
        persisted,
        max_steps=args.max_steps,
        cache=cache,
        ledger=active_ledger(),
    )
    if args.delta:
        with open(args.delta, encoding="utf-8") as handle:
            delta = SourceDelta.parse(handle.read(), setting.source_schema)
        session.apply(delta)
    return session.result


def command_delta_bench(args: argparse.Namespace) -> int:
    """Race incremental applies against full re-solves over an edit stream.

    Each edit deletes ``--edit-fraction`` of the current source at random
    and inserts the same number of fresh atoms (same relations, fresh
    constants).  Every incremental result is checked for fp/v1 core
    fingerprint parity against a from-scratch solve of the same edited
    source; any mismatch makes the exit status 1.
    """
    import random
    import statistics

    from .core.atoms import Atom
    from .core.terms import Const
    from .engine.fingerprint import fingerprint_instance
    from .exchange.solve import solve
    from .incremental import DeltaSession, SourceDelta

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    rng = random.Random(args.seed)
    session = DeltaSession(setting, source, max_steps=args.max_steps)
    edit_size = max(1, round(args.edit_fraction * len(source)))
    incremental_times: List[float] = []
    full_times: List[float] = []
    mismatches = 0
    fresh = 0
    print(f"{'edit':>4}  {'incremental_s':>13}  {'full_s':>10}  "
          f"{'speedup':>8}  parity")
    for index in range(args.edits):
        atoms = sorted(session.source)
        deletions = rng.sample(atoms, min(edit_size, len(atoms)))
        insertions = []
        for _ in range(edit_size):
            template = rng.choice(atoms)
            fresh += 1
            insertions.append(
                Atom(
                    template.relation,
                    tuple(
                        Const(f"delta_{fresh}_{position}")
                        for position in range(template.relation.arity)
                    ),
                )
            )
        delta = SourceDelta(
            insertions=Instance(insertions), deletions=Instance(deletions)
        )
        started = time.perf_counter()
        result = session.apply(delta)
        incremental_seconds = time.perf_counter() - started
        started = time.perf_counter()
        full = solve(
            setting,
            session.source,
            engine="seminaive",
            max_steps=args.max_steps,
        )
        full_seconds = time.perf_counter() - started
        incremental_times.append(incremental_seconds)
        full_times.append(full_seconds)
        fp_incremental = (
            fingerprint_instance(result.core_solution, canonical=True)
            if result.core_solution is not None
            else "failed"
        )
        fp_full = (
            fingerprint_instance(full.core_solution, canonical=True)
            if full.core_solution is not None
            else "failed"
        )
        parity = fp_incremental == fp_full
        if not parity:
            mismatches += 1
        ratio = full_seconds / incremental_seconds if incremental_seconds else 0
        print(
            f"{index:>4}  {incremental_seconds:>13.6f}  {full_seconds:>10.6f}  "
            f"{ratio:>7.1f}x  {'ok' if parity else 'MISMATCH'}"
        )
    median_incremental = statistics.median(incremental_times)
    median_full = statistics.median(full_times)
    speedup = median_full / median_incremental if median_incremental else 0.0
    print(
        f"\nmedian incremental: {median_incremental:.6f} s, "
        f"median full: {median_full:.6f} s, speedup: {speedup:.1f}x"
    )
    if mismatches:
        print(
            f"error: {mismatches}/{args.edits} edits broke core fingerprint "
            f"parity",
            file=sys.stderr,
        )
        return 1
    return 0


def command_chase(args: argparse.Namespace) -> int:
    from .chase import narrate, standard_chase
    from .chase.seminaive import seminaive_chase

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    engine = standard_chase if args.engine == "standard" else seminaive_chase
    outcome = engine(
        source,
        list(setting.all_dependencies),
        max_steps=args.max_steps,
        trace=True,
    )
    print(narrate(source, outcome, show_instances=args.show_instances))
    return 0 if outcome.successful else 1


def command_certain(args: argparse.Namespace) -> int:
    from .answering import (
        certain_answers,
        maybe_answers,
        persistent_maybe_answers,
        potential_certain_answers,
    )

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    query = parse_query(args.query, setting.target_schema)
    semantics = {
        "certain": certain_answers,
        "potential-certain": potential_certain_answers,
        "persistent-maybe": persistent_maybe_answers,
        "maybe": maybe_answers,
    }[args.semantics]
    cache, executor = _engine_from_args(args)
    try:
        if cache is not None:
            from .answering.semantics import _cached_answers
            from .engine.fingerprint import answer_key

            key = answer_key(
                setting, source, query, args.semantics.replace("-", "_")
            )
            answers = _cached_answers(
                cache,
                key,
                lambda: semantics(setting, source, query, executor=executor),
            )
        else:
            answers = semantics(setting, source, query, executor=executor)
    finally:
        if executor is not None:
            executor.close()
    if query.arity == 0:
        print("true" if answers else "false")
        return 0
    for answer in sorted(
        tuple(str(value) for value in row) for row in answers
    ):
        print("\t".join(answer))
    print(f"-- {len(answers)} answer(s) under {args.semantics}", file=sys.stderr)
    return 0


def command_check(args: argparse.Namespace) -> int:
    from .cwa import is_cwa_presolution, is_cwa_solution

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    target = load_instance(args.target, setting)
    verdicts = {
        "solution": setting.is_solution(source, target),
        "universal solution": setting.is_universal_solution(source, target),
        "CWA-presolution": is_cwa_presolution(setting, source, target),
        "CWA-solution": is_cwa_solution(setting, source, target),
    }
    for name, verdict in verdicts.items():
        print(f"{name:<18}: {'yes' if verdict else 'no'}")
    return 0 if verdicts["CWA-solution"] else 1


def command_report(args: argparse.Namespace) -> int:
    from .exchange.report import render, report

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    cache, executor = _engine_from_args(args)
    try:
        exchange_report = report(
            setting,
            source,
            max_steps=args.max_steps,
            cache=cache,
            executor=executor,
        )
    finally:
        if executor is not None:
            executor.close()
    print(render(exchange_report))
    return 0 if exchange_report.status == "solved" else 1


def _parse_fact(text: str, setting: DataExchangeSetting) -> "Atom":
    """Parse one atom (``"G(#1, #2)"``) for --why lookups."""
    parsed = parse_instance(text, setting.joint_schema)
    atoms = list(parsed)
    if len(atoms) != 1:
        raise ReproError(
            f"--why expects exactly one atom, got {len(atoms)} in {text!r}"
        )
    return atoms[0]


def command_explain(args: argparse.Namespace) -> int:
    from .chase import narrate, narrate_why, standard_chase
    from .chase.seminaive import seminaive_chase
    from .obs.provenance import active_ledger, recording

    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    engine = standard_chase if args.engine == "standard" else seminaive_chase
    # Reuse an outer ledger (--provenance) when one is already recording;
    # otherwise record locally so --why can walk the derivation DAG.
    recorder = None
    ledger = active_ledger()
    if ledger is None:
        recorder = recording()
        ledger = recorder.__enter__()
    try:
        outcome = engine(
            source,
            list(setting.all_dependencies),
            max_steps=args.max_steps,
            trace=True,
        )
    finally:
        if recorder is not None:
            recorder.__exit__(None, None, None)
    print(narrate(source, outcome, show_instances=args.show_instances))
    if args.why:
        fact = _parse_fact(args.why, setting)
        print()
        print(narrate_why(ledger, fact))
    return 0 if outcome.successful else 1


def _dependency_plan_roles(dependency):
    """The ``(role, plan-cache key)`` list a dependency evaluates with.

    These mirror the exact ``match``/``exists_match`` call sites: a tgd
    matches its premise with no pre-bound keys and checks its conclusion
    with the frontier pre-bound; an egd matches its premise only.  FO
    premises (``premise_atoms is None``) have no compiled plan.
    """
    roles = []
    if dependency.is_tgd:
        if dependency.premise_atoms is not None:
            roles.append(
                ("premise", tuple(dependency.premise_atoms), (), frozenset())
            )
        roles.append(
            (
                "conclusion-check",
                tuple(dependency.conclusion_atoms),
                (),
                frozenset(dependency.frontier),
            )
        )
    else:
        roles.append(
            ("premise", tuple(dependency.premise_atoms), (), frozenset())
        )
    return roles


def _plan_steps_payload(meta, counts) -> list:
    """Per-step rows: static metadata + runtime counters + estimates."""
    attribution = obs.attribution
    steps = []
    for index, (step, row) in enumerate(zip(meta, counts)):
        estimate = attribution.step_estimate(step, row[1])
        misestimate = attribution.step_misestimate(step, row)
        steps.append(
            {
                "index": index,
                "relation": step.get("relation"),
                "kind": "probe" if step.get("ground") else "scan",
                "checks": step.get("checks", 0),
                "probes": row[0],
                "candidates": row[1],
                "rows": row[2],
                "seconds": row[3],
                "estimated_rows": round(estimate, 3),
                "misestimate": round(misestimate, 2)
                if misestimate is not None
                else None,
            }
        )
    return steps


def _explain_plan_document(
    setting: DataExchangeSetting, *, engine: str
) -> dict:
    """The repro.obs/attribution/v1 EXPLAIN ANALYZE document.

    Joins the merged attribution tables (plan stats keyed by content
    digest, per-dependency chase attribution, component cost rows)
    against the setting's dependencies by recompiling each dependency's
    plan keys -- ``plan_for`` is content-addressed, so the recompiled
    identity names the same record the attributed run filled in.
    """
    from .logic import plans

    attribution = obs.attribution
    payload = attribution.export() or {}
    plan_table = payload.get("plans", {})
    dep_table = payload.get("dependencies", {})
    matched = set()
    dependencies = []
    for dependency in setting.all_dependencies:
        name = attribution.dep_label(dependency)
        row = dep_table.get(name, {})
        plans_out = []
        for role, patterns, inequalities, keys in _dependency_plan_roles(
            dependency
        ):
            plan = plans.plan_for(patterns, inequalities, keys)
            matched.add(plan.identity)
            record = plan_table.get(plan.identity)
            meta = record["steps"] if record else plan._step_meta()
            counts = (
                record["counts"]
                if record
                else [[0, 0, 0, 0.0] for _ in meta]
            )
            plans_out.append(
                {
                    "role": role,
                    "identity": plan.identity,
                    "label": plan.label,
                    "uses": record["uses"] if record else 0,
                    "steps": _plan_steps_payload(meta, counts),
                }
            )
        dependencies.append(
            {
                "name": name,
                "dependency": repr(dependency),
                "kind": "tgd" if dependency.is_tgd else "egd",
                "triggers": row.get("triggers", 0),
                "firings": row.get("firings", 0),
                "merges": row.get("merges", 0),
                "nulls": row.get("nulls", 0),
                "seconds": row.get("seconds", 0.0),
                "rounds": row.get("rounds", {}),
                "plans": plans_out,
            }
        )
    other_plans = [
        {
            "identity": identity,
            "label": record["label"],
            "uses": record["uses"],
            "steps": _plan_steps_payload(record["steps"], record["counts"]),
        }
        for identity, record in sorted(plan_table.items())
        if identity not in matched
    ]
    return {
        "schema": obs.attribution.ATTRIBUTION_SCHEMA,
        "engine": engine,
        "dependencies": dependencies,
        "other_plans": other_plans,
        "components": payload.get("components", {}),
    }


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def _render_plan_lines(plan: dict, lines: list, indent: str) -> None:
    lines.append(
        f"{indent}plan {plan['identity']}"
        + (f" [{plan['role']}]" if "role" in plan else "")
        + f": {plan['label']}  (uses={plan['uses']})"
    )
    for step in plan["steps"]:
        flag = (
            f"  MISESTIMATE {step['misestimate']}x"
            if step.get("misestimate") is not None
            else ""
        )
        lines.append(
            f"{indent}  -> step {step['index']} {step['kind']:<5} "
            f"{step['relation']:<12} probes={step['probes']} "
            f"cand={step['candidates']} rows={step['rows']} "
            f"est={step['estimated_rows']} time={_ms(step['seconds'])}"
            f"{flag}"
        )


def _render_explain_plan(document: dict) -> str:
    lines = [
        f"EXPLAIN ANALYZE  (engine={document['engine']}, "
        f"{len(document['dependencies'])} dependencies, "
        f"chase steps={document.get('chase_steps', '?')})"
    ]
    for dep in document["dependencies"]:
        lines.append("")
        lines.append(f"{dep['name']} ({dep['kind']}): {dep['dependency']}")
        rounds = ",".join(
            sorted(dep["rounds"], key=lambda k: (k == "overflow", int(k) if k != "overflow" else 0))
        )
        lines.append(
            f"  triggers={dep['triggers']} firings={dep['firings']} "
            f"merges={dep['merges']} nulls={dep['nulls']} "
            f"time={_ms(dep['seconds'])}"
            + (f" rounds={rounds}" if rounds else "")
        )
        for plan in dep["plans"]:
            _render_plan_lines(plan, lines, "  ")
    if document["other_plans"]:
        lines.append("")
        lines.append("other plans (seed/rest splits, queries, core search):")
        for plan in document["other_plans"]:
            _render_plan_lines(plan, lines, "  ")
    components = document.get("components", {})
    if components:
        lines.append("")
        lines.append("per-component cost profile:")
        for kind, rows in sorted(components.items()):
            total = sum(row["seconds"] for row in rows)
            lines.append(
                f"  {kind}: {len(rows)} component(s), total {_ms(total)}"
            )
            for row in rows[:8]:
                lines.append(
                    f"    size={row['size']} steps={row['steps']} "
                    f"nulls={row['nulls']} time={_ms(row['seconds'])}"
                )
            if len(rows) > 8:
                lines.append(f"    ... {len(rows) - 8} more")
    return "\n".join(lines)


def command_explain_plan(args: argparse.Namespace) -> int:
    from .exchange.solve import solve

    attribution = obs.attribution
    setting = load_setting(args.setting)
    source = load_instance(args.source, setting)
    cache, executor = _engine_from_args(args)
    attribution.reset()
    # Fork-platform pool workers receive the flag in the task payload;
    # the environment variable covers spawn platforms, whose workers
    # re-import repro with defaults before any payload arrives.
    os.environ["REPRO_ATTRIBUTION"] = "1"
    try:
        with attribution.attributing():
            result = solve(
                setting,
                source,
                max_steps=args.max_steps,
                engine=args.engine,
                core_algorithm=args.core_algorithm,
                cache=cache,
                executor=executor,
                shard=args.shard,
            )
    finally:
        os.environ.pop("REPRO_ATTRIBUTION", None)
        if executor is not None:
            executor.close()
    document = _explain_plan_document(setting, engine=args.engine)
    document["solved"] = result.cwa_solution_exists
    document["chase_steps"] = result.chase_steps
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(_render_explain_plan(document))
    return 0 if result.cwa_solution_exists else 1


def command_bench_compare(args: argparse.Namespace) -> int:
    from .benchgate import run_gate

    return run_gate(args.baseline, args.fresh, tolerance=args.tolerance)


def command_stats(args: argparse.Namespace) -> int:
    from .obs.stats import load_stats_file, render_delta, render_stats

    if len(args.files) > 2:
        raise ReproError("stats takes one file (table) or two (delta view)")
    loaded = [load_stats_file(path) for path in args.files]
    if args.json:
        import json as json_module

        merged = [snapshot for snapshot, _ in loaded]
        print(
            json_module.dumps(
                merged[0] if len(merged) == 1 else merged,
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    if len(loaded) == 1:
        snapshot, runs = loaded[0]
        print(
            render_stats(
                snapshot, runs=runs, title=args.files[0], top=args.top
            )
        )
    else:
        (baseline, _), (fresh, _) = loaded
        print(render_delta(baseline, fresh))
    return 0


def command_analyze(args: argparse.Namespace) -> int:
    setting = load_setting(args.setting)
    print(f"source schema : {' '.join(setting.source_schema.names)}")
    print(f"target schema : {' '.join(setting.target_schema.names)}")
    print(f"s-t tgds      : {len(setting.st_dependencies)}")
    print(
        f"target deps   : {len(setting.target_tgds)} tgd(s), "
        f"{len(setting.target_egds)} egd(s)"
    )
    print(f"weakly acyclic: {'yes' if setting.is_weakly_acyclic else 'no'}")
    print(f"richly acyclic: {'yes' if setting.is_richly_acyclic else 'no'}")
    print(
        "egd-only Σt   : "
        + ("yes" if setting.target_dependencies_are_egds_only else "no")
    )
    print(
        "full + egds   : "
        + ("yes" if setting.is_full_and_egd_setting else "no")
    )
    if not setting.is_weakly_acyclic:
        print(
            "note: outside the weakly acyclic class Existence-of-CWA-"
            "Solutions is undecidable in general (Theorem 6.2)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "CWA-solutions for data exchange settings with target "
            "dependencies (Hernich & Schweikardt, PODS 2007)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="chase and compute the core")
    solve.add_argument("setting", help="setting file")
    solve.add_argument("source", help="source instance file")
    solve.add_argument("--max-steps", type=int, default=200_000)
    solve.add_argument(
        "--engine", choices=("standard", "seminaive"), default="standard"
    )
    solve.add_argument(
        "--core-algorithm",
        choices=("blockwise", "folding", "partitioned"),
        default="blockwise",
    )
    solve.add_argument(
        "--shard",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "partitioned chase over the source's value components: "
            "'auto' shards when --workers > 1, 'on' always (when the "
            "static analysis allows), 'off' never"
        ),
    )
    solve.add_argument(
        "--incremental-from",
        metavar="LEDGER",
        default=None,
        help=(
            "resume from a repro.obs/prov/v1 ledger a previous "
            "solve --provenance of this source wrote, instead of "
            "chasing from scratch (--engine/--core-algorithm/--shard "
            "are ignored: the incremental path is semi-naive + "
            "blockwise)"
        ),
    )
    solve.add_argument(
        "--delta",
        metavar="FILE",
        default=None,
        help=(
            "with --incremental-from: apply a source delta before "
            "printing -- either repro.io/delta/v1 JSON or lines of "
            "\"+ M('a','b')\" / \"- N('x','y')\""
        ),
    )
    solve.add_argument(
        "--fingerprint",
        action="store_true",
        help=(
            "also print the fp/v1 canonical fingerprint of the core "
            "(identical across batch and incremental solves of the "
            "same source)"
        ),
    )
    _add_engine_flags(solve)
    _add_obs_flags(solve)
    solve.set_defaults(run=command_solve)

    dbench = commands.add_parser(
        "delta-bench",
        help=(
            "race incremental re-solves against full re-solves over a "
            "random edit stream, asserting core fingerprint parity"
        ),
    )
    dbench.add_argument("setting", help="setting file")
    dbench.add_argument("source", help="source instance file")
    dbench.add_argument(
        "--edits", type=int, default=20, help="edit stream length"
    )
    dbench.add_argument(
        "--edit-fraction",
        type=float,
        default=0.01,
        help="fraction of the source touched per edit (default 0.01)",
    )
    dbench.add_argument("--seed", type=int, default=0)
    dbench.add_argument("--max-steps", type=int, default=200_000)
    _add_obs_flags(dbench)
    dbench.set_defaults(run=command_delta_bench)

    chase = commands.add_parser("chase", help="narrated chase run")
    chase.add_argument("setting")
    chase.add_argument("source")
    chase.add_argument("--max-steps", type=int, default=200_000)
    chase.add_argument(
        "--engine", choices=("standard", "seminaive"), default="standard"
    )
    chase.add_argument("--show-instances", action="store_true")
    _add_obs_flags(chase)
    chase.set_defaults(run=command_chase)

    certain = commands.add_parser("certain", help="answer a query")
    certain.add_argument("setting")
    certain.add_argument("source")
    certain.add_argument("query", help="e.g. \"Q(x) :- E(x, y)\"")
    certain.add_argument(
        "--semantics",
        choices=("certain", "potential-certain", "persistent-maybe", "maybe"),
        default="certain",
    )
    _add_engine_flags(certain)
    _add_obs_flags(certain)
    certain.set_defaults(run=command_certain)

    check = commands.add_parser(
        "check", help="classify a candidate target instance"
    )
    check.add_argument("setting")
    check.add_argument("source")
    check.add_argument("target")
    check.set_defaults(run=command_check)

    analyze = commands.add_parser("analyze", help="inspect a setting")
    analyze.add_argument("setting")
    analyze.set_defaults(run=command_analyze)

    report_cmd = commands.add_parser(
        "report", help="full exchange report for a (setting, source) pair"
    )
    report_cmd.add_argument("setting")
    report_cmd.add_argument("source")
    report_cmd.add_argument("--max-steps", type=int, default=200_000)
    _add_engine_flags(report_cmd)
    _add_obs_flags(report_cmd)
    report_cmd.set_defaults(run=command_report)

    explain_cmd = commands.add_parser(
        "explain",
        help="paper-style I0, I1, ..., Im narration of a traced chase",
    )
    explain_cmd.add_argument("setting")
    explain_cmd.add_argument("source")
    explain_cmd.add_argument("--max-steps", type=int, default=200_000)
    explain_cmd.add_argument(
        "--engine", choices=("standard", "seminaive"), default="standard"
    )
    explain_cmd.add_argument("--show-instances", action="store_true")
    explain_cmd.add_argument(
        "--why",
        metavar="ATOM",
        default=None,
        help=(
            "also print the justification chain of one fact, e.g. "
            "--why \"G(#1, #2)\" (walks the derivation DAG to the source)"
        ),
    )
    _add_obs_flags(explain_cmd)
    explain_cmd.set_defaults(run=command_explain)

    explain_plan = commands.add_parser(
        "explain-plan",
        help=(
            "EXPLAIN ANALYZE: attributed solve with per-step match-plan "
            "stats, per-dependency chase attribution, and component "
            "cost profiles"
        ),
    )
    explain_plan.add_argument("setting")
    explain_plan.add_argument("source")
    explain_plan.add_argument("--max-steps", type=int, default=200_000)
    explain_plan.add_argument(
        "--engine", choices=("standard", "seminaive"), default="standard"
    )
    explain_plan.add_argument(
        "--core-algorithm",
        choices=("blockwise", "folding", "partitioned"),
        default="blockwise",
    )
    explain_plan.add_argument(
        "--shard",
        choices=("auto", "on", "off"),
        default="auto",
        help="as for solve; sharded runs add per-component cost rows",
    )
    explain_plan.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.obs/attribution/v1 document instead of text",
    )
    _add_engine_flags(explain_plan)
    _add_obs_flags(explain_plan)
    explain_plan.set_defaults(run=command_explain_plan)

    bench = commands.add_parser(
        "bench-compare",
        help="gate fresh benchmark medians against a committed baseline",
    )
    bench.add_argument("baseline", help="committed BENCH_*.json baseline")
    bench.add_argument("fresh", help="freshly produced BENCH_*.json")
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    bench.set_defaults(run=command_bench_compare)

    stats_cmd = commands.add_parser(
        "stats",
        help=(
            "aggregate telemetry snapshots / --metrics-log files into a "
            "table, or diff two of them"
        ),
    )
    stats_cmd.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help=(
            "one repro.obs/v1 snapshot or repro.obs/log/v1 metrics log "
            "(aggregate table), or two (baseline then fresh: delta view)"
        ),
    )
    stats_cmd.add_argument(
        "--json",
        action="store_true",
        help="print the merged snapshot(s) as JSON instead of a table",
    )
    stats_cmd.add_argument(
        "--top",
        metavar="N",
        type=int,
        default=None,
        help=(
            "sort each aggregate-table section by self-time (counters "
            "and gauges by value) and keep only the top N rows"
        ),
    )
    stats_cmd.set_defaults(run=command_stats)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    has_obs_flags = hasattr(args, "profile")
    sinks: List[obs.EventSink] = []
    previous_sink = None
    recorder = None
    metrics_path = None
    progress_installed = False
    if has_obs_flags:
        # Per-invocation metrics: zero the registry so --profile and the
        # trace flags describe exactly this command.
        obs.reset()
        if args.progress and obs.attribution.heartbeat() is None:
            # REPRO_PROGRESS may already have installed one at import
            # (possibly pointing at a file); --progress adds stderr.
            obs.attribution.enable_heartbeat("stderr")
            progress_installed = True
        metrics_path = args.metrics_log or os.environ.get("REPRO_METRICS")
        if args.trace_json:
            sinks.append(obs.JsonLinesSink(args.trace_json))
        if args.trace_viewer:
            sinks.append(obs.TraceViewerSink(args.trace_viewer))
        if sinks:
            installed = sinks[0] if len(sinks) == 1 else obs.TeeSink(*sinks)
            previous_sink = obs.install_sink(installed)
        if args.provenance:
            from .obs.provenance import recording

            recorder = recording()
            recorder.__enter__()
    started = time.perf_counter()
    status = 2
    try:
        status = args.run(args)
        return status
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        # Every telemetry artifact is finalized here, on success *and*
        # on error paths: a failing chase still leaves valid, parseable
        # trace files and a complete provenance ledger behind.
        if progress_installed:
            obs.attribution.disable_heartbeat()
        if has_obs_flags and args.profile:
            print("=== profile (per-phase wall times) ===", file=sys.stderr)
            print(obs.render_profile(), file=sys.stderr)
        if metrics_path:
            # One structured run record per invocation, status included,
            # so failing runs are logged too.
            try:
                with obs.MetricsLog(metrics_path) as metrics_log:
                    metrics_log.log_run(
                        command=args.command,
                        status=status,
                        seconds=time.perf_counter() - started,
                        snapshot=obs.snapshot(),
                        run_id=uuid.uuid4().hex[:16],
                        argv=list(argv) if argv is not None else sys.argv[1:],
                    )
            except OSError as error:
                print(
                    f"warning: cannot append metrics log: {error}",
                    file=sys.stderr,
                )
        if sinks:
            obs.get_telemetry().emit_snapshot()
            obs.install_sink(previous_sink)
            for sink in sinks:
                try:
                    sink.close()
                except OSError as error:
                    print(
                        f"warning: failed to close trace sink: {error}",
                        file=sys.stderr,
                    )
        if recorder is not None:
            ledger = recorder.ledger
            recorder.__exit__(None, None, None)
            try:
                with open(args.provenance, "w", encoding="utf-8") as handle:
                    handle.write(ledger.dumps(indent=2))
                    handle.write("\n")
            except OSError as error:
                print(
                    f"warning: cannot write provenance ledger: {error}",
                    file=sys.stderr,
                )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
