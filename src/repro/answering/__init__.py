"""Query answering: valuations, Rep_D, and the four CWA semantics."""

from .datalog_answers import datalog_certain_answers
from .decision import (
    AnswerLanguage,
    certain_language,
    maybe_language,
    persistent_maybe_language,
    potential_certain_language,
)
from .naive import owa_certain_answers, u_certain_answers, ucq_certain_answers
from .semantics import (
    NoCwaSolutionError,
    all_four_semantics,
    answers_over_space,
    certain_answers,
    maybe_answers,
    persistent_maybe_answers,
    potential_certain_answers,
)
from .valuations import (
    certain_holds_on,
    certain_on,
    maybe_holds_on,
    maybe_on,
    rep,
    valuation_pool,
    valuations,
)

__all__ = [
    "AnswerLanguage",
    "NoCwaSolutionError",
    "certain_language",
    "datalog_certain_answers",
    "maybe_language",
    "persistent_maybe_language",
    "potential_certain_language",
    "all_four_semantics",
    "answers_over_space",
    "certain_answers",
    "certain_holds_on",
    "certain_on",
    "maybe_answers",
    "maybe_holds_on",
    "maybe_on",
    "owa_certain_answers",
    "persistent_maybe_answers",
    "potential_certain_answers",
    "rep",
    "u_certain_answers",
    "ucq_certain_answers",
    "valuation_pool",
    "valuations",
]
