"""Certain answers of datalog queries (the full reach of Theorem 7.6).

Theorem 7.6 covers "potentially infinite disjunctions of conjunctive
queries ... which in particular comprises the class of datalog queries".
Datalog queries are monotone and preserved under homomorphisms, so
Lemma 7.7's argument goes through unchanged:

    certain□(P, S) = certain◇(P, S) = P(T)↓

for every CWA-solution T.  The procedure below chases, takes the core
(a CWA-solution by Theorem 5.1), runs the datalog fixpoint naively over
nulls, and keeps the null-free goal tuples -- all in polynomial time.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..core.instance import Instance
from ..core.terms import Value
from ..cwa.solution import core_solution
from ..exchange.setting import DataExchangeSetting
from ..logic.datalog import DatalogProgram
from .semantics import NoCwaSolutionError


def datalog_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    program: DatalogProgram,
    *,
    solution: Optional[Instance] = None,
) -> FrozenSet[Tuple[Value, ...]]:
    """``certain□(P, S) = certain◇(P, S)`` for a datalog program P.

    The program's EDB predicates must be target relations of the
    setting; IDB predicates are free names.  Pass ``solution`` to reuse
    an already-computed CWA-solution.
    """
    target = solution
    if target is None:
        target = core_solution(setting, source)
    if target is None:
        raise NoCwaSolutionError(
            "no CWA-solution exists for this source instance"
        )
    return program.certain_part(target)
