"""The four CWA query answering semantics (Section 7.1).

For a data exchange setting D, a source instance S and a query Q over
the target schema, with ``S_CWA`` the set of CWA-solutions:

* **certain answers**            ``certain□(Q,S) = ⋂_{T ∈ S_CWA} □Q(T)``
* **potential certain answers**  ``certain◇(Q,S) = ⋃_{T ∈ S_CWA} □Q(T)``
* **persistent maybe answers**   ``maybe□(Q,S)  = ⋂_{T ∈ S_CWA} ◇Q(T)``
* **maybe answers**              ``maybe◇(Q,S)  = ⋃_{T ∈ S_CWA} ◇Q(T)``

Theorem 7.1 reduces the □-intersections to the minimal CWA-solution
(the core) and, for the restricted classes of Proposition 5.4, the
◇-unions to CanSol.  This module implements both the direct definitions
(over an explicit or enumerated solution space) and the fast paths, so
tests can cross-validate them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.errors import ReproError
from ..core.instance import Instance
from ..cwa.enumeration import enumerate_cwa_solutions
from ..cwa.solution import cansol, core_solution
from ..exchange.setting import DataExchangeSetting
from ..logic.queries import AnswerSet, Query
from ..obs import span
from .valuations import certain_on, maybe_on


class NoCwaSolutionError(ReproError):
    """Query answering was requested but no CWA-solution exists."""


def _solution_space(
    setting: DataExchangeSetting,
    source: Instance,
    solutions: Optional[Sequence[Instance]],
) -> List[Instance]:
    if solutions is not None:
        found = list(solutions)
    else:
        found = enumerate_cwa_solutions(setting, source)
    if not found:
        raise NoCwaSolutionError(
            "no CWA-solution exists for this source instance"
        )
    return found


def certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
) -> AnswerSet:
    """``certain□(Q, S)``, via Theorem 7.1: ``□Q(Core_D(S))``."""
    with span("answering.certain"):
        minimal = core_solution(setting, source)
        if minimal is None:
            raise NoCwaSolutionError(
                "no CWA-solution exists for this source instance"
            )
        return certain_on(query, minimal, setting.target_dependencies)


def persistent_maybe_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
) -> AnswerSet:
    """``maybe□(Q, S)``, via Theorem 7.1: ``◇Q(Core_D(S))``."""
    with span("answering.persistent_maybe"):
        minimal = core_solution(setting, source)
        if minimal is None:
            raise NoCwaSolutionError(
                "no CWA-solution exists for this source instance"
            )
        return maybe_on(query, minimal, setting.target_dependencies)


def potential_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
) -> AnswerSet:
    """``certain◇(Q, S)``.

    Fast path (Theorem 7.1): ``□Q(CanSol_D(S))`` when the setting is in
    one of Proposition 5.4's classes.  Otherwise the union over the
    CWA-solution space is computed directly -- pass ``solutions`` to
    reuse an enumerated space, or let the function enumerate one (small
    inputs only; maximal CWA-solutions may not exist, Example 5.3).
    """
    with span("answering.potential_certain"):
        if solutions is None and _cansol_applies(setting):
            maximal = cansol(setting, source)
            if maximal is None:
                raise NoCwaSolutionError(
                    "no CWA-solution exists for this source instance"
                )
            return certain_on(query, maximal, setting.target_dependencies)
        space = _solution_space(setting, source, solutions)
        answers = frozenset()
        for target in space:
            answers |= certain_on(query, target, setting.target_dependencies)
        return answers


def maybe_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
) -> AnswerSet:
    """``maybe◇(Q, S)`` -- same strategy as
    :func:`potential_certain_answers`, with ◇Q in place of □Q."""
    with span("answering.maybe"):
        if solutions is None and _cansol_applies(setting):
            maximal = cansol(setting, source)
            if maximal is None:
                raise NoCwaSolutionError(
                    "no CWA-solution exists for this source instance"
                )
            return maybe_on(query, maximal, setting.target_dependencies)
        space = _solution_space(setting, source, solutions)
        answers = frozenset()
        for target in space:
            answers |= maybe_on(query, target, setting.target_dependencies)
        return answers


def _cansol_applies(setting: DataExchangeSetting) -> bool:
    return (
        setting.target_dependencies_are_egds_only
        or setting.is_full_and_egd_setting
    )


def all_four_semantics(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
) -> dict:
    """All four answer sets at once (used by examples and benchmarks).

    Corollary 7.2 guarantees the chain
    ``certain□ ⊆ certain◇ ⊆ maybe□ ⊆ maybe◇``; the property tests check
    it on every evaluated query.
    """
    return {
        "certain": certain_answers(setting, source, query),
        "potential_certain": potential_certain_answers(
            setting, source, query, solutions=solutions
        ),
        "persistent_maybe": persistent_maybe_answers(setting, source, query),
        "maybe": maybe_answers(setting, source, query, solutions=solutions),
    }


def answers_over_space(
    query: Query,
    solutions: Iterable[Instance],
    target_dependencies,
    mode: str,
) -> AnswerSet:
    """Direct-definition evaluation over an explicit solution space.

    ``mode`` is one of ``"certain"`` (⋂□), ``"potential_certain"`` (⋃□),
    ``"persistent_maybe"`` (⋂◇), ``"maybe"`` (⋃◇).  Used by tests to
    cross-validate the fast paths of Theorem 7.1.
    """
    box = mode in ("certain", "potential_certain")
    intersect = mode in ("certain", "persistent_maybe")
    per_solution = certain_on if box else maybe_on
    result: Optional[frozenset] = None
    for target in solutions:
        answers = per_solution(query, target, target_dependencies)
        if result is None:
            result = answers
        elif intersect:
            result &= answers
        else:
            result |= answers
    if result is None:
        raise NoCwaSolutionError("empty solution space")
    return result
