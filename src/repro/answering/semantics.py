"""The four CWA query answering semantics (Section 7.1).

For a data exchange setting D, a source instance S and a query Q over
the target schema, with ``S_CWA`` the set of CWA-solutions:

* **certain answers**            ``certain□(Q,S) = ⋂_{T ∈ S_CWA} □Q(T)``
* **potential certain answers**  ``certain◇(Q,S) = ⋃_{T ∈ S_CWA} □Q(T)``
* **persistent maybe answers**   ``maybe□(Q,S)  = ⋂_{T ∈ S_CWA} ◇Q(T)``
* **maybe answers**              ``maybe◇(Q,S)  = ⋃_{T ∈ S_CWA} ◇Q(T)``

Theorem 7.1 reduces the □-intersections to the minimal CWA-solution
(the core) and, for the restricted classes of Proposition 5.4, the
◇-unions to CanSol.  This module implements both the direct definitions
(over an explicit or enumerated solution space) and the fast paths, so
tests can cross-validate them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.errors import ReproError
from ..core.instance import Instance
from ..cwa.enumeration import enumerate_cwa_solutions
from ..cwa.solution import cansol, core_solution
from ..exchange.setting import DataExchangeSetting
from ..logic.queries import AnswerSet, Query
from ..obs import counter, span
from .valuations import certain_on, maybe_on


class NoCwaSolutionError(ReproError):
    """Query answering was requested but no CWA-solution exists."""


def _solution_space(
    setting: DataExchangeSetting,
    source: Instance,
    solutions: Optional[Sequence[Instance]],
) -> List[Instance]:
    if solutions is not None:
        found = list(solutions)
    else:
        found = enumerate_cwa_solutions(setting, source)
    if not found:
        raise NoCwaSolutionError(
            "no CWA-solution exists for this source instance"
        )
    return found


def certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    executor=None,
) -> AnswerSet:
    """``certain□(Q, S)``, via Theorem 7.1: ``□Q(Core_D(S))``."""
    with span("answering.certain"):
        minimal = core_solution(setting, source)
        if minimal is None:
            raise NoCwaSolutionError(
                "no CWA-solution exists for this source instance"
            )
        return certain_on(
            query, minimal, setting.target_dependencies, executor=executor
        )


def persistent_maybe_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    executor=None,
) -> AnswerSet:
    """``maybe□(Q, S)``, via Theorem 7.1: ``◇Q(Core_D(S))``."""
    with span("answering.persistent_maybe"):
        minimal = core_solution(setting, source)
        if minimal is None:
            raise NoCwaSolutionError(
                "no CWA-solution exists for this source instance"
            )
        return maybe_on(
            query, minimal, setting.target_dependencies, executor=executor
        )


def potential_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
    executor=None,
) -> AnswerSet:
    """``certain◇(Q, S)``.

    Fast path (Theorem 7.1): ``□Q(CanSol_D(S))`` when the setting is in
    one of Proposition 5.4's classes.  Otherwise the union over the
    CWA-solution space is computed directly -- pass ``solutions`` to
    reuse an enumerated space, or let the function enumerate one (small
    inputs only; maximal CWA-solutions may not exist, Example 5.3).
    """
    with span("answering.potential_certain"):
        if solutions is None and _cansol_applies(setting):
            maximal = cansol(setting, source)
            if maximal is None:
                raise NoCwaSolutionError(
                    "no CWA-solution exists for this source instance"
                )
            return certain_on(
                query, maximal, setting.target_dependencies, executor=executor
            )
        space = _solution_space(setting, source, solutions)
        return answers_over_space(
            query,
            space,
            setting.target_dependencies,
            "potential_certain",
            executor=executor,
        )


def maybe_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
    executor=None,
) -> AnswerSet:
    """``maybe◇(Q, S)`` -- same strategy as
    :func:`potential_certain_answers`, with ◇Q in place of □Q."""
    with span("answering.maybe"):
        if solutions is None and _cansol_applies(setting):
            maximal = cansol(setting, source)
            if maximal is None:
                raise NoCwaSolutionError(
                    "no CWA-solution exists for this source instance"
                )
            return maybe_on(
                query, maximal, setting.target_dependencies, executor=executor
            )
        space = _solution_space(setting, source, solutions)
        return answers_over_space(
            query,
            space,
            setting.target_dependencies,
            "maybe",
            executor=executor,
        )


def _cansol_applies(setting: DataExchangeSetting) -> bool:
    return (
        setting.target_dependencies_are_egds_only
        or setting.is_full_and_egd_setting
    )


SEMANTICS_NAMES = ("certain", "potential_certain", "persistent_maybe", "maybe")


def _answer_certain(query, setting, source):
    return certain_answers(setting, source, query)


def _answer_potential_certain(query, setting, source):
    return potential_certain_answers(setting, source, query)


def _answer_persistent_maybe(query, setting, source):
    return persistent_maybe_answers(setting, source, query)


def _answer_maybe(query, setting, source):
    return maybe_answers(setting, source, query)


# Module-level (hence picklable) per-query entry points, keyed by
# semantics name; Executor.batch_answer ships these to worker processes.
_SEMANTICS_FNS = {
    "certain": _answer_certain,
    "potential_certain": _answer_potential_certain,
    "persistent_maybe": _answer_persistent_maybe,
    "maybe": _answer_maybe,
}


def _semantics_fn(semantics: str):
    try:
        return _SEMANTICS_FNS[semantics]
    except KeyError:
        raise ReproError(
            f"unknown semantics {semantics!r}; pick one of {SEMANTICS_NAMES}"
        ) from None


def _cached_answers(cache, key: str, compute) -> AnswerSet:
    """Look one answer set up in the ``answers`` cache family."""
    from ..io import answers_from_json, answers_to_json

    hit = cache.get("answers", key)
    if hit is not None:
        try:
            answers = answers_from_json(hit["rows"])
        except (ReproError, KeyError, TypeError):
            answers = None
        if answers is not None:
            counter("answering.cache_hits").inc()
            return answers
    answers = compute()
    cache.put("answers", key, {"rows": answers_to_json(answers)})
    return answers


def all_four_semantics(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solutions: Optional[Sequence[Instance]] = None,
    executor=None,
    cache=None,
) -> dict:
    """All four answer sets at once (used by examples and benchmarks).

    Corollary 7.2 guarantees the chain
    ``certain□ ⊆ certain◇ ⊆ maybe□ ⊆ maybe◇``; the property tests check
    it on every evaluated query.

    ``executor`` parallelizes the per-valuation (and, over an explicit
    space, per-solution) work; ``cache`` memoizes each of the four
    verdicts under an :func:`repro.engine.fingerprint.answer_key`.
    """
    computations = {
        "certain": lambda: certain_answers(
            setting, source, query, executor=executor
        ),
        "potential_certain": lambda: potential_certain_answers(
            setting, source, query, solutions=solutions, executor=executor
        ),
        "persistent_maybe": lambda: persistent_maybe_answers(
            setting, source, query, executor=executor
        ),
        "maybe": lambda: maybe_answers(
            setting, source, query, solutions=solutions, executor=executor
        ),
    }
    if cache is None:
        return {name: compute() for name, compute in computations.items()}
    from ..engine.fingerprint import answer_key  # lazy: engine is optional

    return {
        name: _cached_answers(
            cache,
            answer_key(setting, source, query, name, solutions=solutions),
            compute,
        )
        for name, compute in computations.items()
    }


def _solution_answers(target, query, target_dependencies, box: bool):
    """Worker: one solution's □Q or ◇Q (module-level for pickling)."""
    per_solution = certain_on if box else maybe_on
    return per_solution(query, target, target_dependencies)


def answers_over_space(
    query: Query,
    solutions: Iterable[Instance],
    target_dependencies,
    mode: str,
    *,
    executor=None,
) -> AnswerSet:
    """Direct-definition evaluation over an explicit solution space.

    ``mode`` is one of ``"certain"`` (⋂□), ``"potential_certain"`` (⋃□),
    ``"persistent_maybe"`` (⋂◇), ``"maybe"`` (⋃◇).  Used by tests to
    cross-validate the fast paths of Theorem 7.1.

    With a parallel ``executor``, each solution is evaluated in its own
    task; intersection/union over the per-solution answer sets happens
    in the parent, in solution order, so the result equals the serial
    one exactly.
    """
    box = mode in ("certain", "potential_certain")
    intersect = mode in ("certain", "persistent_maybe")
    space = list(solutions)
    if executor is not None and executor.parallel and len(space) > 1:
        per_target = executor.map_worlds(
            _solution_answers,
            space,
            query,
            tuple(target_dependencies),
            box,
            label="engine.worlds",
        )
    else:
        per_target = [
            _solution_answers(target, query, tuple(target_dependencies), box)
            for target in space
        ]
    result: Optional[frozenset] = None
    for answers in per_target:
        if result is None:
            result = answers
        elif intersect:
            result &= answers
        else:
            result |= answers
    if result is None:
        raise NoCwaSolutionError("empty solution space")
    return result
