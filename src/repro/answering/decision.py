"""The decision problems of Section 7.2: ``L_answers(D, Q)``.

For a fixed setting D and query Q, the data complexity of query
answering is the complexity of the language

    ``L_answers(D, Q) = { ⟨S, ū⟩ | ū ∈ answers_D(Q, S) }``

where ``answers`` is one of certain□, certain◇, maybe□, maybe◇.  This
module packages each such language as a callable membership test so the
benchmark harness (and downstream users studying a setting's complexity)
can speak the paper's language directly.

Membership of a single tuple is decided without computing the full
answer set where possible: for Boolean queries and the □ semantics we
short-circuit on the first refuting world.
"""

from __future__ import annotations

from typing import Tuple

from ..core.instance import Instance
from ..core.terms import Value
from ..cwa.solution import cansol, core_solution
from ..exchange.setting import DataExchangeSetting
from ..logic.queries import Query
from ..obs import span
from .semantics import NoCwaSolutionError
from .valuations import certain_holds_on, maybe_holds_on

SEMANTICS = ("certain", "potential_certain", "persistent_maybe", "maybe")


class AnswerLanguage:
    """``L_answers(D, Q)`` for one semantics, as a membership test.

    >>> # membership = language(S, ū); see tests for usage.
    """

    def __init__(
        self,
        setting: DataExchangeSetting,
        query: Query,
        semantics: str = "certain",
        *,
        executor=None,
    ):
        if semantics not in SEMANTICS:
            raise ValueError(
                f"semantics must be one of {SEMANTICS}, got {semantics!r}"
            )
        self.setting = setting
        self.query = query
        self.semantics = semantics
        # Optional repro.engine.Executor: parallelizes the per-solution
        # membership tests on the general-settings path.
        self.executor = executor

    def __call__(self, source: Instance, answer: Tuple[Value, ...] = ()) -> bool:
        """Decide ``⟨S, ū⟩ ∈ L_answers(D, Q)``."""
        if len(answer) != self.query.arity:
            raise ValueError(
                f"answer arity {len(answer)} does not match query arity "
                f"{self.query.arity}"
            )
        with span(f"answering.decide.{self.semantics}"):
            if self.semantics == "certain":
                return self._box_membership(source, answer, core_based=True)
            if self.semantics == "persistent_maybe":
                solution = core_solution(self.setting, source)
                if solution is None:
                    raise NoCwaSolutionError("no CWA-solution exists")
                return maybe_holds_on(
                    self.query,
                    answer,
                    solution,
                    self.setting.target_dependencies,
                )
            # The ◇-over-solutions semantics: fast path through CanSol when
            # available, else the full set computation.
            if (
                self.setting.target_dependencies_are_egds_only
                or self.setting.is_full_and_egd_setting
            ):
                solution = cansol(self.setting, source)
                if solution is None:
                    raise NoCwaSolutionError("no CWA-solution exists")
                decide = (
                    certain_holds_on
                    if self.semantics == "potential_certain"
                    else maybe_holds_on
                )
                return decide(
                    self.query,
                    answer,
                    solution,
                    self.setting.target_dependencies,
                )
            # General settings: decide per enumerated CWA-solution, with the
            # tuple's own constants anchored (a set-level computation would
            # report fresh-constant generic witnesses instead of ū itself).
            from ..cwa.enumeration import enumerate_cwa_solutions

            solutions = enumerate_cwa_solutions(self.setting, source)
            if not solutions:
                raise NoCwaSolutionError("no CWA-solution exists")
            decide = (
                certain_holds_on
                if self.semantics == "potential_certain"
                else maybe_holds_on
            )
            if (
                self.executor is not None
                and self.executor.parallel
                and len(solutions) > 1
            ):
                verdicts = self.executor.map_tasks(
                    decide,
                    [
                        (
                            self.query,
                            answer,
                            solution,
                            tuple(self.setting.target_dependencies),
                        )
                        for solution in solutions
                    ],
                    label="engine.decide",
                )
                return any(verdicts)
            return any(
                decide(
                    self.query,
                    answer,
                    solution,
                    self.setting.target_dependencies,
                )
                for solution in solutions
            )

    def _box_membership(
        self, source: Instance, answer: Tuple[Value, ...], core_based: bool
    ) -> bool:
        solution = core_solution(self.setting, source)
        if solution is None:
            raise NoCwaSolutionError("no CWA-solution exists")
        return certain_holds_on(
            self.query, answer, solution, self.setting.target_dependencies
        )


def certain_language(setting: DataExchangeSetting, query: Query) -> AnswerLanguage:
    """``L_certain□(D, Q)``."""
    return AnswerLanguage(setting, query, "certain")


def potential_certain_language(
    setting: DataExchangeSetting, query: Query
) -> AnswerLanguage:
    """``L_certain◇(D, Q)``."""
    return AnswerLanguage(setting, query, "potential_certain")


def persistent_maybe_language(
    setting: DataExchangeSetting, query: Query
) -> AnswerLanguage:
    """``L_maybe□(D, Q)``."""
    return AnswerLanguage(setting, query, "persistent_maybe")


def maybe_language(setting: DataExchangeSetting, query: Query) -> AnswerLanguage:
    """``L_maybe◇(D, Q)``."""
    return AnswerLanguage(setting, query, "maybe")
