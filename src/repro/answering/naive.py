"""Polynomial-time query answering for unions of conjunctive queries.

Theorem 7.6 / Lemma 7.7: for a weakly acyclic setting D, a source
instance S, a union of conjunctive queries Q (no inequalities) and *any*
CWA-solution T,

    ``certain□(Q, S) = certain◇(Q, S) = □Q(T) = Q(T)↓``

where ``Q(T)↓`` is the naive evaluation of Q on T keeping only the
null-free tuples.  This gives the PTIME procedure: chase, take a
CWA-solution (we use the core, Theorem 5.1), evaluate naively, drop
tuples with nulls.

The classical OWA semantics for UCQs coincides with ``Q(U)↓`` on any
universal solution U (Fagin et al. [6]), so ``u_certain_answers`` skips
the core computation.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import UnsupportedQueryError
from ..core.instance import Instance
from ..cwa.solution import core_solution
from ..exchange.setting import DataExchangeSetting
from ..logic.queries import (
    AnswerSet,
    ConjunctiveQuery,
    Query,
    UnionOfConjunctiveQueries,
)
from .semantics import NoCwaSolutionError


def _require_pure_ucq(query: Query) -> None:
    if isinstance(query, ConjunctiveQuery):
        if query.has_inequalities:
            raise UnsupportedQueryError(
                "the PTIME algorithm of Theorem 7.6 requires a UCQ without "
                "inequalities; with even one inequality the problem is "
                "co-NP-hard (Theorem 7.5)"
            )
        return
    if isinstance(query, UnionOfConjunctiveQueries):
        if not query.is_pure_ucq:
            raise UnsupportedQueryError(
                "the PTIME algorithm of Theorem 7.6 requires a UCQ without "
                "inequalities"
            )
        return
    raise UnsupportedQueryError(
        f"expected a (union of) conjunctive quer(ies), got {type(query).__name__}"
    )


def ucq_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
    *,
    solution: Optional[Instance] = None,
) -> AnswerSet:
    """``certain□(Q,S) = certain◇(Q,S)`` for a pure UCQ, in PTIME.

    Pass ``solution`` to reuse an already-computed CWA-solution.
    """
    _require_pure_ucq(query)
    target = solution
    if target is None:
        target = core_solution(setting, source)
    if target is None:
        raise NoCwaSolutionError(
            "no CWA-solution exists for this source instance"
        )
    return query.certain_part(target)


def u_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
) -> AnswerSet:
    """``u-certain_D(Q, S)`` of [7] for a pure UCQ: ``Q(U)↓`` on the
    canonical universal solution."""
    _require_pure_ucq(query)
    canonical = setting.canonical_universal_solution(source)
    if canonical is None:
        raise NoCwaSolutionError(
            "no universal solution exists for this source instance"
        )
    return query.certain_part(canonical)


def owa_certain_answers(
    setting: DataExchangeSetting,
    source: Instance,
    query: Query,
) -> AnswerSet:
    """The classical certain answers of [6] for a pure UCQ.

    For UCQs these coincide with ``Q(U)↓`` on a universal solution --
    the anomalies of Section 3 need queries beyond UCQs to show up.
    """
    return u_certain_answers(setting, source, query)
