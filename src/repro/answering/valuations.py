"""Valuations and the possible-world semantics ``Rep_D(T)`` (Section 7.1).

A *valuation* of an instance T maps every null of T to a constant.  Under
the CWA a solution T represents the set of complete instances

    ``Rep_D(T) = { v(T) | v a valuation of T with v(T) ⊨ Σ_t }``

and a query is answered on T through

    ``□Q(T) = ⋂ { Q(R) | R ∈ Rep_D(T) }``   (certain answers on T),
    ``◇Q(T) = ⋃ { Q(R) | R ∈ Rep_D(T) }``   (maybe answers on T).

Finite valuation enumeration
----------------------------
``Rep_D(T)`` is infinite (nulls may map to any constants), but for
*generic* queries (all of first-order logic: results are invariant under
permutations of constants not mentioned by Q, T or Σ_t) every valuation
is equivalent to one of finitely many canonical ones, determined by

* a **partition** of the nulls into blocks (which nulls coincide), and
* an **anchor** per block: either a constant from the *anchor set*
  (by default ``Const(T) ∪ consts(Q) ∪ consts(Σ_t)``) or "fresh", in
  which case each fresh block receives its own reserved constant.

Enumerating set partitions with anchors visits every equality type once:
``Σ_partitions Π_blocks (|anchors| + 1)`` valuations instead of
``(|anchors| + m)^m``.  Consequences:

* ``□Q(T)`` computed this way is exact: an answer mentioning a fresh
  constant cannot survive the intersection (permuting the fresh pool
  gives another valuation without it);
* ``◇Q(T)`` is exact for tuples over the anchor set; answers containing
  fresh constants are *generic witnesses* for the infinitely many tuples
  obtained by renaming them.  Membership of a concrete tuple is decided
  exactly by adding its constants to the anchors
  (:func:`maybe_holds_on`).

Callers that know their query compares only null-fed positions (e.g. the
3-SAT reduction of Theorem 7.5) may pass a smaller anchor set explicitly
to make the enumeration polynomially smaller; the default is always
sound.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
)

from ..core.instance import Instance
from ..core.terms import Const, Null
from ..chase.satisfaction import satisfies_all
from ..dependencies.base import Dependency
from ..logic.queries import AnswerSet, AnswerTuple, Query
from ..obs import counter

FRESH_PREFIX = "_c"

Valuation = Dict[Null, Const]


def fresh_constants(count: int, avoid: Iterable[Const]) -> List[Const]:
    """``count`` constants distinct from each other and from ``avoid``."""
    taken = {constant.name for constant in avoid}
    found: List[Const] = []
    index = 0
    while len(found) < count:
        name = f"{FRESH_PREFIX}{index}"
        if name not in taken:
            found.append(Const(name))
        index += 1
    return found


def default_anchors(
    target: Instance,
    extra_constants: Iterable[Const] = (),
) -> List[Const]:
    """The sound default anchor set: every constant of T plus extras."""
    return sorted(set(target.constants()) | set(extra_constants))


def valuations(
    target: Instance,
    extra_constants: Iterable[Const] = (),
    *,
    anchors: Optional[Iterable[Const]] = None,
) -> Iterator[Valuation]:
    """Enumerate the canonical valuations of ``target``.

    One valuation per (partition of nulls, anchor assignment); see the
    module docstring.  ``anchors=None`` uses the sound default.
    """
    enumerated = counter("answering.valuations_enumerated")
    nulls = sorted(target.nulls())
    if not nulls:
        enumerated.inc()
        yield {}
        return
    if anchors is None:
        anchor_list = default_anchors(target, extra_constants)
    else:
        anchor_list = sorted(set(anchors) | set(extra_constants))
    fresh = fresh_constants(len(nulls), anchor_list)

    # Assign each null either an anchor constant or a fresh block index,
    # with fresh block indices forming a restricted-growth string so each
    # set partition of the fresh part appears exactly once.
    def assign(
        index: int, blocks_used: int, current: List[Const]
    ) -> Iterator[Valuation]:
        if index == len(nulls):
            enumerated.inc()
            yield dict(zip(nulls, current))
            return
        for anchor in anchor_list:
            current.append(anchor)
            yield from assign(index + 1, blocks_used, current)
            current.pop()
        for block in range(blocks_used + 1):
            current.append(fresh[block])
            yield from assign(
                index + 1, max(blocks_used, block + 1), current
            )
            current.pop()

    yield from assign(0, 0, [])


def count_valuations(null_count: int, anchor_count: int) -> int:
    """The number of canonical valuations (for benchmark reporting)."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def count(index: int, blocks_used: int) -> int:
        if index == null_count:
            return 1
        total = anchor_count * count(index + 1, blocks_used)
        for block in range(blocks_used + 1):
            total += count(index + 1, max(blocks_used, block + 1))
        return total

    return count(0, 0)


def rep(
    target: Instance,
    target_dependencies: Sequence[Dependency],
    extra_constants: Iterable[Const] = (),
    *,
    anchors: Optional[Iterable[Const]] = None,
) -> Iterator[Instance]:
    """The canonical members of ``Rep_D(T)``.

    Valuations whose image violates Σ_t are discarded, per the
    definition of Rep_D in Section 7.1.
    """
    worlds = counter("answering.worlds_visited")
    for valuation in valuations(target, extra_constants, anchors=anchors):
        image = target.rename_values(valuation)
        if satisfies_all(image, target_dependencies):
            worlds.inc()
            yield image


def query_constants(query: Query) -> FrozenSet[Const]:
    """Constants mentioned by a query (needed among the anchors)."""
    return frozenset(
        value
        for value in query.to_formula().constants()
        if isinstance(value, Const)
    )


def dependency_constants(dependencies: Sequence[Dependency]) -> FrozenSet[Const]:
    """Constants mentioned by dependencies (tgd/egd atoms may use them)."""
    found: Set[Const] = set()
    for dependency in dependencies:
        atom_groups = []
        if dependency.is_tgd:
            if dependency.premise_atoms is not None:
                atom_groups.append(dependency.premise_atoms)
            atom_groups.append(dependency.conclusion_atoms)
        else:
            atom_groups.append(dependency.premise_atoms)
        for atoms in atom_groups:
            for atom in atoms:
                for value in atom.values:
                    if isinstance(value, Const):
                        found.add(value)
    return frozenset(found)


def _pool_extras(
    query: Query,
    target_dependencies: Sequence[Dependency],
    extra_constants: Iterable[Const],
) -> Set[Const]:
    return (
        set(extra_constants)
        | set(query_constants(query))
        | set(dependency_constants(target_dependencies))
    )


def _certain_chunk(chunk, query, target, target_dependencies):
    """Worker: intersect □Q over one batch of valuations.

    Returns ``(worlds_visited, answers or None)`` -- None when no
    valuation in the batch produced a Σ_t-satisfying world, so the batch
    contributes nothing to the global intersection.
    """
    worlds = 0
    answers: Optional[Set[AnswerTuple]] = None
    for valuation in chunk:
        image = target.rename_values(valuation)
        if satisfies_all(image, target_dependencies):
            worlds += 1
            result = query.evaluate(image)
            answers = set(result) if answers is None else answers & result
    return worlds, None if answers is None else frozenset(answers)


def _maybe_chunk(chunk, query, target, target_dependencies):
    """Worker: union ◇Q over one batch of valuations."""
    worlds = 0
    answers: Set[AnswerTuple] = set()
    for valuation in chunk:
        image = target.rename_values(valuation)
        if satisfies_all(image, target_dependencies):
            worlds += 1
            answers |= query.evaluate(image)
    return worlds, frozenset(answers)


def _map_chunks(
    executor,
    worker,
    query: Query,
    target: Instance,
    target_dependencies: Sequence[Dependency],
    extras: Set[Const],
    anchors: Optional[Iterable[Const]],
):
    """Fan the canonical valuations of ``target`` out over ``executor``.

    Materializes the valuation stream (so ``valuations_enumerated``
    counts in the parent) and hands batches to the workers; per-batch
    world counts are folded back into ``worlds_visited`` here, since
    worker-process counters never reach the parent registry.
    """
    items = list(valuations(target, extras, anchors=anchors))
    per_chunk = executor.map_valuations(
        worker,
        items,
        query,
        target,
        tuple(target_dependencies),
        label="engine.valuations",
    )
    counter("answering.worlds_visited").inc(
        sum(worlds for worlds, _ in per_chunk)
    )
    return [answers for _, answers in per_chunk]


def certain_on(
    query: Query,
    target: Instance,
    target_dependencies: Sequence[Dependency] = (),
    extra_constants: Iterable[Const] = (),
    *,
    anchors: Optional[Iterable[Const]] = None,
    executor=None,
) -> AnswerSet:
    """``□Q(T)``: answers on every possible world of T.  Exact.

    If ``Rep_D(T)`` is empty (no valuation satisfies Σ_t -- never the
    case for a CWA-solution) the intersection is vacuous and the empty
    set is returned.

    ``executor``: a :class:`repro.engine.Executor`; when parallel, the
    valuation stream is evaluated in batches across worker processes.
    The result is identical to the serial path (intersection is
    order-independent), only the early exit on an empty intermediate
    intersection is forgone.
    """
    extras = _pool_extras(query, target_dependencies, extra_constants)
    if executor is not None and executor.parallel:
        chunks = _map_chunks(
            executor, _certain_chunk, query, target,
            target_dependencies, extras, anchors,
        )
        answers = None
        for chunk_answers in chunks:
            if chunk_answers is None:
                continue
            answers = (
                set(chunk_answers) if answers is None
                else answers & chunk_answers
            )
        return frozenset(answers or ())
    answers: Optional[Set[AnswerTuple]] = None
    for world in rep(target, target_dependencies, extras, anchors=anchors):
        result = query.evaluate(world)
        if answers is None:
            answers = set(result)
        else:
            answers &= result
        if not answers:
            return frozenset()
    return frozenset(answers or ())


def maybe_on(
    query: Query,
    target: Instance,
    target_dependencies: Sequence[Dependency] = (),
    extra_constants: Iterable[Const] = (),
    *,
    anchors: Optional[Iterable[Const]] = None,
    executor=None,
) -> AnswerSet:
    """``◇Q(T)``: answers on some possible world of T.

    Exact for tuples over the anchor set; answers containing fresh pool
    constants are generic witnesses (see module docstring).  ``executor``
    behaves as in :func:`certain_on`.
    """
    extras = _pool_extras(query, target_dependencies, extra_constants)
    if executor is not None and executor.parallel:
        chunks = _map_chunks(
            executor, _maybe_chunk, query, target,
            target_dependencies, extras, anchors,
        )
        answers = frozenset()
        for chunk_answers in chunks:
            answers |= chunk_answers
        return answers
    answers: Set[AnswerTuple] = set()
    for world in rep(target, target_dependencies, extras, anchors=anchors):
        answers |= query.evaluate(world)
    return frozenset(answers)


def certain_holds_on(
    query: Query,
    answer: AnswerTuple,
    target: Instance,
    target_dependencies: Sequence[Dependency] = (),
) -> bool:
    """Decide ``answer ∈ □Q(T)`` for a concrete tuple, exactly."""
    constants = [value for value in answer if isinstance(value, Const)]
    return answer in certain_on(
        query, target, target_dependencies, extra_constants=constants
    )


def maybe_holds_on(
    query: Query,
    answer: AnswerTuple,
    target: Instance,
    target_dependencies: Sequence[Dependency] = (),
) -> bool:
    """Decide ``answer ∈ ◇Q(T)`` for a concrete tuple, exactly."""
    constants = [value for value in answer if isinstance(value, Const)]
    return answer in maybe_on(
        query, target, target_dependencies, extra_constants=constants
    )


def valuation_pool(
    target: Instance,
    extra_constants: Iterable[Const] = (),
) -> List[Const]:
    """The anchor set plus the reserved fresh constants (for reporting)."""
    base = default_anchors(target, extra_constants)
    return sorted(set(base) | set(fresh_constants(len(target.nulls()), base)))
