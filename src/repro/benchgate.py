"""The benchmark regression gate behind ``repro bench-compare``.

The benchmark harness (``benchmarks/conftest.py``) writes flat
``repro.bench/v1`` JSON files -- ``BENCH_chase.json`` etc. -- after
every session, and those files are committed, so the perf trajectory
accumulates in version control.  This module makes that trajectory
*self-enforcing* instead of write-only: it diffs the medians of a fresh
benchmark run against a committed baseline and exits nonzero when any
benchmark regressed beyond a configurable tolerance.

Only ``<name>.median_seconds`` keys participate: medians are the stable
timing statistic; ``counter.*`` entries are workload descriptors (how
many firings, how many hom searches) and ``.rounds`` depends on machine
speed, so neither is gated on.

Used three ways:

* ``repro bench-compare BASELINE FRESH [--tolerance 0.25]`` (the CLI);
* ``benchmarks/bench_gate.py`` (standalone script, same flags);
* the ``bench-gate`` CI job, which copies the committed baseline aside,
  re-runs one quick benchmark family, and compares.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .core.errors import ReproError

BENCH_SCHEMA = "repro.bench/v1"

#: Default allowed slowdown: fresh median may exceed baseline by 25%.
#: Benchmarks run on shared CI machines; single-digit-percent noise is
#: routine, so the default gates against real regressions only.  Local
#: runs on quiet machines can tighten it (the acceptance bar for this
#: repo's observability layer is --tolerance 0.03 on BENCH_chase.json).
DEFAULT_TOLERANCE = 0.25

_MEDIAN_SUFFIX = ".median_seconds"


class BenchDelta:
    """One benchmark's baseline/fresh median pair and its verdict."""

    __slots__ = ("name", "baseline", "fresh", "tolerance")

    def __init__(self, name: str, baseline: float, fresh: float, tolerance: float):
        self.name = name
        self.baseline = baseline
        self.fresh = fresh
        self.tolerance = tolerance

    @property
    def ratio(self) -> float:
        """fresh / baseline; 1.0 when the baseline median is zero."""
        return self.fresh / self.baseline if self.baseline > 0 else 1.0

    @property
    def regressed(self) -> bool:
        return self.fresh > self.baseline * (1.0 + self.tolerance)

    @property
    def verdict(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.fresh < self.baseline:
            return "improved"
        return "ok"


def load_bench(path: str) -> Dict[str, float]:
    """Load one ``repro.bench/v1`` file; returns its flat record dict."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ReproError(f"cannot read benchmark file {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid benchmark JSON in {path}: {error}") from None
    if not isinstance(payload, dict):
        raise ReproError(f"{path}: expected a JSON object")
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ReproError(
            f"{path}: unsupported benchmark schema {schema!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    return payload


def medians(record: Dict[str, float]) -> Dict[str, float]:
    """The ``<name> -> median seconds`` entries of one bench record."""
    return {
        key[: -len(_MEDIAN_SUFFIX)]: float(value)
        for key, value in record.items()
        if key.endswith(_MEDIAN_SUFFIX)
    }


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[BenchDelta]:
    """Pair up medians present in both records, sorted by name."""
    base_medians = medians(baseline)
    fresh_medians = medians(fresh)
    return [
        BenchDelta(name, base_medians[name], fresh_medians[name], tolerance)
        for name in sorted(base_medians.keys() & fresh_medians.keys())
    ]


def render(
    deltas: Sequence[BenchDelta],
    *,
    baseline_only: Sequence[str] = (),
    fresh_only: Sequence[str] = (),
) -> str:
    """A fixed-width verdict table plus coverage warnings."""
    lines: List[str] = []
    if deltas:
        width = max(len(delta.name) for delta in deltas)
        lines.append(
            f"{'benchmark'.ljust(width)}  {'baseline':>10}  {'fresh':>10}"
            f"  {'ratio':>6}  verdict"
        )
        for delta in deltas:
            lines.append(
                f"{delta.name.ljust(width)}  {delta.baseline:>10.6f}"
                f"  {delta.fresh:>10.6f}  {delta.ratio:>6.2f}  {delta.verdict}"
            )
    else:
        lines.append("no benchmarks in common between baseline and fresh run")
    for name in baseline_only:
        lines.append(f"warning: {name} is in the baseline but was not re-run")
    for name in fresh_only:
        lines.append(f"note: {name} is new (no baseline median)")
    return "\n".join(lines)


def run_gate(
    baseline_path: str,
    fresh_path: str,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    out=print,
) -> int:
    """Compare two bench files; 0 = within tolerance, 1 = regression.

    An empty intersection of benchmark names exits 1 as well -- a gate
    that silently compared nothing would pass forever.
    """
    baseline = load_bench(baseline_path)
    fresh = load_bench(fresh_path)
    deltas = compare(baseline, fresh, tolerance)
    base_names = medians(baseline).keys()
    fresh_names = medians(fresh).keys()
    out(
        render(
            deltas,
            baseline_only=sorted(base_names - fresh_names),
            fresh_only=sorted(fresh_names - base_names),
        )
    )
    regressions = [delta for delta in deltas if delta.regressed]
    if regressions:
        out(
            f"FAILED: {len(regressions)} benchmark(s) regressed beyond "
            f"{tolerance:.0%} of baseline"
        )
        return 1
    if not deltas:
        out("FAILED: nothing to compare")
        return 1
    out(f"passed: {len(deltas)} benchmark(s) within {tolerance:.0%} of baseline")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (mirrors ``repro bench-compare``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="diff fresh benchmark medians against a committed baseline",
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    try:
        return run_gate(args.baseline, args.fresh, tolerance=args.tolerance)
    except ReproError as error:
        print(f"error: {error}")
        return 2
