"""repro -- a reproduction of *CWA-Solutions for Data Exchange Settings
with Target Dependencies* (Hernich & Schweikardt, PODS 2007).

The library implements the paper's entire technical development:

* the relational substrate (constants, labeled nulls, instances) --
  :mod:`repro.core`;
* first-order logic, conjunctive queries, and a text DSL --
  :mod:`repro.logic`;
* tgds, egds, weak and rich acyclicity -- :mod:`repro.dependencies`;
* homomorphisms and cores -- :mod:`repro.homomorphism`;
* the standard chase, the oblivious chase, and the paper's **α-chase**
  -- :mod:`repro.chase`;
* **CWA-presolutions and CWA-solutions** (recognition, construction,
  enumeration, CanSol) -- :mod:`repro.cwa`;
* data exchange settings and the solve driver -- :mod:`repro.exchange`;
* the four CWA query-answering semantics -- :mod:`repro.answering`;
* the undecidability and hardness reductions (D_halt, D_emb, 3-SAT,
  path systems) -- :mod:`repro.reductions`;
* workload generators and the paper's named examples --
  :mod:`repro.generators`.

Quickstart
----------
>>> from repro import DataExchangeSetting, Schema, parse_instance, solve
>>> setting = DataExchangeSetting.from_strings(
...     Schema.of(M=2, N=2), Schema.of(E=2, F=2, G=2),
...     ["M(x1,x2) -> E(x1,x2)",
...      "N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)"],
...     ["F(y,x) -> exists z . G(x,z)",
...      "F(x,y) & F(x,z) -> y = z"])
>>> source = parse_instance("M('a','b'), N('a','b'), N('a','c')")
>>> result = solve(setting, source)
>>> result.cwa_solution_exists
True
"""

from .core import (
    Atom,
    Const,
    Instance,
    Null,
    NullFactory,
    RelationSymbol,
    ReproError,
    Schema,
    Variable,
    atom,
    const,
    isomorphic,
    null,
    var,
)
from .logic import (
    ConjunctiveQuery,
    DatalogProgram,
    FirstOrderQuery,
    Query,
    UnionOfConjunctiveQueries,
    parse_atom,
    parse_formula,
    parse_instance,
    parse_program,
    parse_query,
)
from .dependencies import (
    Egd,
    Tgd,
    is_richly_acyclic,
    is_weakly_acyclic,
    parse_dependency,
)
from .chase import (
    AlphaChaseSession,
    ChaseStatus,
    ExplicitAlpha,
    FreshAlpha,
    alpha_chase,
    narrate,
    oblivious_chase,
    standard_chase,
)
from .chase.seminaive import seminaive_chase
from .homomorphism import blockwise_core, core, find_homomorphism, has_homomorphism
from .cwa import (
    cansol,
    core_solution,
    cwa_solution_exists,
    enumerate_cwa_presolutions,
    enumerate_cwa_solutions,
    find_alpha,
    is_cwa_presolution,
    is_cwa_solution,
    minimal_cwa_solution,
)
from .exchange import (
    DataExchangeSetting,
    copying_setting,
    existence_of_cwa_solutions,
    solve,
)
from .incremental import DeltaSession, SourceDelta
from .answering import (
    all_four_semantics,
    datalog_certain_answers,
    certain_answers,
    certain_on,
    maybe_answers,
    maybe_on,
    persistent_maybe_answers,
    potential_certain_answers,
    u_certain_answers,
    ucq_certain_answers,
)

__version__ = "1.0.0"

__all__ = [
    "AlphaChaseSession",
    "Atom",
    "ChaseStatus",
    "ConjunctiveQuery",
    "Const",
    "DatalogProgram",
    "DataExchangeSetting",
    "DeltaSession",
    "Egd",
    "ExplicitAlpha",
    "FirstOrderQuery",
    "FreshAlpha",
    "Instance",
    "Null",
    "NullFactory",
    "Query",
    "RelationSymbol",
    "ReproError",
    "Schema",
    "SourceDelta",
    "Tgd",
    "UnionOfConjunctiveQueries",
    "Variable",
    "all_four_semantics",
    "alpha_chase",
    "atom",
    "blockwise_core",
    "datalog_certain_answers",
    "narrate",
    "parse_program",
    "seminaive_chase",
    "cansol",
    "certain_answers",
    "certain_on",
    "const",
    "copying_setting",
    "core",
    "core_solution",
    "cwa_solution_exists",
    "enumerate_cwa_presolutions",
    "enumerate_cwa_solutions",
    "existence_of_cwa_solutions",
    "find_alpha",
    "find_homomorphism",
    "has_homomorphism",
    "is_cwa_presolution",
    "is_cwa_solution",
    "is_richly_acyclic",
    "is_weakly_acyclic",
    "isomorphic",
    "maybe_answers",
    "maybe_on",
    "minimal_cwa_solution",
    "null",
    "oblivious_chase",
    "parse_atom",
    "parse_dependency",
    "parse_formula",
    "parse_instance",
    "parse_query",
    "persistent_maybe_answers",
    "potential_certain_answers",
    "solve",
    "standard_chase",
    "u_certain_answers",
    "ucq_certain_answers",
    "var",
]
