"""Rendering chase runs the way the paper writes them.

Example 4.4 presents chases as sequences I₀, I₁, ..., Iₘ with one
dependency application per step.  :func:`explain` replays a traced
:class:`ChaseOutcome` into that shape, and :func:`narrate` renders it as
text for examples, teaching, and debugging data exchange settings.
"""

from __future__ import annotations

from typing import List

from ..core.instance import Instance
from .result import ChaseOutcome, ChaseStep


class ExplainedStep:
    """One chase step together with the instance it produced."""

    __slots__ = ("index", "step", "instance")

    def __init__(self, index: int, step: ChaseStep, instance: Instance):
        self.index = index
        self.step = step
        self.instance = instance

    def describe(self) -> str:
        if self.step.kind == "tgd":
            binding = ", ".join(
                f"{name} ↦ {value}" for name, value in self.step.binding
            )
            added = ", ".join(repr(atom) for atom in self.step.added)
            name = self.step.dependency.name or "tgd"
            action = f"α-apply {name}" if not added else f"apply {name}"
            detail = f" with {binding}" if binding else ""
            return f"I{self.index} = I{self.index - 1} ∪ {{{added}}}  ({action}{detail})"
        old, new = self.step.merged
        name = self.step.dependency.name or "egd"
        return (
            f"I{self.index}: apply {name}, replacing {old} by {new}"
        )


def explain(initial: Instance, outcome: ChaseOutcome) -> List[ExplainedStep]:
    """Replay a traced outcome into the I₀, I₁, ... presentation.

    Requires the chase to have been run with ``trace=True``; raises
    otherwise (an untraced outcome has nothing to replay).
    """
    if outcome.steps and not outcome.trace:
        raise ValueError(
            "the chase was not traced; rerun with trace=True to explain it"
        )
    current = initial.copy()
    explained: List[ExplainedStep] = []
    for index, step in enumerate(outcome.trace, start=1):
        if step.kind == "tgd":
            current.add_all(step.added)
        else:
            old, new = step.merged
            if old.is_null:
                current.replace_value(old, new)
        explained.append(ExplainedStep(index, step, current.copy()))
    return explained


def narrate(
    initial: Instance,
    outcome: ChaseOutcome,
    *,
    show_instances: bool = False,
) -> str:
    """A textual account of a traced chase run.

    >>> from repro.chase import standard_chase
    >>> from repro.logic import parse_instance
    >>> from repro.dependencies import parse_dependencies
    >>> deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
    >>> outcome = standard_chase(parse_instance("E('a','b')"), deps, trace=True)
    >>> print(narrate(parse_instance("E('a','b')"), outcome))  # doctest: +ELLIPSIS
    I0 = {E(a, b)}
    I1 = I0 ∪ {F(b, ⊥...)}  (apply tgd with x ↦ a, y ↦ b)
    result: success after 1 step(s), 1 null(s) created, in ...s
    """
    lines: List[str] = []
    atoms = ", ".join(repr(a) for a in initial.sorted_atoms())
    lines.append(f"I0 = {{{atoms}}}")
    for item in explain(initial, outcome):
        lines.append(item.describe())
        if show_instances:
            lines.append(f"    I{item.index} = {item.instance!r}")
    lines.append(
        f"result: {outcome.status.value} after {outcome.steps} step(s), "
        f"{outcome.nulls_created} null(s) created, "
        f"in {outcome.elapsed_seconds:.4f}s"
        + (f" -- {outcome.reason}" if outcome.reason else "")
    )
    return "\n".join(lines)
