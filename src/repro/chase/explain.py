"""Rendering chase runs the way the paper writes them.

Example 4.4 presents chases as sequences I₀, I₁, ..., Iₘ with one
dependency application per step.  :func:`explain` replays a traced
:class:`ChaseOutcome` into that shape, and :func:`narrate` renders it as
text for examples, teaching, and debugging data exchange settings.

Two narration modes coexist:

* **linear replay** (:func:`explain` / :func:`narrate`) follows the
  chase *sequence* -- exactly the presentation of Example 4.4;
* **DAG-aware narration** (:func:`narrate_why` / :func:`why_not`) walks
  a :class:`~repro.obs.provenance.ProvenanceLedger` *derivation DAG*
  backwards from one fact to its justifying source atoms -- the paper's
  justification chains (Sections 3-4), available whenever the chase ran
  under :func:`repro.obs.provenance.recording`.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Instance
from ..obs.provenance import ProvenanceLedger
from .result import ChaseOutcome, ChaseStep


class ExplainedStep:
    """One chase step together with the instance it produced."""

    __slots__ = ("index", "step", "instance")

    def __init__(self, index: int, step: ChaseStep, instance: Instance):
        self.index = index
        self.step = step
        self.instance = instance

    def describe(self) -> str:
        if self.step.kind == "tgd":
            binding = ", ".join(
                f"{name} ↦ {value}" for name, value in self.step.binding
            )
            added = ", ".join(repr(atom) for atom in self.step.added)
            name = self.step.dependency.name or "tgd"
            action = f"α-apply {name}" if not added else f"apply {name}"
            detail = f" with {binding}" if binding else ""
            return f"I{self.index} = I{self.index - 1} ∪ {{{added}}}  ({action}{detail})"
        old, new = self.step.merged
        name = self.step.dependency.name or "egd"
        return (
            f"I{self.index}: apply {name}, replacing {old} by {new}"
        )


def explain(initial: Instance, outcome: ChaseOutcome) -> List[ExplainedStep]:
    """Replay a traced outcome into the I₀, I₁, ... presentation.

    Requires the chase to have been run with ``trace=True``; raises
    otherwise (an untraced outcome has nothing to replay).
    """
    if outcome.steps and not outcome.trace:
        raise ValueError(
            "the chase was not traced; rerun with trace=True to explain it"
        )
    current = initial.copy()
    explained: List[ExplainedStep] = []
    for index, step in enumerate(outcome.trace, start=1):
        if step.kind == "tgd":
            current.add_all(step.added)
        else:
            old, new = step.merged
            if old.is_null:
                current.replace_value(old, new)
        explained.append(ExplainedStep(index, step, current.copy()))
    return explained


def narrate(
    initial: Instance,
    outcome: ChaseOutcome,
    *,
    show_instances: bool = False,
) -> str:
    """A textual account of a traced chase run.

    >>> from repro.chase import standard_chase
    >>> from repro.logic import parse_instance
    >>> from repro.dependencies import parse_dependencies
    >>> deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
    >>> outcome = standard_chase(parse_instance("E('a','b')"), deps, trace=True)
    >>> print(narrate(parse_instance("E('a','b')"), outcome))  # doctest: +ELLIPSIS
    I0 = {E(a, b)}
    I1 = I0 ∪ {F(b, ⊥...)}  (apply tgd with x ↦ a, y ↦ b)
    result: success after 1 step(s), 1 null(s) created, in ...s
    """
    lines: List[str] = []
    atoms = ", ".join(repr(a) for a in initial.sorted_atoms())
    lines.append(f"I0 = {{{atoms}}}")
    for item in explain(initial, outcome):
        lines.append(item.describe())
        if show_instances:
            lines.append(f"    I{item.index} = {item.instance!r}")
    lines.append(
        f"result: {outcome.status.value} after {outcome.steps} step(s), "
        f"{outcome.nulls_created} null(s) created, "
        f"in {outcome.elapsed_seconds:.4f}s"
        + (f" -- {outcome.reason}" if outcome.reason else "")
    )
    return "\n".join(lines)


def narrate_why(ledger: ProvenanceLedger, fact: Atom) -> str:
    """The justification chain of ``fact``, walked off the derivation DAG.

    Where :func:`narrate` replays the whole chase *sequence*, this
    narrates only the derivation cone of one fact: which dependency
    produced it, under which trigger binding and witnesses, recursively
    down to the source atoms -- the justification structure that makes a
    CWA-presolution a CWA-presolution.

    >>> from repro.chase import standard_chase
    >>> from repro.logic import parse_instance
    >>> from repro.dependencies import parse_dependencies
    >>> from repro.obs.provenance import recording
    >>> deps = parse_dependencies(["E(x, y) -> exists z . F(y, z)"])
    >>> with recording() as ledger:
    ...     outcome = standard_chase(parse_instance("E('a','b')"), deps)
    >>> fact = [a for a in outcome.instance if a.relation.name == "F"][0]
    >>> print(narrate_why(ledger, fact))
    F(b, ⊥0) ⇐ tgd[y ↦ b, x ↦ a; z ↦ ⊥0]
      E(a, b) ⇐ source
    """
    return ledger.render_why(fact)


def why_not(ledger: ProvenanceLedger, fact: Atom) -> str:
    """Why ``fact`` is absent from the final result.

    Distinguishes never-derived facts, facts rewritten away by an egd
    merge, and facts retracted by core folding (with the folding
    endomorphism that made them redundant).
    """
    return ledger.why_not(fact)


def survival(ledger: ProvenanceLedger, fact: Atom) -> str:
    """One line on whether ``fact`` survives into the minimal solution.

    A fact *survives* core folding when no recorded retraction dropped
    it; the justification chain (its derivation cone) is what the
    survival is grounded in.
    """
    justification = ledger.why(fact)
    if justification is None:
        return ledger.why_not(fact)
    if fact not in set(ledger.live_facts()):
        return ledger.why_not(fact)
    sources = [
        node.fact for node in justification.chain() if node.kind == "source"
    ]
    grounds = ", ".join(repr(item) for item in sorted(set(sources)))
    return (
        f"{fact!r} survives: no endomorphism folds it away, and it is "
        f"justified from {{{grounds}}}"
    )
