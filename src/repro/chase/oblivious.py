"""The oblivious chase: the α-chase under the canonical fresh-null α.

Driving :func:`repro.chase.alpha.alpha_chase` with a :class:`FreshAlpha`
fires every justification ``(d, ū, v̄)`` with its own fresh nulls.  For
settings *without* egds this terminates exactly when only finitely many
justifications become reachable -- which rich acyclicity guarantees
(Definition 7.3); mere weak acyclicity does not, because distinct
ȳ-tuples yield distinct justifications (see the discussion following
Proposition 7.4).

With egds the fresh-null α often admits *no* successful chase at all: an
egd that merges a witness null makes its justification α-applicable again
and the chase loops (the mechanism of Example 4.4, α₃).  Constructions
that need a maximal CWA-presolution in the presence of egds (CanSol,
Proposition 5.4) instead use :func:`fire_all_source_justifications` and
merge afterwards, deriving the α that reproduces the merged result.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.terms import NullFactory, Value
from ..dependencies.base import Dependency
from ..dependencies.tgd import Tgd
import time

from ..obs import attribution, counter, gauge, span
from ..obs.provenance import active_ledger
from .alpha import (
    FreshAlpha,
    JustificationKey,
    alpha_chase,
    justification_key,
)
from .result import ChaseOutcome

DEFAULT_MAX_STEPS = 100_000


def oblivious_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
    null_factory: Optional[NullFactory] = None,
) -> Tuple[ChaseOutcome, FreshAlpha]:
    """Run the α-chase under the canonical fresh-null α.

    Returns the outcome together with the FreshAlpha used, whose
    ``assigned()`` table is the relevant finite part of α.
    """
    factory = null_factory or instance.null_factory()
    alpha = FreshAlpha(factory)
    with span("chase.oblivious"):
        outcome = alpha_chase(
            instance, dependencies, alpha, max_steps=max_steps, trace=trace
        )
    return outcome, alpha


def fire_all_source_justifications(
    source: Instance,
    st_tgds: Sequence[Tgd],
    *,
    null_factory: Optional[NullFactory] = None,
) -> Tuple[Instance, Dict[JustificationKey, Tuple[Value, ...]]]:
    """Fire every s-t justification once, each with fresh nulls.

    This is Libkin's canonical CWA-presolution construction for settings
    without target dependencies: for each s-t-tgd d and each pair (ū, v̄)
    with ``S ⊨ ϕ[ū, v̄]``, add the atoms of ``ψ[ū, w̄]`` where w̄ are the
    fresh nulls chosen for that justification.

    Because s-t premises speak about the source schema only, the set of
    justifications is fixed by S and is *not* affected by later egd
    merges on the target side -- which is what makes the CanSol
    construction of Proposition 5.4 (target egds only) work.

    Returns ``(S ∪ fired atoms, justification table)``.
    """
    factory = null_factory or source.null_factory()
    result = source.copy()
    table: Dict[JustificationKey, Tuple[Value, ...]] = {}
    firings = counter("chase.tgd_firings")
    null_count = counter("chase.nulls_created")
    ledger = active_ledger()  # None by default: recording is opt-in
    if ledger is not None:
        ledger.record_source(result)
    attributing = attribution.enabled()
    with span("chase.fire_all_source_justifications"):
        for tgd in st_tgds:
            dep_started = time.perf_counter() if attributing else 0.0
            dep_triggers = 0
            dep_firings = 0
            dep_nulls = 0
            for premise_match in tgd.premise_matches(source):
                dep_triggers += 1
                key = justification_key(tgd, premise_match)
                if key in table:
                    continue
                witnesses = factory.fresh_tuple(len(tgd.existential))
                table[key] = witnesses
                firings.inc()
                dep_firings += 1
                dep_nulls += len(witnesses)
                null_count.inc(len(witnesses))
                added = tgd.conclusion_atoms_under(premise_match, witnesses)
                fresh = [atom for atom in added if result.add(atom)]
                if ledger is not None:
                    ledger.record_firing(
                        "oblivious", tgd, premise_match, fresh, witnesses
                    )
            if attributing and dep_triggers:
                attribution.record_dependency(
                    attribution.dep_label(tgd),
                    round_index=0,
                    triggers=dep_triggers,
                    firings=dep_firings,
                    nulls=dep_nulls,
                    seconds=time.perf_counter() - dep_started,
                )
    gauge("chase.peak_atoms").set(len(result))
    gauge("chase.instance_size").set(len(result))
    return result, table
