"""The α-chase (Definitions 4.1 and 4.2 of the paper).

The α-chase is the suitably controlled chase that underlies
CWA-presolutions.  A *potential justification* is a quadruple
``(d, ū, v̄, z)`` where d is a tgd ``ϕ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄)``, ū and v̄
are value tuples for x̄ and ȳ, and z is a variable of z̄.  A mapping
``α : J_D → Dom`` fixes, for every justification, the value it produces;
``ᾱ(d, ū, v̄)`` denotes the induced witness tuple for z̄.

A tgd d is **α-applicable** to I with (ū, v̄) iff

    ``I ⊨ ϕ[ū, v̄]``  and  ``I ⊭ ψ[ū, ᾱ(d, ū, v̄)]``          (1)

-- note the contrast with the standard chase, which checks
``I ⊭ ∃z̄ ψ[ū, z̄]`` instead (Remark 4.3).  Egds apply as usual; an
α-chase is *successful* if it is finite, its result satisfies Σ, and no
tgd is α-applicable to the result; it is *failing* if an egd application
fails on two constants (Definition 4.2).

The engine below saturates tgds first, then applies egds, re-saturating
as needed; Lemma 4.5 guarantees that when a successful α-chase exists at
all, this strategy finds it and its result is independent of strategy.
Divergence (as with α₃ in Example 4.4) is detected by a step budget and
by revisiting a previous state.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Substitution
from ..core.errors import DependencyError
from ..core.instance import Instance
from ..core.terms import NullFactory, Value
from ..dependencies.base import Dependency, split_dependencies
from ..dependencies.egd import Egd
from ..dependencies.tgd import Tgd
from ..obs import attribution, counter, gauge, span, span_stats
from ..obs.provenance import active_ledger
from .result import ChaseOutcome, ChaseStatus, ChaseStep

DEFAULT_MAX_STEPS = 100_000

# A justification group (d, ū, v̄); the paper's quadruples (d, ū, v̄, z)
# are recovered by pairing the group with each variable of z̄.
JustificationKey = Tuple[Tgd, Tuple[Value, ...], Tuple[Value, ...]]


def justification_key(tgd: Tgd, premise_match: Substitution) -> JustificationKey:
    """The key (d, ū, v̄) of a premise match."""
    u = premise_match.as_tuple(tgd.frontier)
    v = premise_match.as_tuple(tgd.premise_only)
    return (tgd, tuple(u), tuple(v))


class Alpha:
    """A mapping ``α : J_D → Dom``, accessed per justification group.

    ``witnesses`` returns ``ᾱ(d, ū, v̄)``, i.e. the tuple
    ``(α(d, ū, v̄, z_1), ..., α(d, ū, v̄, z_n))``.
    """

    def witnesses(self, key: JustificationKey) -> Tuple[Value, ...]:
        raise NotImplementedError

    def assigned(self) -> Dict[JustificationKey, Tuple[Value, ...]]:
        """The justification groups this α has produced values for so far."""
        raise NotImplementedError


class ExplicitAlpha(Alpha):
    """An α given by an explicit table, as in the paper's Example 4.4.

    ``table`` maps justification groups to witness tuples.  Lookups of
    unlisted justifications raise (or fall back to a factory of fresh
    nulls when ``fallback`` is supplied, matching the example's "*" rows
    where the value "can be arbitrary").
    """

    def __init__(
        self,
        table: Dict[JustificationKey, Tuple[Value, ...]],
        fallback: Optional[NullFactory] = None,
    ):
        self._table = dict(table)
        self._fallback = fallback

    def witnesses(self, key: JustificationKey) -> Tuple[Value, ...]:
        found = self._table.get(key)
        if found is not None:
            return found
        if self._fallback is None:
            tgd, u, v = key
            raise DependencyError(
                f"α is undefined for justification ({tgd}, {u}, {v})"
            )
        fresh = self._fallback.fresh_tuple(len(key[0].existential))
        self._table[key] = fresh
        return fresh

    def assigned(self) -> Dict[JustificationKey, Tuple[Value, ...]]:
        return dict(self._table)


class FreshAlpha(Alpha):
    """The canonical α: every justification gets pairwise distinct fresh
    nulls, memoized so repeated lookups agree.

    Driving the α-chase with a FreshAlpha realizes the *oblivious* chase;
    it terminates whenever the setting is richly acyclic (the discussion
    after Proposition 7.4 explains why weak acyclicity does not suffice:
    distinct ȳ-tuples give distinct justifications).
    """

    def __init__(self, factory: NullFactory):
        self._factory = factory
        self._memo: Dict[JustificationKey, Tuple[Value, ...]] = {}

    def witnesses(self, key: JustificationKey) -> Tuple[Value, ...]:
        found = self._memo.get(key)
        if found is None:
            found = self._factory.fresh_tuple(len(key[0].existential))
            self._memo[key] = found
        return found

    def assigned(self) -> Dict[JustificationKey, Tuple[Value, ...]]:
        return dict(self._memo)


def alpha_applicable_matches(
    instance: Instance, tgd: Tgd, alpha: Alpha
) -> Iterator[Tuple[Substitution, Tuple[Value, ...]]]:
    """All (premise match, witness tuple) pairs where d is α-applicable."""
    for premise_match in tgd.premise_matches(instance):
        key = justification_key(tgd, premise_match)
        witnesses = alpha.witnesses(key)
        if not tgd.conclusion_present(instance, premise_match, witnesses):
            yield premise_match, witnesses


def any_tgd_alpha_applicable(
    instance: Instance, tgds: Sequence[Tgd], alpha: Alpha
) -> bool:
    """Condition (c) of Definition 4.2(1), negated."""
    for tgd in tgds:
        for _ in alpha_applicable_matches(instance, tgd, alpha):
            return True
    return False


def alpha_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    alpha: Alpha,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
) -> ChaseOutcome:
    """Run an α-chase of ``instance`` with ``dependencies`` under ``alpha``.

    Returns SUCCESS with the (unique, cf. Lemma 4.5) result if a
    successful α-chase exists; FAILURE if an egd equates two constants;
    DIVERGED if a state repeats or the step budget runs out (the infinite
    case of Lemma 4.5, e.g. α₃ in Example 4.4).
    """
    tgds, egds = split_dependencies(list(dependencies))
    current = instance.copy()
    initial_nulls = set(instance.nulls())
    steps = 0
    log: List[ChaseStep] = []
    # Cycle detection stores content fingerprints, not frozen atom sets:
    # a 64-character digest per visited state instead of an O(|I|) copy.
    seen_states: Set[str] = set()
    started = time.perf_counter()
    firings = counter("chase.tgd_firings")
    merges = counter("chase.egd_merges")
    null_count = counter("chase.nulls_created")
    ledger = active_ledger()  # None by default: recording is opt-in
    if ledger is not None:
        ledger.record_source(current)
    peak_atoms = len(current)

    def finish(status: ChaseStatus, reason: str = "") -> ChaseOutcome:
        # α-witnesses need not be fresh, so count created nulls by
        # comparing against the input instance instead of per firing.
        created = len(set(current.nulls()) - initial_nulls)
        null_count.inc(created)
        gauge("chase.steps_to_fixpoint").set(steps)
        gauge("instance.nulls").set(len(current.nulls()))
        gauge("chase.peak_atoms").set(max(peak_atoms, len(current)))
        gauge("chase.instance_size").set(len(current))
        return ChaseOutcome(
            status,
            current,
            steps,
            log,
            reason,
            elapsed_seconds=time.perf_counter() - started,
            nulls_created=created,
        )

    def out_of_budget() -> ChaseOutcome:
        return finish(
            ChaseStatus.DIVERGED, f"α-chase exceeded {max_steps} steps"
        )

    with span("chase.alpha"):
        # Phase timing only (egds vs tgds), recorded per saturation round
        # -- same overhead-budget reasoning as the standard engine.
        egd_stats = span_stats("egds")
        tgd_stats = span_stats("tgds")
        attributing = attribution.enabled()
        round_index = 0
        while True:
            # Saturate tgds under α-applicability.  Each pass materializes
            # the current matches and fires every one that is still
            # α-applicable at its own firing time; newly enabled matches are
            # picked up by the next pass.
            pass_started = time.perf_counter()
            try:
                progressed = True
                while progressed:
                    progressed = False
                    for tgd in tgds:
                        dep_started = (
                            time.perf_counter() if attributing else 0.0
                        )
                        dep_firings = 0
                        pending = [
                            (premise_match, justification_key(tgd, premise_match))
                            for premise_match in tgd.premise_matches(current)
                        ]
                        for premise_match, key in pending:
                            witnesses = alpha.witnesses(key)
                            if tgd.conclusion_present(
                                current, premise_match, witnesses
                            ):
                                continue
                            if steps >= max_steps:
                                return out_of_budget()
                            added = tgd.conclusion_atoms_under(
                                premise_match, witnesses
                            )
                            new_atoms = [
                                atom for atom in added if current.add(atom)
                            ]
                            steps += 1
                            progressed = True
                            firings.inc()
                            dep_firings += 1
                            if ledger is not None:
                                ledger.record_firing(
                                    "alpha",
                                    tgd,
                                    premise_match,
                                    new_atoms,
                                    witnesses,
                                )
                            if trace:
                                binding = tuple(
                                    (variable.name, premise_match[variable])
                                    for variable in tgd.frontier
                                    + tgd.premise_only
                                )
                                log.append(
                                    ChaseStep(
                                        "tgd",
                                        tgd,
                                        binding=binding,
                                        added=new_atoms,
                                    )
                                )
                        if attributing and (pending or dep_firings):
                            # α-witnesses need not be fresh, so nulls are
                            # attributed at the engine level only (the
                            # set-difference count in ``finish``).
                            attribution.record_dependency(
                                attribution.dep_label(tgd),
                                round_index=round_index,
                                triggers=len(pending),
                                firings=dep_firings,
                                seconds=time.perf_counter() - dep_started,
                            )
            finally:
                tgd_stats.record(time.perf_counter() - pass_started)

            peak_atoms = max(peak_atoms, len(current))
            if attribution.heartbeat() is not None:
                attribution.beat(
                    engine="alpha",
                    round_index=round_index,
                    steps=steps,
                    instance_size=len(current),
                    nulls_created=len(
                        set(current.nulls()) - initial_nulls
                    ),
                )
            round_index += 1
            # tgd fixpoint reached: no tgd is α-applicable.  Check egds.
            egd_started = time.perf_counter()
            violating: Optional[Tuple[Egd, Value, Value]] = None
            for egd in egds:
                dep_started = time.perf_counter() if attributing else 0.0
                violation = egd.first_violation(current)
                if attributing:
                    attribution.record_dependency(
                        attribution.dep_label(egd),
                        round_index=round_index - 1,
                        triggers=1 if violation is not None else 0,
                        seconds=time.perf_counter() - dep_started,
                    )
                if violation is not None:
                    violating = (egd, violation[0], violation[1])
                    break

            if violating is None:
                egd_stats.record(time.perf_counter() - egd_started)
                return finish(ChaseStatus.SUCCESS)

            egd, left, right = violating
            direction = Egd.merge_direction(left, right)
            if direction is None:
                egd_stats.record(time.perf_counter() - egd_started)
                return finish(
                    ChaseStatus.FAILURE,
                    f"egd {egd} equated distinct constants {left} and {right}",
                )

            snapshot = current.fingerprint()
            if snapshot in seen_states:
                egd_stats.record(time.perf_counter() - egd_started)
                return finish(
                    ChaseStatus.DIVERGED,
                    "α-chase revisited a state: no successful α-chase exists "
                    "for this α (it must loop forever, cf. Example 4.4)",
                )
            seen_states.add(snapshot)

            old, new = direction
            current.replace_value(old, new)
            steps += 1
            merges.inc()
            if attributing:
                attribution.record_dependency(
                    attribution.dep_label(egd),
                    round_index=round_index - 1,
                    merges=1,
                )
            if ledger is not None:
                ledger.record_merge("alpha", egd, old, new)
            egd_stats.record(time.perf_counter() - egd_started)
            if steps >= max_steps:
                return out_of_budget()
            if trace:
                log.append(ChaseStep("egd", egd, merged=(old, new)))


class AlphaChaseSession:
    """Manual, step-at-a-time α-chase -- Definition 4.1 exposed directly.

    Used by tests and by the worked example of Section 4 to replay the
    exact chase sequences of Example 4.4.  Each call checks applicability
    per the definition and raises if the step is illegal.
    """

    def __init__(self, instance: Instance, alpha: Alpha):
        self.instance = instance.copy()
        self.alpha = alpha
        self.history: List[ChaseStep] = []
        self.failed = False

    def apply_tgd(self, tgd: Tgd, u: Sequence[Value], v: Sequence[Value]) -> None:
        """α-apply ``tgd`` with tuples ū and v̄ (Definition 4.1)."""
        binding = Substitution(
            dict(zip(tgd.frontier, u)) | dict(zip(tgd.premise_only, v))
        )
        if len(u) != len(tgd.frontier) or len(v) != len(tgd.premise_only):
            raise DependencyError("tuple lengths do not match x̄ / ȳ")
        if not self._premise_holds(tgd, binding):
            raise DependencyError(
                f"{tgd} is not α-applicable: premise fails under ū={u}, v̄={v}"
            )
        key = (tgd, tuple(u), tuple(v))
        witnesses = self.alpha.witnesses(key)
        if tgd.conclusion_present(self.instance, binding, witnesses):
            raise DependencyError(
                f"{tgd} is not α-applicable: ψ[ū, ᾱ] already holds"
            )
        added = tgd.conclusion_atoms_under(binding, witnesses)
        new_atoms = [atom for atom in added if self.instance.add(atom)]
        self.history.append(ChaseStep("tgd", tgd, added=new_atoms))

    def _premise_holds(self, tgd: Tgd, binding: Substitution) -> bool:
        if tgd.premise_atoms is not None:
            return all(
                binding.apply(atom) in self.instance
                for atom in tgd.premise_atoms
            )
        from ..logic.evaluation import holds

        assignment = {variable: binding[variable] for variable in binding}
        return holds(tgd.premise_formula, self.instance, assignment)

    def apply_egd(self, egd: Egd, left: Value, right: Value) -> bool:
        """Apply ``egd`` to a violating pair; returns False if it fails."""
        if left == right:
            raise DependencyError("egd application needs two distinct values")
        if (left, right) not in set(egd.violations(self.instance)) and (
            right,
            left,
        ) not in set(egd.violations(self.instance)):
            raise DependencyError(
                f"{egd} cannot be applied: ({left}, {right}) is not a violation"
            )
        direction = Egd.merge_direction(left, right)
        if direction is None:
            self.failed = True
            self.history.append(ChaseStep("egd", egd, merged=(left, right)))
            return False
        old, new = direction
        self.instance.replace_value(old, new)
        self.history.append(ChaseStep("egd", egd, merged=(old, new)))
        return True

    def is_successful_result(self, dependencies: Sequence[Dependency]) -> bool:
        """Definition 4.2(1): result ⊨ Σ and no tgd α-applicable."""
        from .satisfaction import satisfies_all

        if self.failed:
            return False
        tgds, _ = split_dependencies(list(dependencies))
        if any_tgd_alpha_applicable(self.instance, tgds, self.alpha):
            return False
        return satisfies_all(self.instance, dependencies)
