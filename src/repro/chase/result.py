"""Chase outcomes and traces.

Every chase engine returns a :class:`ChaseOutcome` describing how the run
ended (Definition 4.2 distinguishes *successful*, *failing*, and infinite
chases -- we report the latter as *diverged*, detected by a step budget or
by revisiting a state), the resulting instance, and an optional step-by-
step trace used by the worked examples and by tests.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Value


class ChaseStatus(enum.Enum):
    """How a chase run ended."""

    SUCCESS = "success"
    FAILURE = "failure"  # an egd equated two distinct constants
    DIVERGED = "diverged"  # budget exhausted or a state repeated


class ChaseStep:
    """One step of a chase: a tgd firing or an egd application."""

    __slots__ = ("kind", "dependency", "binding", "added", "merged")

    def __init__(
        self,
        kind: str,
        dependency,
        binding: Tuple[Tuple[str, Value], ...] = (),
        added: Sequence[Atom] = (),
        merged: Optional[Tuple[Value, Value]] = None,
    ):
        self.kind = kind  # "tgd" or "egd"
        self.dependency = dependency
        self.binding = binding
        self.added = tuple(added)
        self.merged = merged

    def __repr__(self) -> str:
        if self.kind == "tgd":
            atoms = ", ".join(repr(a) for a in self.added)
            return f"fire {self.dependency.name or 'tgd'}: add {{{atoms}}}"
        old, new = self.merged
        return f"apply {self.dependency.name or 'egd'}: {old} := {new}"


class ChaseOutcome:
    """Result of a chase run.

    Attributes
    ----------
    status:
        :class:`ChaseStatus` -- success, failure, or divergence.
    instance:
        The final instance (for FAILURE/DIVERGED, the state reached when
        the run stopped -- useful for diagnostics).
    steps:
        Number of dependency applications performed.
    trace:
        Step records if tracing was requested, else empty.
    reason:
        Human-readable explanation for non-success outcomes.
    elapsed_seconds:
        Wall time of the run (perf_counter), populated by every engine.
    nulls_created:
        Number of fresh nulls invented by tgd firings during the run.
    rounds:
        Number of outer delta rounds a round-based engine performed
        (semi-naive); 0 for engines that do not count rounds.
    """

    __slots__ = (
        "status",
        "instance",
        "steps",
        "trace",
        "reason",
        "elapsed_seconds",
        "nulls_created",
        "rounds",
    )

    def __init__(
        self,
        status: ChaseStatus,
        instance: Instance,
        steps: int,
        trace: Sequence[ChaseStep] = (),
        reason: str = "",
        *,
        elapsed_seconds: float = 0.0,
        nulls_created: int = 0,
        rounds: int = 0,
    ):
        self.status = status
        self.instance = instance
        self.steps = steps
        self.trace: List[ChaseStep] = list(trace)
        self.reason = reason
        self.elapsed_seconds = elapsed_seconds
        self.nulls_created = nulls_created
        self.rounds = rounds

    @property
    def successful(self) -> bool:
        return self.status is ChaseStatus.SUCCESS

    @property
    def failed(self) -> bool:
        return self.status is ChaseStatus.FAILURE

    @property
    def diverged(self) -> bool:
        return self.status is ChaseStatus.DIVERGED

    def require_success(self) -> Instance:
        """The result instance, or raise if the chase did not succeed."""
        from ..core.errors import ChaseDivergence, ChaseFailure, ReproError

        if self.successful:
            return self.instance
        if self.failed:
            raise ReproError(f"chase failed: {self.reason}")
        raise ChaseDivergence(self.steps, self.reason or "chase diverged")

    def __repr__(self) -> str:
        return (
            f"ChaseOutcome({self.status.value}, steps={self.steps}, "
            f"|I|={len(self.instance)})"
        )
