"""The standard chase (Fagin-Kolaitis-Miller-Popa semantics).

A tgd fires on a premise match only if the conclusion is not *satisfiable*
with any witnesses -- condition (2) of Remark 4.3.  Fresh nulls are
invented for the existential variables of each firing.  Egds are applied
with the merge rule of footnote 4 and fail on distinct constants.

For weakly acyclic settings every standard chase sequence terminates after
polynomially many steps; on success the result (restricted to the target
schema) is the *canonical universal solution*.  On egd failure, no
solution exists at all.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.errors import ChaseDivergence
from ..core.instance import Instance
from ..core.terms import NullFactory
from ..dependencies.base import Dependency, split_dependencies
from ..dependencies.egd import Egd
from ..obs import attribution, counter, gauge, span, span_stats
from ..obs.provenance import active_ledger
from .result import ChaseOutcome, ChaseStatus, ChaseStep

DEFAULT_MAX_STEPS = 200_000


def standard_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
    null_factory: Optional[NullFactory] = None,
) -> ChaseOutcome:
    """Run the standard chase of ``instance`` with ``dependencies``.

    The input instance is not modified.  Strategy: egds take priority over
    tgds and dependencies are tried in the given order, which makes runs
    deterministic; for weakly acyclic settings the final result does not
    depend on the strategy (all sequences terminate, and all successful
    results are hom-equivalent).

    Returns a :class:`ChaseOutcome`; on ``SUCCESS`` the ``instance`` field
    satisfies every dependency.
    """
    tgds, egds = split_dependencies(list(dependencies))
    current = instance.copy()
    factory = null_factory or current.null_factory()
    steps = 0
    nulls_created = 0
    log: List[ChaseStep] = []
    started = time.perf_counter()
    firings = counter("chase.tgd_firings")
    merges = counter("chase.egd_merges")
    null_count = counter("chase.nulls_created")
    ledger = active_ledger()  # None by default: recording is opt-in
    if ledger is not None:
        ledger.record_source(current)
    peak_atoms = len(current)

    def finish(status: ChaseStatus, reason: str = "") -> ChaseOutcome:
        """The single exit path: every verdict carries the same stats."""
        gauge("chase.steps_to_fixpoint").set(steps)
        gauge("instance.nulls").set(len(current.nulls()))
        gauge("chase.peak_atoms").set(max(peak_atoms, len(current)))
        gauge("chase.instance_size").set(len(current))
        return ChaseOutcome(
            status,
            current,
            steps,
            log,
            reason,
            elapsed_seconds=time.perf_counter() - started,
            nulls_created=nulls_created,
        )

    def out_of_budget() -> ChaseOutcome:
        return finish(
            ChaseStatus.DIVERGED,
            f"standard chase exceeded {max_steps} steps",
        )

    with span("chase.standard"):
        # Phase timing only (egds vs tgds), recorded once per outer
        # iteration -- a span per dependency pass costs enough relative
        # to the pass itself to violate the telemetry overhead budget.
        egd_stats = span_stats("egds") if egds else None
        tgd_stats = span_stats("tgds")
        # Per-dependency attribution is opt-in; the flag is read once
        # per run so the default loop pays one local bool per tgd pass.
        attributing = attribution.enabled()
        round_index = 0
        while True:
            # Apply egds to a fixpoint (priority over tgds).
            if egd_stats is not None:
                pass_started = time.perf_counter()
                try:
                    while True:
                        if steps >= max_steps:
                            return out_of_budget()
                        egd_step = _apply_one_egd(
                            current,
                            egds,
                            log if trace else None,
                            ledger,
                            round_index=round_index if attributing else None,
                        )
                        if egd_step == "failed":
                            return finish(
                                ChaseStatus.FAILURE,
                                "an egd equated two distinct constants",
                            )
                        if egd_step != "applied":
                            break
                        merges.inc()
                        steps += 1
                finally:
                    egd_stats.record(time.perf_counter() - pass_started)
            elif steps >= max_steps:
                return out_of_budget()

            # One batched tgd pass: fire every trigger that is (still)
            # unsatisfied at its own firing time.  This is a valid standard
            # chase sequence -- each firing is checked against the current
            # instance -- and avoids re-enumerating all matches per step.
            fired_any = False
            pass_started = time.perf_counter()
            try:
                for tgd in tgds:
                    dep_started = time.perf_counter() if attributing else 0.0
                    dep_firings = 0
                    dep_nulls = 0
                    triggers = list(tgd.premise_matches(current))
                    for premise_match in triggers:
                        if steps >= max_steps:
                            return out_of_budget()
                        if tgd.conclusion_holds(current, premise_match):
                            continue
                        witnesses = factory.fresh_tuple(len(tgd.existential))
                        added = tgd.conclusion_atoms_under(
                            premise_match, witnesses
                        )
                        new_atoms = [
                            atom for atom in added if current.add(atom)
                        ]
                        steps += 1
                        fired_any = True
                        firings.inc()
                        dep_firings += 1
                        dep_nulls += len(witnesses)
                        nulls_created += len(witnesses)
                        null_count.inc(len(witnesses))
                        if ledger is not None:
                            ledger.record_firing(
                                "standard",
                                tgd,
                                premise_match,
                                new_atoms,
                                witnesses,
                            )
                        if trace:
                            binding = tuple(
                                (variable.name, premise_match[variable])
                                for variable in tgd.frontier + tgd.premise_only
                            )
                            log.append(
                                ChaseStep(
                                    "tgd", tgd, binding=binding, added=new_atoms
                                )
                            )
                    if attributing and (triggers or dep_firings):
                        attribution.record_dependency(
                            attribution.dep_label(tgd),
                            round_index=round_index,
                            triggers=len(triggers),
                            firings=dep_firings,
                            nulls=dep_nulls,
                            seconds=time.perf_counter() - dep_started,
                        )
            finally:
                tgd_stats.record(time.perf_counter() - pass_started)

            peak_atoms = max(peak_atoms, len(current))
            attribution.beat(
                engine="standard",
                round_index=round_index,
                steps=steps,
                instance_size=len(current),
                nulls_created=nulls_created,
            )
            round_index += 1
            if not fired_any:
                return finish(ChaseStatus.SUCCESS)


def _apply_one_egd(
    instance: Instance,
    egds: Sequence[Egd],
    log: Optional[List[ChaseStep]],
    ledger=None,
    round_index: Optional[int] = None,
) -> str:
    """Apply the first violated egd.  Returns 'applied', 'failed' or 'none'.

    ``round_index`` is non-None only under attributed execution; it
    switches on per-egd timing and trigger/merge attribution.
    """
    attributing = round_index is not None
    for egd in egds:
        dep_started = time.perf_counter() if attributing else 0.0
        violation = egd.first_violation(instance)
        if violation is None:
            if attributing:
                attribution.record_dependency(
                    attribution.dep_label(egd),
                    round_index=round_index,
                    seconds=time.perf_counter() - dep_started,
                )
            continue
        left, right = violation
        direction = Egd.merge_direction(left, right)
        if direction is None:
            return "failed"
        old, new = direction
        instance.replace_value(old, new)
        if attributing:
            attribution.record_dependency(
                attribution.dep_label(egd),
                round_index=round_index,
                triggers=1,
                merges=1,
                seconds=time.perf_counter() - dep_started,
            )
        if ledger is not None:
            ledger.record_merge("standard", egd, old, new)
        if log is not None:
            log.append(ChaseStep("egd", egd, merged=(old, new)))
        return "applied"
    return "none"


def chase_to_solution(
    source: Instance,
    dependencies: Sequence[Dependency],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Instance]:
    """Chase and return the result instance, or None if the chase failed.

    Raises :class:`ChaseDivergence` if the budget is exhausted -- callers
    chasing weakly acyclic settings should treat that as a bug or an
    undersized budget, not as "no solution".
    """
    outcome = standard_chase(source, dependencies, max_steps=max_steps)
    if outcome.failed:
        return None
    if outcome.diverged:
        raise ChaseDivergence(outcome.steps, outcome.reason)
    return outcome.instance
