"""Chase engines: standard chase, oblivious chase, and the α-chase."""

from .alpha import (
    Alpha,
    AlphaChaseSession,
    ExplicitAlpha,
    FreshAlpha,
    JustificationKey,
    alpha_applicable_matches,
    alpha_chase,
    any_tgd_alpha_applicable,
    justification_key,
)
from .explain import (
    ExplainedStep,
    explain,
    narrate,
    narrate_why,
    survival,
    why_not,
)
from .oblivious import fire_all_source_justifications, oblivious_chase
from .result import ChaseOutcome, ChaseStatus, ChaseStep
from .sharding import sharded_chase
from .satisfaction import (
    satisfies_all,
    satisfies_egd,
    satisfies_tgd,
    violated_tgd_match,
    violations,
)
from .standard import chase_to_solution, standard_chase

__all__ = [
    "Alpha",
    "AlphaChaseSession",
    "ChaseOutcome",
    "ChaseStatus",
    "ChaseStep",
    "ExplainedStep",
    "ExplicitAlpha",
    "FreshAlpha",
    "explain",
    "narrate",
    "narrate_why",
    "survival",
    "why_not",
    "JustificationKey",
    "alpha_applicable_matches",
    "alpha_chase",
    "any_tgd_alpha_applicable",
    "chase_to_solution",
    "fire_all_source_justifications",
    "justification_key",
    "oblivious_chase",
    "satisfies_all",
    "satisfies_egd",
    "satisfies_tgd",
    "sharded_chase",
    "standard_chase",
    "violated_tgd_match",
    "violations",
]
