"""Semi-naive standard chase: delta-driven trigger discovery.

The batched engine in :mod:`repro.chase.standard` re-enumerates *all*
premise matches on every pass; on long chases most of those matches are
old news.  This engine applies the classic semi-naive idea from Datalog
evaluation: a premise match can be *new* only if it uses at least one
atom added (or rewritten) since the previous pass, so each pass seeds
the matcher from the delta:

    for every premise atom position p of a tgd,
        for every delta atom unifiable with p,
            complete the match against the full instance.

Egd applications rewrite atoms; rewritten atoms re-enter the delta so
matches they enable are found again.  The engine produces a valid
standard chase sequence (every firing is checked against the current
instance), hence for weakly acyclic settings its result is a canonical
universal solution, hom-equivalent to the batched engine's.

``seminaive_chase`` mirrors :func:`repro.chase.standard.standard_chase`'s
signature and verdicts; the benchmark module ``bench_seminaive.py``
races the two.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, Substitution
from ..core.instance import Instance
from ..core.terms import NullFactory, Value
from ..dependencies.base import Dependency, split_dependencies
from ..dependencies.egd import Egd
from ..dependencies.tgd import Tgd
from ..logic.matching import match
from ..obs import attribution, counter, gauge, span, span_stats
from ..obs.provenance import active_ledger
from .result import ChaseOutcome, ChaseStatus, ChaseStep

DEFAULT_MAX_STEPS = 200_000


def _unify_seed(pattern: Atom, fact: Atom) -> Optional[Dict]:
    """Bindings from matching one premise atom against one delta fact."""
    if pattern.relation != fact.relation:
        return None
    bound: Dict = {}
    for pattern_arg, fact_arg in zip(pattern.args, fact.args):
        if isinstance(pattern_arg, Value):
            if pattern_arg != fact_arg:
                return None
        else:
            known = bound.get(pattern_arg)
            if known is None:
                bound[pattern_arg] = fact_arg
            elif known != fact_arg:
                return None
    return bound


def _seed_decomposition(tgd: Tgd) -> Optional[Tuple]:
    """Per-tgd delta-join plan, computed once per chase run.

    For every premise-atom position ``p`` the pair ``(pattern_p, rest_p)``
    where ``rest_p`` is the premise without position ``p``.  The same
    tuple objects are reused across every pass, so the completion join
    for each seed position compiles exactly once and every later pass is
    a pure plan-cache hit (keyed by the seed atom's bound-variable set).
    Returns None for FO premises, which have no atom list to seed from.
    """
    if tgd.premise_atoms is None:
        return None
    atoms = tgd.premise_atoms
    return tuple(
        (atoms[i], atoms[:i] + atoms[i + 1 :]) for i in range(len(atoms))
    )


def _delta_matches(
    tgd: Tgd,
    instance: Instance,
    delta: Sequence[Atom],
    seeds: Optional[Tuple] = None,
) -> Iterable[Substitution]:
    """Premise matches of ``tgd`` that use at least one delta atom.

    Deduplicates across seed positions (a match touching two delta atoms
    would otherwise be reported twice).  ``seeds`` is the precomputed
    :func:`_seed_decomposition`; omitted, it is derived on the fly.
    """
    if tgd.premise_atoms is None:
        # FO premise (s-t tgd): fires only off source atoms; if the
        # delta contains any premise relation, fall back to a full scan.
        relations = {r.name for r in tgd.premise_relations()}
        if any(fact.relation.name in relations for fact in delta):
            yield from tgd.premise_matches(instance)
        return

    if seeds is None:
        seeds = _seed_decomposition(tgd)
    seen: Set[Tuple[Value, ...]] = set()
    all_variables = tuple(tgd.frontier) + tuple(tgd.premise_only)
    for pattern, rest in seeds:
        for fact in delta:
            bound = _unify_seed(pattern, fact)
            if bound is None:
                continue
            initial = Substitution(bound)
            for completed in match(rest, instance, initial=initial):
                key = completed.as_tuple(all_variables)
                if key not in seen:
                    seen.add(key)
                    yield completed


def seminaive_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    trace: bool = False,
    null_factory: Optional[NullFactory] = None,
    initial_delta: Optional[Sequence[Atom]] = None,
) -> ChaseOutcome:
    """Standard chase with semi-naive trigger discovery.

    Same contract as :func:`repro.chase.standard.standard_chase`.

    ``initial_delta`` seeds the first delta round with a subset of the
    instance instead of all of it -- the incremental re-solve path
    (:mod:`repro.incremental`) passes just the edited atoms (plus the
    re-derivation frontier) so a continuation chase only inspects
    triggers that can involve them.  ``None`` (the default) keeps the
    from-scratch behavior.  Egds are still checked globally every
    round, so an edit that enables a merge is never missed.
    """
    tgds, egds = split_dependencies(list(dependencies))
    # Delta-join decompositions, once per run: each (seed, rest) pair
    # keeps its identity across passes so completions hit the plan cache.
    seed_plans = {id(tgd): _seed_decomposition(tgd) for tgd in tgds}
    current = instance.copy()
    factory = null_factory or current.null_factory()
    steps = 0
    nulls_created = 0
    log: List[ChaseStep] = []
    delta: List[Atom] = (
        list(current)
        if initial_delta is None
        else [item for item in initial_delta if item in current]
    )
    started = time.perf_counter()
    firings = counter("chase.tgd_firings")
    merges = counter("chase.egd_merges")
    null_count = counter("chase.nulls_created")
    ledger = active_ledger()  # None by default: recording is opt-in
    if ledger is not None:
        ledger.record_source(current)
    peak_atoms = len(current)

    def finish(status: ChaseStatus, reason: str = "") -> ChaseOutcome:
        gauge("chase.steps_to_fixpoint").set(steps)
        gauge("instance.nulls").set(len(current.nulls()))
        gauge("chase.peak_atoms").set(max(peak_atoms, len(current)))
        gauge("chase.instance_size").set(len(current))
        return ChaseOutcome(
            status,
            current,
            steps,
            log,
            reason,
            elapsed_seconds=time.perf_counter() - started,
            nulls_created=nulls_created,
            rounds=round_index,
        )

    def out_of_budget() -> ChaseOutcome:
        return finish(
            ChaseStatus.DIVERGED,
            f"semi-naive chase exceeded {max_steps} steps",
        )

    with span("chase.seminaive"):
        # Phase timing only (egds vs tgds), once per outer iteration --
        # same overhead-budget reasoning as the batched engine.
        egd_stats = span_stats("egds") if egds else None
        tgd_stats = span_stats("tgds")
        attributing = attribution.enabled()
        round_index = 0
        while True:
            # Egd fixpoint first; rewritten atoms re-enter the delta.
            if egd_stats is not None:
                pass_started = time.perf_counter()
                merges_before = steps
                failed, steps, merged_atoms = _egd_fixpoint(
                    current,
                    egds,
                    steps,
                    max_steps,
                    log if trace else None,
                    ledger,
                    round_index=round_index if attributing else None,
                )
                egd_stats.record(time.perf_counter() - pass_started)
                merges.inc(steps - merges_before)
                if failed == "failed":
                    return finish(
                        ChaseStatus.FAILURE,
                        "an egd equated two distinct constants",
                    )
                if failed == "budget":
                    return out_of_budget()
                delta.extend(merged_atoms)
            elif steps >= max_steps:
                return out_of_budget()

            if not delta:
                return finish(ChaseStatus.SUCCESS)

            new_delta: List[Atom] = []
            pass_started = time.perf_counter()
            try:
                for tgd in tgds:
                    dep_started = time.perf_counter() if attributing else 0.0
                    dep_firings = 0
                    dep_nulls = 0
                    triggers = list(
                        _delta_matches(
                            tgd, current, delta, seed_plans[id(tgd)]
                        )
                    )
                    for premise_match in triggers:
                        if steps >= max_steps:
                            return out_of_budget()
                        if tgd.conclusion_holds(current, premise_match):
                            continue
                        witnesses = factory.fresh_tuple(len(tgd.existential))
                        added = tgd.conclusion_atoms_under(
                            premise_match, witnesses
                        )
                        fresh = [atom for atom in added if current.add(atom)]
                        new_delta.extend(fresh)
                        steps += 1
                        firings.inc()
                        dep_firings += 1
                        dep_nulls += len(witnesses)
                        nulls_created += len(witnesses)
                        null_count.inc(len(witnesses))
                        if ledger is not None:
                            ledger.record_firing(
                                "seminaive",
                                tgd,
                                premise_match,
                                fresh,
                                witnesses,
                            )
                        if trace:
                            binding = tuple(
                                (variable.name, premise_match[variable])
                                for variable in tgd.frontier + tgd.premise_only
                            )
                            log.append(
                                ChaseStep(
                                    "tgd", tgd, binding=binding, added=fresh
                                )
                            )
                    if attributing and (triggers or dep_firings):
                        attribution.record_dependency(
                            attribution.dep_label(tgd),
                            round_index=round_index,
                            triggers=len(triggers),
                            firings=dep_firings,
                            nulls=dep_nulls,
                            seconds=time.perf_counter() - dep_started,
                        )
            finally:
                tgd_stats.record(time.perf_counter() - pass_started)
            peak_atoms = max(peak_atoms, len(current))
            attribution.beat(
                engine="seminaive",
                round_index=round_index,
                steps=steps,
                instance_size=len(current),
                nulls_created=nulls_created,
            )
            round_index += 1
            delta = new_delta


def _egd_fixpoint(
    instance: Instance,
    egds: Sequence[Egd],
    steps: int,
    max_steps: int,
    log: Optional[List[ChaseStep]],
    ledger=None,
    round_index: Optional[int] = None,
) -> Tuple[str, int, List[Atom]]:
    """Apply egds to fixpoint; returns (verdict, steps, rewritten atoms).

    Verdict is "ok", "failed" or "budget".  Rewritten atoms are those
    containing the surviving value of any merge -- a superset of the
    atoms whose shape changed, which is what delta correctness needs.
    ``round_index`` is non-None only under attributed execution and
    switches on per-egd timing and merge attribution.
    """
    attributing = round_index is not None
    rewritten: List[Atom] = []
    while True:
        if steps >= max_steps:
            return "budget", steps, rewritten
        violation = None
        dep_started = time.perf_counter() if attributing else 0.0
        for egd in egds:
            pair = egd.first_violation(instance)
            if pair is not None:
                violation = (egd, pair)
                break
            if attributing:
                now = time.perf_counter()
                attribution.record_dependency(
                    attribution.dep_label(egd),
                    round_index=round_index,
                    seconds=now - dep_started,
                )
                dep_started = now
        if violation is None:
            return "ok", steps, rewritten
        egd, (left, right) = violation
        direction = Egd.merge_direction(left, right)
        if direction is None:
            return "failed", steps, rewritten
        old, new = direction
        instance.replace_value(old, new)
        steps += 1
        if attributing:
            attribution.record_dependency(
                attribution.dep_label(egd),
                round_index=round_index,
                triggers=1,
                merges=1,
                seconds=time.perf_counter() - dep_started,
            )
        if ledger is not None:
            ledger.record_merge("seminaive", egd, old, new)
        if log is not None:
            log.append(ChaseStep("egd", egd, merged=(old, new)))
        for atom in instance:
            if new in atom.args:
                rewritten.append(atom)
