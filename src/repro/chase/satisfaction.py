"""Checking that an instance satisfies a set of dependencies."""

from __future__ import annotations

from typing import Iterable, List

from ..core.instance import Instance
from ..dependencies.base import Dependency, split_dependencies
from ..dependencies.egd import Egd
from ..dependencies.tgd import Tgd


def violated_tgd_match(instance: Instance, tgd: Tgd):
    """A premise match of ``tgd`` whose conclusion fails, or None.

    "Fails" uses the standard (existential) reading: no witnesses for z̄
    exist at all, cf. condition (2) in Remark 4.3.
    """
    for premise_match in tgd.premise_matches(instance):
        if not tgd.conclusion_holds(instance, premise_match):
            return premise_match
    return None


def satisfies_tgd(instance: Instance, tgd: Tgd) -> bool:
    """``I ⊨ d`` for a tgd d."""
    return violated_tgd_match(instance, tgd) is None


def satisfies_egd(instance: Instance, egd: Egd) -> bool:
    """``I ⊨ d`` for an egd d."""
    return egd.is_satisfied(instance)


def satisfies_all(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """``I ⊨ Σ``."""
    tgds, egds = split_dependencies(list(dependencies))
    return all(satisfies_tgd(instance, d) for d in tgds) and all(
        satisfies_egd(instance, d) for d in egds
    )


def violations(
    instance: Instance, dependencies: Iterable[Dependency]
) -> List[str]:
    """Human-readable descriptions of all violated dependencies.

    Used by error messages and by tests that assert *why* something is
    not a solution.
    """
    problems: List[str] = []
    tgds, egds = split_dependencies(list(dependencies))
    for tgd in tgds:
        premise_match = violated_tgd_match(instance, tgd)
        if premise_match is not None:
            problems.append(f"tgd {tgd} violated under {premise_match}")
    for egd in egds:
        violation = egd.first_violation(instance)
        if violation is not None:
            left, right = violation
            problems.append(f"egd {egd} violated: {left} ≠ {right}")
    return problems
