"""Partitioned (sharded) chase.

The source instance of a data exchange problem frequently decomposes
into value-connected components -- records about unrelated entities.  A
dependency whose premise is *component-local* (connected atom graph, see
:func:`repro.dependencies.graph.shard_locality`) and whose conclusion is
anchored to the premise match can only ever fire within one component,
so components can be chased independently: in parallel on the
:class:`repro.engine.Executor` pool, and -- just as importantly -- on
instances a fraction of the size, which avoids the superlinear cost of
trigger matching against the whole union.

The protocol is:

1. statically split the dependencies into shard-local and cross-shard
   sets (:func:`shard_locality`);
2. decompose the source into components (:meth:`Instance.components`)
   and group them into one shard task per pool slot;
3. chase every shard with the *local* dependencies only;
4. merge the shard results with nulls renamed apart (deterministic
   contiguous ranges in shard order, so the merge is fingerprint-stable);
5. when cross-shard dependencies exist, run one *residual* sequential
   chase of the merged instance with the full dependency set -- local
   dependencies are included because a cross-shard firing can enable new
   local triggers.

A shard FAILURE (an egd equated two distinct constants) is definitive --
failing chases witness that no solution exists regardless of order -- and
is returned immediately.  Unshardable inputs (analysis guard failed, a
single component, a non-ground instance, no local dependencies at all,
or an active provenance ledger -- worker-side steps could not be
recorded faithfully) fall back to one sequential chase, counted in
``chase.shard_fallbacks``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.terms import Null
from ..dependencies.base import Dependency
from ..dependencies.graph import ShardAnalysis, shard_locality
from ..obs import attribution, counter, gauge, histogram, span
from ..obs.provenance import active_ledger
from .result import ChaseOutcome, ChaseStatus
from .standard import DEFAULT_MAX_STEPS


def _engine(name: str):
    from .seminaive import seminaive_chase
    from .standard import standard_chase

    engines = {"standard": standard_chase, "seminaive": seminaive_chase}
    try:
        return engines[name]
    except KeyError:
        raise ValueError(
            f"unknown chase engine {name!r}; pick one of {sorted(engines)}"
        ) from None


def _chase_shard(
    shards: Tuple[Instance, ...],
    dependencies: Tuple[Dependency, ...],
    engine: str,
    max_steps: int,
) -> List[ChaseOutcome]:
    """Worker task: chase each component of one shard group in order.

    Module-level so the payload pickles; components are chased one at a
    time (never as a union) to keep trigger matching component-sized.
    Traces are not requested -- the merged outcome cannot interleave
    per-shard logs meaningfully.
    """
    chase = _engine(engine)
    counter("chase.shard_chases").inc(len(shards))
    if not attribution.enabled():
        return [
            chase(shard, list(dependencies), max_steps=max_steps)
            for shard in shards
        ]
    # Attributed mode: record one cost row per component.  These rows
    # travel back through the worker-state blob and are the per-shard
    # cost profile the adaptive scheduler needs (size in, cost out).
    outcomes = []
    for shard in shards:
        shard_started = time.perf_counter()
        outcome = chase(shard, list(dependencies), max_steps=max_steps)
        attribution.record_component(
            "chase.shard",
            size=len(shard),
            steps=outcome.steps,
            nulls=outcome.nulls_created,
            seconds=time.perf_counter() - shard_started,
        )
        outcomes.append(outcome)
    return outcomes


def _group_shards(
    components: List[Instance], groups: int
) -> List[Tuple[Instance, ...]]:
    """Split components into at most ``groups`` contiguous, even groups."""
    groups = max(1, min(groups, len(components)))
    out: List[Tuple[Instance, ...]] = []
    base, extra = divmod(len(components), groups)
    start = 0
    for index in range(groups):
        width = base + (1 if index < extra else 0)
        out.append(tuple(components[start : start + width]))
        start += width
    return out


def _merge_outcomes(
    outcomes: List[ChaseOutcome],
) -> Tuple[Instance, int, int]:
    """Union the shard results with nulls renamed apart.

    Shard chases invent nulls independently (each starts from a ground
    component, so each numbers its nulls from zero); the merge renames
    shard ``k``'s nulls to the next contiguous range, in shard order, so
    the merged instance is a deterministic function of the ordered shard
    results.
    """
    merged = Instance()
    next_ident = 0
    steps = 0
    nulls_created = 0
    for outcome in outcomes:
        steps += outcome.steps
        nulls_created += outcome.nulls_created
        nulls = sorted(outcome.instance.nulls())
        renaming: Dict[Null, Null] = {
            old: Null(next_ident + rank) for rank, old in enumerate(nulls)
        }
        next_ident += len(nulls)
        shard_instance = (
            outcome.instance.rename_values(renaming)
            if renaming
            else outcome.instance
        )
        merged.add_all(shard_instance)
    return merged, steps, nulls_created


def sharded_chase(
    instance: Instance,
    dependencies: Sequence[Dependency],
    *,
    executor=None,
    engine: str = "standard",
    max_steps: int = DEFAULT_MAX_STEPS,
    analysis: Optional[ShardAnalysis] = None,
) -> ChaseOutcome:
    """Chase ``instance`` by independent shards, with a residual pass.

    Semantically equivalent to ``engine(instance, dependencies)``: on
    SUCCESS the result satisfies every dependency and is a canonical
    universal solution of the same problem (same fp/v1 canonical
    fingerprint as the sequential run).  ``max_steps`` bounds each shard
    chase and the residual pass individually.

    ``executor`` is a :class:`repro.engine.Executor` (or None); shard
    groups are dispatched through it, one group per pool slot, with
    worker telemetry merged back by the executor harness.
    """
    deps = list(dependencies)
    if analysis is None:
        analysis = shard_locality(deps)
    components = instance.components() if instance.is_ground else []
    if (
        not analysis.shardable
        or not analysis.local
        or len(components) <= 1
        # An active provenance ledger wins over parallelism: shard
        # chases run in other processes (or rename nulls at merge
        # time), so their steps could not be recorded faithfully.
        or active_ledger() is not None
    ):
        counter("chase.shard_fallbacks").inc()
        gauge("chase.shards").set(1)
        return _engine(engine)(instance, deps, max_steps=max_steps)

    with span("chase.sharded"):
        gauge("chase.shards").set(len(components))
        workers = getattr(executor, "workers", 1) or 1
        # One group per pool slot when parallel; per-component groups
        # serially (grouping buys nothing without IPC to amortize).
        group_count = workers * 2 if workers > 1 else len(components)
        groups = _group_shards(components, group_count)
        local = tuple(analysis.local)
        tasks = [(group, local, engine, max_steps) for group in groups]
        if executor is not None:
            grouped = executor.map_tasks(
                _chase_shard, tasks, label="chase.shard"
            )
        else:
            grouped = [_chase_shard(*task) for task in tasks]
        outcomes = [outcome for group in grouped for outcome in group]

        for outcome in outcomes:
            if outcome.status is ChaseStatus.FAILURE:
                return outcome
        merged, steps, nulls_created = _merge_outcomes(outcomes)
        for outcome in outcomes:
            if outcome.status is ChaseStatus.DIVERGED:
                return ChaseOutcome(
                    ChaseStatus.DIVERGED,
                    merged,
                    steps,
                    reason=outcome.reason,
                    nulls_created=nulls_created,
                )

        if not analysis.cross:
            # Every dependency is component-local and every shard reached
            # a fixpoint, so the union is already a fixpoint: any premise
            # match of a local dependency lies within one component.
            return ChaseOutcome(
                ChaseStatus.SUCCESS, merged, steps, nulls_created=nulls_created
            )

        residual_started = time.perf_counter()
        with span("chase.residual"):
            residual = _engine(engine)(
                merged,
                deps,
                max_steps=max_steps,
                null_factory=merged.null_factory(),
            )
        histogram("chase.residual_pass_seconds").record(
            time.perf_counter() - residual_started
        )
        return ChaseOutcome(
            residual.status,
            residual.instance,
            steps + residual.steps,
            reason=residual.reason,
            nulls_created=nulls_created + residual.nulls_created,
        )
