"""Partitioned, block-parallel core computation.

:func:`repro.homomorphism.blocks.blockwise_core` already minimizes one
Gaifman block at a time, but every block is matched against the *whole*
instance -- on an instance with many value-connected components the cost
of each block therefore grows with the total size, making the core pass
superlinear in the number of components.  This module removes that
coupling and adds process parallelism on top:

* the instance is split into value components (:meth:`Instance.components`);
* each component's blocks are minimized against that component only,
  with per-component work dispatched to the :class:`repro.engine.Executor`
  pool (match plans are recompiled worker-side -- patterns are tiny);
* the minimized components are unioned; the union is the exact core.

Exactness hinges on one guard.  A homomorphism preserves value
connectivity, so it maps each component *entirely* into a single
component; when a component contains a constant, its image contains that
constant, hence is the component itself.  When every component carries
at least one constant, endomorphisms therefore decompose componentwise
and ``core(A ∪ B) = core(A) ∪ core(B)``.  Instances with an all-null
component (which could fold into any other component) fall back to the
global blockwise pass, counted in ``core.partition_fallbacks``.  Within
a component the exact ``fold_step`` verification of the blockwise
algorithm still runs, so the result is always exactly the core -- the
partition is a speedup, never an approximation.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from ..core.instance import Instance
from ..obs import attribution, counter, span
from ..obs.provenance import active_ledger
from .blocks import _minimize_block, blockwise_core, null_blocks
from .core_computation import core as global_core
from .core_computation import fold_step


def _partitionable(components: List[Instance]) -> bool:
    """True iff componentwise minimization is exact.

    Requires every component to mention a constant: homomorphisms map
    components into components (connectivity is preserved), and a
    constant pins a component's image to the component itself.
    """
    return all(
        any(atom.constants for atom in component) for component in components
    )


def _minimize_component(component: Instance) -> Instance:
    """The exact core of one value component (blockwise + verification).

    The body of :func:`repro.homomorphism.blocks.blockwise_core`, run on
    a component instead of the full instance; ``core.blocks_parallel``
    counts the per-block minimizations performed (merged back from
    workers by the executor harness).
    """
    current = component.copy()
    blocks = null_blocks(current)
    counter("core.blocks_parallel").inc(len(blocks))
    for block in blocks:
        live = frozenset(block & current.nulls())
        if not live:
            continue
        minimized = _minimize_block(current, live)
        if minimized is not None:
            current = minimized
    remainder = fold_step(current)
    if remainder is None:
        return current
    return global_core(remainder)


def _minimize_components(components: Tuple[Instance, ...]) -> List[Instance]:
    """Worker task: minimize each component of one group, in order."""
    if not attribution.enabled():
        return [_minimize_component(component) for component in components]
    # Attributed mode: one cost row per component (size in, retained
    # size and seconds out), merged back by the executor harness.
    minimized = []
    for component in components:
        component_started = time.perf_counter()
        result = _minimize_component(component)
        attribution.record_component(
            "core.partition",
            size=len(component),
            steps=len(component) - len(result),
            seconds=time.perf_counter() - component_started,
        )
        minimized.append(result)
    return minimized


def _group_components(
    components: List[Instance], groups: int
) -> List[Tuple[Instance, ...]]:
    """At most ``groups`` contiguous groups of roughly equal atom count.

    Contiguous assignment keeps the layout deterministic; balancing by
    atom count (not component count) evens out skewed instances.
    """
    groups = max(1, min(groups, len(components)))
    total = sum(len(component) for component in components)
    target = total / groups
    out: List[Tuple[Instance, ...]] = []
    bucket: List[Instance] = []
    weight = 0
    for component in components:
        bucket.append(component)
        weight += len(component)
        if weight >= target and len(out) < groups - 1:
            out.append(tuple(bucket))
            bucket, weight = [], 0
    if bucket:
        out.append(tuple(bucket))
    return out


def partitioned_core(instance: Instance, executor=None) -> Instance:
    """The core of ``instance``, computed per value component.

    Exact for every input (see the module docstring for the guard and
    fallback).  ``executor`` is a :class:`repro.engine.Executor` or
    None; component groups are dispatched through it when it is
    parallel, otherwise minimized in-process.  The result has the same
    fp/v1 canonical fingerprint as ``blockwise_core(instance)``.
    """
    with span("core.partitioned"):
        components = instance.components()
        if len(components) <= 1 or not _partitionable(components):
            counter("core.partition_fallbacks").inc()
            return blockwise_core(instance)

        # Ground components have no blocks to fold; skip the dispatch.
        ground = [c for c in components if c.is_ground]
        foldable = [c for c in components if not c.is_ground]

        workers = getattr(executor, "workers", 1) or 1
        # Retraction records cannot cross the process boundary, so an
        # active provenance ledger keeps minimization in-process (the
        # partition itself is still applied -- it is ledger-safe).
        if (
            executor is not None
            and workers > 1
            and len(foldable) > 1
            and active_ledger() is None
        ):
            groups = _group_components(foldable, workers * 2)
            minimized_groups = executor.map_tasks(
                _minimize_components,
                [(group,) for group in groups],
                label="core.partition",
            )
            minimized = [
                component
                for group in minimized_groups
                for component in group
            ]
        else:
            minimized = _minimize_components(tuple(foldable))

        result = Instance()
        for component in ground:
            result.add_all(component)
        for component in minimized:
            result.add_all(component)
        return result
