"""Homomorphisms, endomorphisms, retracts, and cores."""

from .blocks import block_atoms, block_statistics, blockwise_core, null_blocks
from .core_computation import core, fold_step, is_core, retracts_to
from .parallel import partitioned_core
from .search import (
    Homomorphism,
    apply_homomorphism,
    endomorphisms,
    find_homomorphism,
    has_homomorphism,
    hom_equivalent,
    homomorphisms,
    is_homomorphism,
    is_retract_of,
)

__all__ = [
    "Homomorphism",
    "apply_homomorphism",
    "block_atoms",
    "block_statistics",
    "blockwise_core",
    "core",
    "null_blocks",
    "endomorphisms",
    "find_homomorphism",
    "fold_step",
    "has_homomorphism",
    "hom_equivalent",
    "homomorphisms",
    "is_core",
    "is_homomorphism",
    "is_retract_of",
    "partitioned_core",
    "retracts_to",
]
