"""Core computation by endomorphism folding.

The *core* of an instance I (Hell-Nešetřil, reference [9] of the paper) is
a subinstance J ⊆ I with a homomorphism I → J such that no proper
subinstance of J admits a homomorphism from J.  Every finite instance has
a core, unique up to renaming of nulls.

Algorithm
---------
Repeatedly look for an atom A that can be *folded away*: a homomorphism
from I into I ∖ {A}.  If one exists, replace I by its image (a proper
subinstance missing A) and continue; when no atom can be folded away, I is
its own core:

* if I were not a core there would be a proper endomorphism h with
  h(I) ⊊ I, so some atom A ∈ I ∖ h(I) could be folded away;
* constants are fixed by homomorphisms, so atoms containing only
  constants can never be dropped -- the search skips them.

This is simple and exact; it is worst-case exponential (homomorphism
checks are NP-hard in general), unlike the polynomial Gottlob-Nash
algorithm the paper cites [8], but on chase results with the indexed
matcher it is fast at every scale our benchmarks use (see DESIGN.md,
"Deviations").
"""

from __future__ import annotations

from typing import List, Optional

from ..core.atoms import Atom
from ..core.instance import Instance
from ..obs import counter, span
from ..obs.provenance import active_ledger
from .search import canonical_pattern, has_homomorphism, homomorphism_via_pattern

# Prefetched handles (counters survive ``repro.obs.reset``): fold_step
# runs once per retained atom per fold round, so per-call registry
# lookups would add up on large canonical solutions.
_RETRACTS = counter("core.retract_attempts")
_FOLDS = counter("core.folds")


def _foldable_atoms(instance: Instance) -> List[Atom]:
    """Atoms that could possibly be dropped: those containing a null."""
    return [item for item in instance.sorted_atoms() if item.nulls]


def fold_step(instance: Instance) -> Optional[Instance]:
    """One folding step: return a proper retract of ``instance``, or None.

    Tries to drop each null-containing atom; on success returns the
    *image* of the found homomorphism (which may drop several atoms at
    once, accelerating convergence).

    The canonical pattern of ``instance`` is computed once and reused
    for every retract attempt (each attempt then hits the plan cache),
    and instead of copying the instance per attempt a single working
    copy is mutated -- drop the atom, search, put it back -- so a round
    over n atoms costs one copy, not n.
    """
    foldable = _foldable_atoms(instance)
    if not foldable:
        return None
    pattern, back = canonical_pattern(instance)
    working = instance.copy()
    for item in foldable:
        working.discard(item)
        _RETRACTS.inc()
        mapping = homomorphism_via_pattern(pattern, back, working)
        working.add(item)
        if mapping is not None:
            _FOLDS.inc()
            image = instance.rename_values(mapping)
            ledger = active_ledger()
            if ledger is not None:
                ledger.record_retraction(
                    "folding", set(instance) - set(image), mapping
                )
            return image
    return None


def core(instance: Instance) -> Instance:
    """The core of ``instance`` (up to renaming of nulls, deterministic).

    >>> from repro.logic import parse_instance
    >>> inst = parse_instance("E('a', #1), E('a', 'b')")
    >>> core(inst)
    Instance({E(a, b)})
    """
    with span("core.folding"):
        current = instance.copy()
        while True:
            folded = fold_step(current)
            if folded is None:
                return current
            current = folded


def is_core(instance: Instance) -> bool:
    """True iff the instance equals its own core.

    Checked directly: no null-containing atom can be folded away.
    """
    return fold_step(instance) is None


def retracts_to(instance: Instance, candidate: Instance) -> bool:
    """True iff ``candidate`` is the (unique) core of ``instance``.

    Requires candidate ⊆ instance, a homomorphism instance → candidate,
    and candidate being a core itself.
    """
    return (
        candidate.issubset(instance)
        and has_homomorphism(instance, candidate)
        and is_core(candidate)
    )
