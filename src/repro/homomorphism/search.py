"""Homomorphism search between instances.

A homomorphism from instance I to instance J is a map
``h : Dom(I) → Dom(J)`` with ``h(c) = c`` for every constant c, such that
``R(h(ū)) ∈ J`` whenever ``R(ū) ∈ I`` (Section 2; this is the [6, 7]
notion where nulls may map to nulls *or* constants).

Implementation: by Chandra-Merlin, homomorphisms I → J correspond to
matches of the canonical conjunctive query of I (nulls become variables)
in J, so we reuse the indexed backtracking matcher.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Null, Value, Variable

from ..logic.matching import attributed, first_match, match
from ..obs import counter

Homomorphism = Dict[Value, Value]

# Prefetched handle: ``counter()`` objects survive ``repro.obs.reset``
# (they are zeroed in place), so a module-level fetch is safe and keeps
# the per-search cost to one attribute increment.
_SEARCHES = counter("hom.searches")


def canonical_pattern(instance: Instance) -> Tuple[Tuple[Atom, ...], Dict[Variable, Null]]:
    """Atoms of ``instance`` with nulls replaced by variables.

    Returns the pattern and the variable-to-null correspondence so a match
    can be translated back into a homomorphism.  Callers probing many
    targets against one source (core folding retracts the same instance
    once per atom) should call this once and reuse the pattern: the
    returned tuple is what the plan cache of :mod:`repro.logic.plans`
    keys on, so reuse makes every probe after the first hit the cache.
    """
    to_variable = {
        value: Variable(f"_n{value.ident}") for value in instance.nulls()
    }
    pattern = tuple(
        Atom(
            item.relation,
            tuple(to_variable.get(arg, arg) for arg in item.args),
        )
        for item in instance
    )
    back = {variable: null for null, variable in to_variable.items()}
    return pattern, back


_canonical_pattern = canonical_pattern


def homomorphism_via_pattern(
    pattern: Tuple[Atom, ...],
    back: Dict[Variable, Null],
    target: Instance,
) -> Optional[Homomorphism]:
    """One search with a precomputed canonical pattern (see above).

    Counts exactly like :func:`find_homomorphism`: one ``hom.searches``
    increment and ``hom``-attributed matcher work.
    """
    _SEARCHES.inc()
    with attributed("hom"):
        substitution = first_match(pattern, target)
    if substitution is None:
        return None
    return {back[variable]: value for variable, value in substitution.items()}


def homomorphisms(source: Instance, target: Instance) -> Iterator[Homomorphism]:
    """Enumerate all homomorphisms from ``source`` to ``target``.

    Each homomorphism is returned as a dict on ``Null(source)``; constants
    are fixed and omitted.
    """
    _SEARCHES.inc()
    pattern, back = _canonical_pattern(source)
    with attributed("hom"):
        for substitution in match(pattern, target):
            yield {
                back[variable]: value
                for variable, value in substitution.items()
            }


def find_homomorphism(source: Instance, target: Instance) -> Optional[Homomorphism]:
    """The first homomorphism from ``source`` to ``target``, or None."""
    _SEARCHES.inc()
    pattern, back = _canonical_pattern(source)
    with attributed("hom"):
        substitution = first_match(pattern, target)
    if substitution is None:
        return None
    return {back[variable]: value for variable, value in substitution.items()}


def has_homomorphism(source: Instance, target: Instance) -> bool:
    """True iff some homomorphism from ``source`` to ``target`` exists."""
    return find_homomorphism(source, target) is not None


def hom_equivalent(left: Instance, right: Instance) -> bool:
    """True iff homomorphisms exist in both directions.

    Universal solutions for the same source instance are exactly the
    solutions hom-equivalent to one (hence any) universal solution.
    """
    return has_homomorphism(left, right) and has_homomorphism(right, left)


def apply_homomorphism(mapping: Homomorphism, instance: Instance) -> Instance:
    """The image ``h(I)`` of an instance under a homomorphism."""
    return instance.rename_values(mapping)


def is_homomorphism(mapping: Homomorphism, source: Instance, target: Instance) -> bool:
    """Verify that ``mapping`` really is a homomorphism (used in tests).

    Constants must not be moved; every atom's image must be in ``target``.
    """
    for key, value in mapping.items():
        if key.is_constant and key != value:
            return False
    return all(
        item.rename_values(mapping) in target for item in source
    )


def endomorphisms(instance: Instance) -> Iterator[Homomorphism]:
    """All homomorphisms from an instance to itself."""
    return homomorphisms(instance, instance)


def is_retract_of(candidate: Instance, instance: Instance) -> bool:
    """True iff ``candidate ⊆ instance`` and some hom I → candidate exists.

    This matches the paper's definition of a core: J ⊆ I with a
    homomorphism I → J such that no K ⊊ J admits one.
    """
    return candidate.issubset(instance) and has_homomorphism(instance, candidate)
