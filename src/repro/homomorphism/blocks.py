"""Blockwise core computation (the Fagin-Kolaitis-Popa "blocks" idea).

The *Gaifman blocks* of an instance are the connected components of its
nulls under co-occurrence in an atom.  Every null-carrying atom belongs
to exactly one block, and any endomorphism decomposes blockwise: fixing
all values outside one block's nulls still yields an endomorphism,
because no atom mixes nulls of two blocks.  Hence

* an instance is a core iff no single block can be folded, and
* the core can be computed by minimizing each block against the full
  instance independently.

For canonical solutions of s-t exchanges the blocks are tiny (bounded
by the number of existential variables per tgd), which is what makes
core computation polynomial there [FKP, "getting to the core"]; target
tgds and egds can grow or merge blocks (the complication Gottlob-Nash
address), so after the blockwise pass we verify with a global fold step
and fall back to global folding in the (rare) cases where the
block structure changed mid-flight.  The result is always exactly the
core; the block pass is a speedup, never an approximation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Null, Value
from ..obs import span
from ..obs.provenance import active_ledger
from .core_computation import _FOLDS, _RETRACTS
from .core_computation import core as global_core
from .core_computation import fold_step


def null_blocks(instance: Instance) -> List[FrozenSet[Null]]:
    """Connected components of nulls under atom co-occurrence.

    Deterministic order (by smallest null identifier per block).
    """
    parent: Dict[Null, Null] = {}

    def find(item: Null) -> Null:
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(left: Null, right: Null) -> None:
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            if right_root < left_root:
                left_root, right_root = right_root, left_root
            parent[right_root] = left_root

    for null in instance.nulls():
        parent[null] = null
    for atom in instance:
        nulls = [value for value in atom.args if isinstance(value, Null)]
        for other in nulls[1:]:
            union(nulls[0], other)

    components: Dict[Null, Set[Null]] = {}
    for null in parent:
        components.setdefault(find(null), set()).add(null)
    return [
        frozenset(component)
        for _, component in sorted(
            components.items(), key=lambda pair: pair[0]
        )
    ]


def block_atoms(instance: Instance, block: FrozenSet[Null]) -> List[Atom]:
    """The atoms owned by a block: those mentioning one of its nulls."""
    return sorted(
        atom for atom in instance if any(n in block for n in atom.nulls)
    )


def block_statistics(instance: Instance) -> Dict[str, float]:
    """Block census for diagnostics and benchmarks."""
    blocks = null_blocks(instance)
    if not blocks:
        return {"blocks": 0, "largest": 0, "average": 0.0}
    sizes = [len(block) for block in blocks]
    return {
        "blocks": len(blocks),
        "largest": max(sizes),
        "average": sum(sizes) / len(sizes),
    }


#: Bounded memo of compiled block patterns keyed by the exact owned
#: atom tuple and block -- the pattern is a pure function of both.  Core
#: computation revisits unchanged blocks constantly (every verification
#: pass, every repeated minimization of an already-minimal block), and
#: this skips rebuilding the variable-lifted atoms each round.  Hits
#: land in ``core.block_pattern_reuse``.
_PATTERN_CACHE: "Dict[Tuple[Tuple[Atom, ...], FrozenSet[Null]], Tuple]" = {}
_PATTERN_CACHE_LIMIT = 1024


def _block_pattern(
    owned: List[Atom], block: FrozenSet[Null]
) -> "Tuple[Tuple[Atom, ...], Dict]":
    """The canonical pattern of a block's atoms, nulls-as-variables.

    Nulls outside the block are frozen (treated as rigid values), so the
    extension of any match by the identity is an endomorphism of the
    whole instance.  Computed once per owned set and reused for every
    dropped-atom attempt -- the attempts then share one compiled plan --
    and memoized across invocations for unchanged blocks.
    """
    from ..core.terms import Variable
    from ..obs import counter

    key = (tuple(owned), block)
    cached = _PATTERN_CACHE.get(key)
    if cached is not None:
        counter("core.block_pattern_reuse").inc()
        return cached
    to_variable = {null: Variable(f"_b{null.ident}") for null in block}
    pattern = tuple(
        Atom(
            atom.relation,
            tuple(to_variable.get(value, value) for value in atom.args),
        )
        for atom in owned
    )
    back = {variable: null for null, variable in to_variable.items()}
    if len(_PATTERN_CACHE) >= _PATTERN_CACHE_LIMIT:
        _PATTERN_CACHE.pop(next(iter(_PATTERN_CACHE)))
    _PATTERN_CACHE[key] = (pattern, back)
    return pattern, back


def _minimize_block(
    instance: Instance, block: FrozenSet[Null]
) -> Optional[Instance]:
    """Fold one block as far as it goes; None if nothing folded.

    Searches for a block-local homomorphism of the block's atoms into
    the full instance that drops at least one of them; applies the
    induced endomorphism (identity outside the block) and repeats.

    One working copy per *invocation* is mutated throughout (drop the
    atom, search, put it back; apply folds in place) -- ``instance``
    itself is never modified, and no per-round copies are taken.
    """
    from ..logic.matching import attributed, first_match

    changed = False
    working: Optional[Instance] = None
    while block:
        base = working if working is not None else instance
        owned = block_atoms(base, block)
        if not owned:
            break
        pattern, back = _block_pattern(owned, block)
        if working is None:
            working = instance.copy()
        folded_once = False
        for atom in owned:
            working.discard(atom)
            _RETRACTS.inc()
            with attributed("hom"):
                found = first_match(pattern, working)
            working.add(atom)
            if found is None:
                continue
            _FOLDS.inc()
            mapping = {
                back[variable]: value for variable, value in found.items()
            }
            images = [item.rename_values(mapping) for item in owned]
            for item in owned:
                working.discard(item)
            for item in images:
                working.add(item)
            ledger = active_ledger()
            if ledger is not None:
                ledger.record_retraction(
                    "blockwise", set(owned) - set(images), mapping
                )
            # Nulls folded onto other blocks leave this block's care.
            block = frozenset(
                value
                for value in (mapping.get(null, null) for null in block)
                if isinstance(value, Null) and value in block
            )
            changed = True
            folded_once = True
            break
        if not folded_once:
            break
    return working if changed else None


def minimize_block_tracked(
    instance: Instance, block: FrozenSet[Null], *, via: str = "incremental"
):
    """:func:`_minimize_block` with fold tracking for memoized replay.

    Performs exactly the same fold search and applications (same
    deterministic order, same first-match choices), but additionally
    composes the applied folds into one total endomorphism of the
    block's nulls and records the final images of the originally owned
    atoms.  Returns ``(working, mapping, images, crossed)``:

    * ``working`` -- the minimized instance, or None if nothing folded;
    * ``mapping`` -- the composed ``{null: value}`` endomorphism over
      the original block (identity entries included);
    * ``images`` -- sorted tuple ``h(owned)``: replaying the fold on a
      later instance is ``(I \\ owned) ∪ images``;
    * ``crossed`` -- True when some fold mapped a null onto a null of
      *another* block; the caller must then fall back to a full
      :func:`blockwise_core` pass (the memoized per-block replay
      argument assumes folds stay inside their block), and ``mapping``/
      ``images`` are meaningless.
    """
    from ..logic.matching import attributed, first_match

    original_block = block
    original_owned: Optional[List[Atom]] = None
    total: Dict[Null, Value] = {}
    changed = False
    working: Optional[Instance] = None
    while block:
        base = working if working is not None else instance
        owned = block_atoms(base, block)
        if original_owned is None:
            original_owned = owned
        if not owned:
            break
        pattern, back = _block_pattern(owned, block)
        if working is None:
            working = instance.copy()
        folded_once = False
        for atom in owned:
            working.discard(atom)
            _RETRACTS.inc()
            with attributed("hom"):
                found = first_match(pattern, working)
            working.add(atom)
            if found is None:
                continue
            _FOLDS.inc()
            mapping = {
                back[variable]: value for variable, value in found.items()
            }
            images = [item.rename_values(mapping) for item in owned]
            for item in owned:
                working.discard(item)
            for item in images:
                working.add(item)
            ledger = active_ledger()
            if ledger is not None:
                ledger.record_retraction(
                    via, set(owned) - set(images), mapping
                )
            if any(
                isinstance(value, Null) and value not in original_block
                for value in mapping.values()
            ):
                return working, {}, (), True
            for null in original_block:
                value = total.get(null, null)
                total[null] = mapping.get(value, value)
            block = frozenset(
                value
                for value in (mapping.get(null, null) for null in block)
                if isinstance(value, Null) and value in block
            )
            changed = True
            folded_once = True
            break
        if not folded_once:
            break
    final_images = tuple(
        sorted({item.rename_values(total) for item in (original_owned or ())})
    )
    return (working if changed else None), total, final_images, False


def blockwise_core(instance: Instance) -> Instance:
    """The core of ``instance``, computed block-by-block.

    Exact: after the blockwise pass a global fold step verifies the
    result; if the pass left folds on the table (possible when a fold
    rewired blocks), global folding finishes the job.
    """
    with span("core.blockwise"):
        current = instance.copy()
        for block in null_blocks(current):
            live = frozenset(block & current.nulls())
            if not live:
                continue
            minimized = _minimize_block(current, live)
            if minimized is not None:
                current = minimized

        # Verification / completion: the blockwise pass is usually already
        # a core; fall back to global folding otherwise.
        remainder = fold_step(current)
        if remainder is None:
            return current
        return global_core(remainder)
