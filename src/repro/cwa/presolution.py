"""CWA-presolutions (Definition 4.6).

A target instance T is a **CWA-presolution** for a source instance S
under D iff there is a mapping ``α : J_D → Dom`` such that ``S ∪ T`` is
the result of a *successful* α-chase of S with Σ.  CWA-presolutions
formalize the requirements CWA1 (every atom justified) and CWA2 (no
justification produces more than one value).

Recognition
-----------
Deciding whether a given T is a CWA-presolution is in NP (end of
Section 6).  The algorithm here searches for the witnessing α directly:

1. Let ``G = S ∪ T``.  A successful chase result must satisfy Σ and
   leave no tgd α-applicable; so first check ``G ⊨ Σ``.
2. Every premise match ``(d, ū, v̄)`` of a tgd over G must have its
   conclusion realized *inside* G by the witnesses the justification was
   assigned: collect, per match, the candidate witness tuples
   ``{w̄ | atoms of ψ[ū, w̄] ⊆ G}``.  An empty candidate set refutes T.
3. Choose one candidate per match (backtracking) and compute the least
   fixpoint: start from S and fire a match's chosen atoms once its
   premise holds.  T is a CWA-presolution iff some choice makes the
   fixpoint equal G exactly (successful chases of a null-free S apply
   only tgds -- Lemma 4.5 -- so a tgd-only derivation suffices).

The search is exponential only in the number of matches with several
candidates, which is small on realistic instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, Substitution
from ..core.instance import Instance
from ..core.terms import Value
from ..chase.alpha import ExplicitAlpha, JustificationKey, justification_key
from ..chase.satisfaction import satisfies_all
from ..exchange.setting import DataExchangeSetting
from ..logic.matching import match


class _Match:
    """A premise match of a tgd over G, with its candidate witness tuples."""

    __slots__ = ("tgd", "key", "premise_match", "candidates")

    def __init__(self, tgd, key, premise_match, candidates):
        self.tgd = tgd
        self.key: JustificationKey = key
        self.premise_match: Substitution = premise_match
        self.candidates: Tuple[Tuple[Value, ...], ...] = candidates


def _candidate_witnesses(
    tgd, premise_match: Substitution, goal: Instance
) -> Tuple[Tuple[Value, ...], ...]:
    """All w̄ with atoms(ψ[ū, w̄]) ⊆ goal."""
    frontier_binding = premise_match.restrict(tgd.frontier)
    found: Set[Tuple[Value, ...]] = set()
    for sub in match(tgd.conclusion_atoms, goal, initial=frontier_binding):
        found.add(sub.as_tuple(tgd.existential))
    return tuple(sorted(found))


def _collect_matches(
    setting: DataExchangeSetting, source: Instance, goal: Instance
) -> Optional[List[_Match]]:
    """All premise matches over G with candidates; None if one has none.

    S-t premises speak about σ only, so they are matched against the
    source; target premises are matched against G.
    """
    matches: List[_Match] = []
    seen_keys: Set[JustificationKey] = set()
    for tgd in setting.tgds:
        base = source if tgd in setting.st_dependencies else goal
        for premise_match in tgd.premise_matches(base):
            key = justification_key(tgd, premise_match)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            candidates = _candidate_witnesses(tgd, premise_match, goal)
            if not candidates:
                return None
            matches.append(_Match(tgd, key, premise_match, candidates))
    return matches


def _fixpoint(
    source: Instance,
    matches: Sequence[_Match],
    choice: Dict[JustificationKey, Tuple[Value, ...]],
) -> Instance:
    """The tgd-only α-chase result under the chosen witnesses.

    Starts from S and fires each match once its premise holds in the
    current instance; the result is the unique fixpoint.
    """
    current = source.copy()
    pending = list(matches)
    progressed = True
    while progressed and pending:
        progressed = False
        remaining: List[_Match] = []
        for item in pending:
            if _premise_holds(item, current):
                witnesses = choice[item.key]
                current.add_all(
                    item.tgd.conclusion_atoms_under(item.premise_match, witnesses)
                )
                progressed = True
            else:
                remaining.append(item)
        pending = remaining
    return current


def _premise_holds(item: _Match, instance: Instance) -> bool:
    tgd = item.tgd
    if tgd.premise_atoms is not None:
        return all(
            item.premise_match.apply(atom) in instance
            for atom in tgd.premise_atoms
        )
    # FO premise (s-t): holds over the source by construction of matches.
    return True


def find_alpha(
    setting: DataExchangeSetting, source: Instance, target: Instance
) -> Optional[ExplicitAlpha]:
    """An α witnessing that ``target`` is a CWA-presolution, or None.

    The returned :class:`ExplicitAlpha` satisfies: the α-chase of S with
    Σ succeeds and its result is exactly ``S ∪ T`` (verified by tests
    through :func:`repro.chase.alpha.alpha_chase`).
    """
    setting.validate_source(source)
    setting.validate_target(target)
    goal = source.union(target)
    if len(goal) != len(source) + len(target):
        return None  # σ and τ are disjoint, so S and T cannot overlap
    if not satisfies_all(goal, setting.st_dependencies):
        return None
    if not satisfies_all(target, setting.target_dependencies):
        return None

    matches = _collect_matches(setting, source, goal)
    if matches is None:
        return None

    goal_atoms = goal.frozen()
    target_atom_count = len(goal)

    # Forced matches (single candidate) first; then fewest-candidates.
    matches.sort(key=lambda item: len(item.candidates))

    choice: Dict[JustificationKey, Tuple[Value, ...]] = {}

    def atoms_of_choice(item: _Match, witnesses: Tuple[Value, ...]):
        return item.tgd.conclusion_atoms_under(item.premise_match, witnesses)

    # Precompute, per match, the atoms each candidate would add, and the
    # union over the suffix matches[i:] -- the coverage prune then costs
    # a subset test instead of a full rescan.
    candidate_atoms: List[List[Set[Atom]]] = [
        [set(atoms_of_choice(item, witnesses)) for witnesses in item.candidates]
        for item in matches
    ]
    suffix_cover: List[Set[Atom]] = [set() for _ in range(len(matches) + 1)]
    for index in range(len(matches) - 1, -1, -1):
        union: Set[Atom] = set(suffix_cover[index + 1])
        for atoms in candidate_atoms[index]:
            union |= atoms
        suffix_cover[index] = union

    uncovered: Set[Atom] = set(goal_atoms) - set(source.frozen())

    def search(index: int) -> bool:
        if index == len(matches):
            if uncovered:
                return False
            result = _fixpoint(source, matches, choice)
            return len(result) == target_atom_count and result == goal
        if not uncovered <= suffix_cover[index]:
            return False
        item = matches[index]
        # Candidates that cover not-yet-covered atoms first: on
        # bijection-like instances this finds the assignment greedily.
        order = sorted(
            range(len(item.candidates)),
            key=lambda c: -len(candidate_atoms[index][c] & uncovered),
        )
        for candidate_index in order:
            witnesses = item.candidates[candidate_index]
            newly = candidate_atoms[index][candidate_index] & uncovered
            choice[item.key] = witnesses
            uncovered.difference_update(newly)
            if search(index + 1):
                return True
            uncovered.update(newly)
            del choice[item.key]
        return False

    if not search(0):
        return None
    return ExplicitAlpha({item.key: choice[item.key] for item in matches})


def is_cwa_presolution(
    setting: DataExchangeSetting, source: Instance, target: Instance
) -> bool:
    """Definition 4.6: does some α produce ``S ∪ T`` as a successful
    α-chase result?"""
    return find_alpha(setting, source, target) is not None
