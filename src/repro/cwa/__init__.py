"""CWA-solutions: the paper's central contribution (Sections 4-5)."""

from .enumeration import enumerate_cwa_presolutions, enumerate_cwa_solutions
from .presolution import find_alpha, is_cwa_presolution
from .space import SolutionSpace
from .solution import (
    UnsupportedSettingError,
    canonical_fact,
    cansol,
    core_solution,
    cwa_solution_exists,
    embeds_into,
    fact_follows,
    is_cwa_solution,
    is_cwa_solution_by_definition,
    is_homomorphic_image_of,
    is_maximal_cwa_solution,
    is_minimal_cwa_solution,
    minimal_cwa_solution,
)

__all__ = [
    "SolutionSpace",
    "UnsupportedSettingError",
    "canonical_fact",
    "cansol",
    "fact_follows",
    "is_cwa_solution_by_definition",
    "core_solution",
    "cwa_solution_exists",
    "embeds_into",
    "enumerate_cwa_presolutions",
    "enumerate_cwa_solutions",
    "find_alpha",
    "is_cwa_presolution",
    "is_cwa_solution",
    "is_homomorphic_image_of",
    "is_maximal_cwa_solution",
    "is_minimal_cwa_solution",
    "minimal_cwa_solution",
]
