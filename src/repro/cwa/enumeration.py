"""Exhaustive enumeration of CWA-(pre)solutions for small inputs.

Section 5 explores the *space* of CWA-solutions: the core is the unique
minimal one (Theorem 5.1), but there may be exponentially many pairwise
hom-incomparable ones (Example 5.3).  This module materializes that space
for small instances by searching over the witness choices of α directly.

Completeness (up to isomorphism, for CWA-*solutions*): a CWA-solution is
universal, hence admits a homomorphism into the canonical universal
solution, so each of its values is either a constant already in the
active domain or a null whose name does not matter.  It therefore
suffices to let every justification choose witnesses among

* values already present in the current chase state, and
* canonical fresh nulls (one new null per existential position, with
  "new" choices deduplicated by a restricted-growth scheme).

CWA-presolutions that invent *unjustified constants* (like T₁ in
Example 2.1, which is a solution but not universal) are deliberately out
of scope of the enumeration -- they are never CWA-solutions; use
:func:`repro.cwa.presolution.is_cwa_presolution` to recognize them
individually.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.errors import ChaseDivergence
from ..core.instance import Instance, isomorphic
from ..core.terms import Null, Value
from ..chase.alpha import JustificationKey, justification_key
from ..dependencies.egd import Egd
from ..exchange.setting import DataExchangeSetting
from ..homomorphism.search import has_homomorphism

DEFAULT_MAX_RESULTS = 10_000
DEFAULT_MAX_ATOMS = 400
DEFAULT_MAX_DEPTH = 10_000


class _State:
    """One node of the enumeration tree: a chase state plus the α so far."""

    __slots__ = ("instance", "alpha", "next_null", "seen", "depth")

    def __init__(self, instance, alpha, next_null, seen, depth):
        self.instance: Instance = instance
        self.alpha: Dict[JustificationKey, Tuple[Value, ...]] = alpha
        self.next_null: int = next_null
        self.seen: Set[str] = seen  # state fingerprints, for egd-loop detection
        self.depth: int = depth

    def clone(self) -> "_State":
        return _State(
            self.instance.copy(),
            dict(self.alpha),
            self.next_null,
            set(self.seen),
            self.depth,
        )


def _witness_options(
    state: _State, arity: int
) -> Iterator[Tuple[Tuple[Value, ...], int]]:
    """Candidate witness tuples for a justification with ``arity``
    existential variables, with the number of fresh nulls consumed.

    Each position picks either an existing active-domain value or a fresh
    null; fresh nulls are introduced in restricted-growth order (the
    first fresh position uses null k, the next new one k+1, ...) so that
    isomorphic choices are enumerated once.
    """
    existing = sorted(state.instance.active_domain())
    FRESH = object()
    for pattern in product([FRESH, *existing], repeat=arity):
        witnesses: List[Value] = []
        fresh_used = 0
        fresh_assignment: Dict[int, Null] = {}
        for position, choice in enumerate(pattern):
            if choice is FRESH:
                null = Null(state.next_null + fresh_used)
                fresh_assignment[position] = null
                witnesses.append(null)
                fresh_used += 1
            else:
                witnesses.append(choice)
        yield tuple(witnesses), fresh_used
        # Additionally allow repeated fresh nulls within one tuple
        # (α may assign the same new value to two z-variables).
        if fresh_used >= 2:
            positions = [p for p in range(arity) if pattern[p] is FRESH]
            for merge_pattern in _restricted_growth(len(positions)):
                if max(merge_pattern) + 1 == len(positions):
                    continue  # all distinct: already yielded above
                merged: List[Value] = list(witnesses)
                for local_index, block in enumerate(merge_pattern):
                    merged[positions[local_index]] = Null(
                        state.next_null + block
                    )
                yield tuple(merged), max(merge_pattern) + 1


def _restricted_growth(length: int) -> Iterator[Tuple[int, ...]]:
    """Restricted growth strings of the given length (set partitions)."""
    def extend(prefix: List[int]) -> Iterator[Tuple[int, ...]]:
        if len(prefix) == length:
            yield tuple(prefix)
            return
        ceiling = max(prefix) + 1 if prefix else 0
        for value in range(ceiling + 1):
            prefix.append(value)
            yield from extend(prefix)
            prefix.pop()

    yield from extend([])


def _make_recorder(results: List[Instance]):
    """An isomorphism-deduplicating ``record(candidate) -> count``."""
    signatures: Dict[Tuple, List[Instance]] = {}

    def record(candidate: Instance) -> int:
        # Cheap structural signature first; isomorphism only per bucket.
        signature = (
            tuple(
                (name, candidate.count_of(name))
                for name in candidate.relation_names()
            ),
            len(candidate.nulls()),
        )
        bucket = signatures.setdefault(signature, [])
        if not any(isomorphic(candidate, seen) for seen in bucket):
            bucket.append(candidate)
            results.append(candidate)
        return len(results)

    return record


def _branches(
    setting: DataExchangeSetting,
    state: _State,
    step,
    max_atoms: int,
    max_depth: int,
    prune_to: Optional[Instance],
) -> List[_State]:
    """Children of ``state`` at an unassigned justification ``step``."""
    tgd, premise_match, key = step
    children: List[_State] = []
    for witnesses, fresh_used in _witness_options(
        state, len(tgd.existential)
    ):
        branch = state.clone()
        branch.alpha[key] = witnesses
        branch.next_null += fresh_used
        branch.instance.add_all(
            tgd.conclusion_atoms_under(premise_match, witnesses)
        )
        branch.depth += 1
        if len(branch.instance) > max_atoms or branch.depth > max_depth:
            raise ChaseDivergence(
                branch.depth,
                f"enumeration exceeded its budget (atoms ≤ {max_atoms}, "
                f"depth ≤ {max_depth})",
            )
        if prune_to is not None and not has_homomorphism(
            branch.instance.reduct(setting.target_schema), prune_to
        ):
            continue
        children.append(branch)
    return children


def _drain(
    setting: DataExchangeSetting,
    stack: List[_State],
    record,
    max_results: int,
    max_atoms: int,
    max_depth: int,
    prune_to: Optional[Instance],
) -> None:
    """Depth-first search of the whole subtree under ``stack``."""
    while stack:
        state = stack.pop()
        step = _advance(setting, state)
        if step == "done":
            candidate = state.instance.reduct(setting.target_schema)
            if prune_to is None or has_homomorphism(candidate, prune_to):
                if record(candidate) >= max_results:
                    break
            continue
        if step == "dead":
            continue
        if step == "budget":
            raise ChaseDivergence(
                state.depth,
                f"enumeration exceeded its budget (atoms ≤ {max_atoms}, "
                f"depth ≤ {max_depth}); the setting may admit unboundedly "
                "large CWA-presolutions",
            )
        stack.extend(
            _branches(setting, state, step, max_atoms, max_depth, prune_to)
        )


def _subtree_results(
    seed: _State,
    setting: DataExchangeSetting,
    max_results: int,
    max_atoms: int,
    max_depth: int,
    prune_to: Optional[Instance],
) -> List[Instance]:
    """Worker: all results under one enumeration-tree node.

    Deduplicates locally (cuts IPC transfer); the parent deduplicates
    again across subtrees, since isomorphic presolutions can arise on
    different branches.
    """
    results: List[Instance] = []
    _drain(
        setting,
        [seed],
        _make_recorder(results),
        max_results,
        max_atoms,
        max_depth,
        prune_to,
    )
    return results


def enumerate_cwa_presolutions(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_results: int = DEFAULT_MAX_RESULTS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    max_depth: int = DEFAULT_MAX_DEPTH,
    prune_to: Optional[Instance] = None,
    executor=None,
) -> List[Instance]:
    """All CWA-presolutions with justified values, up to isomorphism.

    Budgets: raises :class:`ChaseDivergence` if the search would need
    more than ``max_atoms`` atoms in a state or ``max_depth`` chase steps
    on a branch -- for weakly acyclic settings generously sized budgets
    are never hit.

    ``prune_to``: if given, branches whose target part admits no
    homomorphism into this instance are cut immediately.  Sound for
    enumerating *universal* presolutions into a universal solution,
    because hom-into-U is anti-monotone under adding atoms (restricting
    a homomorphism of a superset gives one of the subset).  Used by
    :func:`enumerate_cwa_solutions` with the canonical universal
    solution, where it prunes exponentially many dead branches.

    ``executor``: a parallel :class:`repro.engine.Executor` splits the
    enumeration tree -- the frontier is expanded breadth-first to a few
    states per worker, each subtree is searched in its own process, and
    the parent merges with a final isomorphism dedup.  The result set
    equals the serial one up to isomorphism and ordering; answer sets
    computed over it are identical either way (⋂ and ⋃ are
    order-independent and isomorphism-invariant).
    """
    setting.validate_source(source)
    factory_start = (
        max((n.ident for n in source.nulls()), default=-1) + 1
    )
    results: List[Instance] = []
    record = _make_recorder(results)
    initial = _State(source.copy(), {}, factory_start, set(), 0)
    stack: List[_State] = [initial]

    if executor is not None and executor.parallel:
        frontier = _expand_frontier(
            setting,
            stack,
            record,
            executor.workers * 4,
            max_results,
            max_atoms,
            max_depth,
            prune_to,
        )
        if frontier and len(results) < max_results:
            batches = executor.map_worlds(
                _subtree_results,
                frontier,
                setting,
                max_results,
                max_atoms,
                max_depth,
                prune_to,
                label="engine.enumerate",
            )
            for batch in batches:
                for candidate in batch:
                    if record(candidate) >= max_results:
                        break
                else:
                    continue
                break
        return results[:max_results]

    _drain(
        setting, stack, record, max_results, max_atoms, max_depth, prune_to
    )
    return results


def _expand_frontier(
    setting: DataExchangeSetting,
    stack: List[_State],
    record,
    goal: int,
    max_results: int,
    max_atoms: int,
    max_depth: int,
    prune_to: Optional[Instance],
) -> List[_State]:
    """Grow the root stack breadth-first until it can feed the pool.

    Completed branches encountered on the way are recorded directly;
    returns the frontier of unexplored states (possibly empty).
    """
    frontier = list(stack)
    while frontier and len(frontier) < goal:
        state = frontier.pop(0)
        step = _advance(setting, state)
        if step == "done":
            candidate = state.instance.reduct(setting.target_schema)
            if prune_to is None or has_homomorphism(candidate, prune_to):
                if record(candidate) >= max_results:
                    break
            continue
        if step == "dead":
            continue
        if step == "budget":
            raise ChaseDivergence(
                state.depth,
                f"enumeration exceeded its budget (atoms ≤ {max_atoms}, "
                f"depth ≤ {max_depth}); the setting may admit unboundedly "
                "large CWA-presolutions",
            )
        frontier.extend(
            _branches(setting, state, step, max_atoms, max_depth, prune_to)
        )
    return frontier


def _advance(setting: DataExchangeSetting, state: _State):
    """Drive ``state`` forward until a branch point, an end, or death.

    Returns "done" (successful result), "dead" (failing branch),
    "budget", or an unassigned justification (tgd, premise match, key).
    """
    while True:
        # 1. Fire assigned-but-unsatisfied justifications (deterministic).
        fired = False
        for tgd in setting.tgds:
            base = (
                state.instance.reduct(setting.source_schema)
                if tgd in setting.st_dependencies
                else state.instance
            )
            # Materialize before firing: the compiled matcher iterates
            # live index buckets and target tgds add to the very
            # instance being matched.
            for premise_match in list(tgd.premise_matches(base)):
                key = justification_key(tgd, premise_match)
                witnesses = state.alpha.get(key)
                if witnesses is None:
                    return (tgd, premise_match, key)
                if not tgd.conclusion_present(
                    state.instance, premise_match, witnesses
                ):
                    state.instance.add_all(
                        tgd.conclusion_atoms_under(premise_match, witnesses)
                    )
                    state.depth += 1
                    if state.depth > DEFAULT_MAX_DEPTH:
                        return "budget"
                    fired = True
        if fired:
            continue

        # 2. tgd fixpoint: apply egds.
        violation = None
        for egd in setting.target_egds:
            violation_pair = egd.first_violation(state.instance)
            if violation_pair is not None:
                violation = (egd, violation_pair)
                break
        if violation is None:
            return "done"
        egd, (left, right) = violation
        direction = Egd.merge_direction(left, right)
        if direction is None:
            return "dead"  # failing α-chase
        snapshot = state.instance.fingerprint()
        if snapshot in state.seen:
            return "dead"  # the chase loops forever for this α
        state.seen.add(snapshot)
        old, new = direction
        state.instance.replace_value(old, new)
        state.depth += 1


def enumerate_cwa_solutions(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_results: int = DEFAULT_MAX_RESULTS,
    max_atoms: int = DEFAULT_MAX_ATOMS,
    max_depth: int = DEFAULT_MAX_DEPTH,
    executor=None,
) -> List[Instance]:
    """All CWA-solutions for ``source``, up to isomorphism.

    By Theorem 4.8 these are the universal members of the presolution
    space; universality is checked by a homomorphism into the canonical
    universal solution.
    """
    canonical = setting.canonical_universal_solution(source)
    if canonical is None:
        return []
    return enumerate_cwa_presolutions(
        setting,
        source,
        max_results=max_results,
        max_atoms=max_atoms,
        max_depth=max_depth,
        prune_to=canonical,
        executor=executor,
    )
