"""The space of CWA-solutions as a homomorphism-ordered poset.

Section 5 of the paper studies the *structure* of S_CWA: the core is the
unique minimal element (Theorem 5.1), maximal elements may not exist
(Example 5.3), and restricted settings have a maximum (Proposition 5.4).
:class:`SolutionSpace` materializes that structure for small inputs:

* enumerate the solutions (up to renaming of nulls),
* order them by "is a homomorphic image of" (the paper's comparison for
  maximality) -- T ≤ T' iff T = h(T') for some homomorphism h,
* report minimal/maximal elements, the largest antichain of pairwise
  incomparable solutions (Example 5.3's phenomenon), and whether the
  space is a chain.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.instance import Instance
from ..exchange.setting import DataExchangeSetting
from .enumeration import enumerate_cwa_solutions
from .solution import embeds_into, is_homomorphic_image_of


class SolutionSpace:
    """The enumerated CWA-solution space of one (D, S) pair."""

    def __init__(self, setting: DataExchangeSetting, source: Instance, solutions: Sequence[Instance]):
        self.setting = setting
        self.source = source
        self.solutions: List[Instance] = list(solutions)
        # image_of[i][j] == True iff solutions[i] is a hom-image of [j].
        size = len(self.solutions)
        self._image_of: List[List[bool]] = [
            [False] * size for _ in range(size)
        ]
        for i, small in enumerate(self.solutions):
            for j, large in enumerate(self.solutions):
                if i == j:
                    self._image_of[i][j] = True
                else:
                    self._image_of[i][j] = is_homomorphic_image_of(small, large)

    @classmethod
    def build(
        cls,
        setting: DataExchangeSetting,
        source: Instance,
        **enumeration_kwargs,
    ) -> "SolutionSpace":
        """Enumerate and order the space (small inputs only)."""
        solutions = enumerate_cwa_solutions(
            setting, source, **enumeration_kwargs
        )
        return cls(setting, source, solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self):
        return iter(self.solutions)

    @property
    def is_empty(self) -> bool:
        return not self.solutions

    # ------------------------------------------------------------------
    # Order structure
    # ------------------------------------------------------------------

    def below(self, i: int, j: int) -> bool:
        """Is solution i a homomorphic image of solution j?"""
        return self._image_of[i][j]

    def comparable(self, i: int, j: int) -> bool:
        return self.below(i, j) or self.below(j, i)

    def minimal_indices(self) -> List[int]:
        """Solutions contained (up to renaming of nulls) in every other.

        The paper's minimality notion; by Theorem 5.1 exactly the core
        qualifies (when solutions exist).
        """
        return [
            i
            for i, candidate in enumerate(self.solutions)
            if all(
                embeds_into(candidate, other)
                for j, other in enumerate(self.solutions)
                if j != i
            )
        ]

    def maximal_indices(self) -> List[int]:
        """Solutions of which every solution is a homomorphic image."""
        size = len(self.solutions)
        return [
            j
            for j in range(size)
            if all(self.below(i, j) for i in range(size))
        ]

    def has_maximum(self) -> bool:
        return bool(self.maximal_indices())

    def largest_antichain(self) -> List[int]:
        """A maximum set of pairwise hom-incomparable solutions.

        Exact for the small spaces this class targets (greedy over all
        orderings would be unsound; we do a simple exponential search
        with memo on bitsets, fine for |space| ≤ ~20).
        """
        size = len(self.solutions)
        best: List[int] = []

        def extend(start: int, chosen: List[int]) -> None:
            nonlocal best
            if len(chosen) > len(best):
                best = list(chosen)
            for candidate in range(start, size):
                if all(not self.comparable(candidate, other) for other in chosen):
                    chosen.append(candidate)
                    extend(candidate + 1, chosen)
                    chosen.pop()

        extend(0, [])
        return best

    def is_chain(self) -> bool:
        """True iff every pair of solutions is comparable."""
        size = len(self.solutions)
        return all(
            self.comparable(i, j)
            for i in range(size)
            for j in range(i + 1, size)
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def census(self) -> Dict[str, object]:
        """A summary dict for reports and benchmarks."""
        return {
            "solutions": len(self.solutions),
            "minimal": len(self.minimal_indices()),
            "maximal": len(self.maximal_indices()),
            "largest_antichain": len(self.largest_antichain()),
            "is_chain": self.is_chain(),
        }

    def describe(self) -> str:
        census = self.census()
        lines = [
            f"CWA-solution space: {census['solutions']} solution(s) "
            "(up to renaming of nulls)",
            f"  minimal (the core, Thm 5.1): {census['minimal']}",
            f"  maximal: {census['maximal']}"
            + ("  -- none exists!" if census["maximal"] == 0 else ""),
            f"  largest antichain of incomparable solutions: "
            f"{census['largest_antichain']}",
            f"  totally ordered: {census['is_chain']}",
        ]
        for index, solution in enumerate(self.solutions):
            marks = []
            if index in self.minimal_indices():
                marks.append("minimal")
            if index in self.maximal_indices():
                marks.append("maximal")
            suffix = f"  [{', '.join(marks)}]" if marks else ""
            lines.append(
                f"  #{index}: {len(solution)} atoms, "
                f"{len(solution.nulls())} nulls{suffix}"
            )
        return "\n".join(lines)
