"""CWA-solutions (Definition 4.7) and their structure (Section 5).

A CWA-presolution T is a **CWA-solution** iff every fact true in T
follows from S and Σ; by Theorem 4.8 this holds iff T is a *universal*
solution.  This module implements:

* the CWA-solution test (Theorem 4.8),
* existence (Corollary 5.2: CWA-solutions exist iff universal solutions
  exist iff the core exists),
* the minimal CWA-solution ``Core_D(S)`` (Theorem 5.1),
* the maximal CWA-solution ``CanSol_D(S)`` for the two restricted classes
  of Proposition 5.4,
* minimality / maximality checks used to explore the solution space
  (Example 5.3 shows maximal CWA-solutions need not exist in general).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.errors import ReproError
from ..core.instance import Instance
from ..chase.oblivious import fire_all_source_justifications
from ..chase.result import ChaseStatus
from ..chase.standard import DEFAULT_MAX_STEPS, standard_chase
from ..exchange.setting import DataExchangeSetting
from ..homomorphism.core_computation import core
from ..homomorphism.search import homomorphisms
from .presolution import is_cwa_presolution


class UnsupportedSettingError(ReproError):
    """The requested construction needs a restricted setting class."""


def is_cwa_solution(
    setting: DataExchangeSetting, source: Instance, target: Instance
) -> bool:
    """Theorem 4.8: T is a CWA-solution iff T is a universal solution
    and a CWA-presolution."""
    return setting.is_universal_solution(source, target) and is_cwa_presolution(
        setting, source, target
    )


def fact_follows(
    setting: DataExchangeSetting, source: Instance, fact
) -> bool:
    """Does a fact follow from S and Σ (Section 4)?

    A *fact* is a Boolean conjunctive sentence ``∃x̄ ψ(x̄)``; it follows
    from S and Σ iff it is true in every instance I over σ ∪ τ with
    ``I|σ = S`` and ``I ⊨ Σ``.  Positive existential sentences are
    preserved by homomorphisms, so this holds iff the fact is true
    (naively) in the canonical universal solution -- which is how we
    decide it.  Requires a terminating chase (weakly acyclic settings).
    """
    from ..logic.queries import ConjunctiveQuery

    if not isinstance(fact, ConjunctiveQuery) or fact.arity != 0:
        raise ReproError(
            "facts are Boolean conjunctive sentences (arity-0 CQs without "
            "inequalities)"
        )
    if fact.has_inequalities:
        raise ReproError("facts must not contain inequalities")
    canonical = setting.canonical_universal_solution(source)
    if canonical is None:
        # No solution: every fact follows vacuously.
        return True
    return fact.holds_in(canonical)


def canonical_fact(target: Instance):
    """``φ_T``: the canonical fact of a target instance (Section 4).

    Nulls become existentially quantified variables; by Chandra-Merlin,
    ``I ⊨ φ_T`` iff a homomorphism T → I exists.
    """
    from ..logic.queries import canonical_query

    return canonical_query(target)


def is_cwa_solution_by_definition(
    setting: DataExchangeSetting, source: Instance, target: Instance
) -> bool:
    """Definition 4.7 verbatim: a CWA-presolution all of whose facts
    follow from S and Σ.

    The paper reduces "every fact of T follows" to "φ_T follows"
    (the canonical fact subsumes all others); tests check this agrees
    with the Theorem 4.8 route used by :func:`is_cwa_solution`.
    """
    if not is_cwa_presolution(setting, source, target):
        return False
    return fact_follows(setting, source, canonical_fact(target))


def cwa_solution_exists(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Corollary 5.2: CWA-solutions exist iff universal solutions exist.

    Decided by the standard chase; complete for weakly acyclic settings
    (Proposition 6.6 -- this is the PTIME procedure).  For general
    settings the problem is undecidable (Theorem 6.2) and a divergence
    escape is possible.
    """
    return setting.universal_solution_exists(source, max_steps=max_steps)


def core_solution(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Instance]:
    """``Core_D(S)``: the core of the universal solutions, or None.

    By Theorem 5.1 this is a CWA-solution whenever it exists, and it is
    the unique *minimal* CWA-solution.  Computed as the core of the
    canonical universal solution produced by the standard chase.
    """
    canonical = setting.canonical_universal_solution(source, max_steps=max_steps)
    if canonical is None:
        return None
    return core(canonical)


def minimal_cwa_solution(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Instance]:
    """Alias for :func:`core_solution` under its Section 5 name."""
    return core_solution(setting, source, max_steps=max_steps)


def cansol(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Optional[Instance]:
    """``CanSol_D(S)``: the maximal CWA-solution for restricted settings.

    Proposition 5.4 guarantees a maximal CWA-solution when

    * the target dependencies consist of egds only, or
    * Σ_st and Σ_t consist of egds and *full* tgds.

    Construction for the first class: fire every s-t justification with
    fresh nulls (the canonical CWA-presolution of [12]), then close under
    the egds; the merges define the α that reproduces the result.  For
    the second class no nulls exist and the standard chase result is
    already deterministic and maximal.

    Returns None when no solution exists (an egd failed); raises
    :class:`UnsupportedSettingError` outside the two classes, where a
    maximal CWA-solution may not exist at all (Example 5.3).
    """
    setting.validate_source(source)
    if setting.target_dependencies_are_egds_only:
        fired, _ = fire_all_source_justifications(
            source, setting.st_dependencies
        )
        outcome = standard_chase(
            fired, list(setting.target_egds), max_steps=max_steps
        )
        if outcome.status is ChaseStatus.FAILURE:
            return None
        return outcome.require_success().reduct(setting.target_schema)
    if setting.is_full_and_egd_setting:
        return setting.canonical_universal_solution(source, max_steps=max_steps)
    raise UnsupportedSettingError(
        "CanSol is defined for settings whose target dependencies are egds "
        "only, or whose dependencies are egds and full tgds "
        "(Proposition 5.4); for other settings a maximal CWA-solution may "
        "not exist (Example 5.3)"
    )


def is_minimal_cwa_solution(
    setting: DataExchangeSetting,
    source: Instance,
    target: Instance,
    others: Iterable[Instance],
) -> bool:
    """T is minimal iff it is contained, up to renaming of nulls, in every
    CWA-solution (here: in every member of the given collection).

    ``others`` should be the full space of CWA-solutions (e.g. from
    :func:`repro.cwa.enumeration.enumerate_cwa_solutions`).
    """
    if not is_cwa_solution(setting, source, target):
        return False
    return all(embeds_into(target, other) for other in others)


def is_maximal_cwa_solution(
    setting: DataExchangeSetting,
    source: Instance,
    target: Instance,
    others: Iterable[Instance],
) -> bool:
    """T is maximal iff every CWA-solution is a homomorphic image of T."""
    if not is_cwa_solution(setting, source, target):
        return False
    return all(is_homomorphic_image_of(other, target) for other in others)


def embeds_into(small: Instance, large: Instance) -> bool:
    """Is ``small`` contained in ``large`` up to renaming of nulls?

    That is: does an *injective* renaming of nulls to nulls exist whose
    image of ``small`` is a subset of ``large``?  (Constants are fixed.)
    """
    for mapping in homomorphisms(small, large):
        values = list(mapping.values())
        if len(set(values)) != len(values):
            continue
        if any(value.is_constant for value in values):
            continue
        return True
    # The empty-nulls case: a null-free instance embeds iff it is a subset.
    if not small.nulls():
        return small.issubset(large)
    return False


def is_homomorphic_image_of(image: Instance, preimage: Instance) -> bool:
    """Is ``image = h(preimage)`` for some homomorphism h?"""
    image_atoms = image.frozen()
    for mapping in homomorphisms(preimage, image):
        if {a.rename_values(mapping) for a in preimage} == image_atoms:
            return True
    return False
