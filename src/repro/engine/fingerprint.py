"""Deterministic content fingerprints for every cacheable input.

The result cache (:mod:`repro.engine.cache`) is content-addressed: a
cache key is a sha256 digest of the *semantic content* of the inputs, so

* two processes with different ``PYTHONHASHSEED`` values produce the
  same key for the same inputs (nothing here ever calls ``hash()``;
  everything is built from sorted textual encodings),
* instances that differ only in atom insertion order hash equally, and
* instances that differ only in the names of their nulls hash equally
  whenever :meth:`Instance.canonical_renaming` aligns them (the
  enumeration and the chase engines emit nulls in deterministic order,
  so in practice isomorphic artifacts of the same pipeline coincide).

Settings, dependencies, schemas and queries are fingerprinted from
explicit structural encodings -- *not* from ``repr`` alone -- so display
labels (dependency names) never influence a key.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Const, Null, Value, Variable

#: Version prefix baked into every digest; bump when an encoding changes
#: so stale on-disk entries can never be misread as current ones.
FINGERPRINT_VERSION = "fp/v1"

_SEP = "\x1f"
_END = "\x1e"


def _digest(parts: Iterable[str]) -> str:
    state = hashlib.sha256()
    state.update(FINGERPRINT_VERSION.encode("utf-8"))
    state.update(_END.encode("utf-8"))
    for part in parts:
        state.update(part.encode("utf-8"))
        state.update(_END.encode("utf-8"))
    return state.hexdigest()


def _term_text(term) -> str:
    """An injective, hash-free encoding of one atom argument."""
    if isinstance(term, Null):
        return f"n{term.ident}"
    if isinstance(term, Const):
        return f"c{len(term.name)}:{term.name}"
    if isinstance(term, Variable):
        return f"v{len(term.name)}:{term.name}"
    raise TypeError(f"cannot fingerprint term {term!r}")


def _atom_text(item: Atom) -> str:
    head = f"{len(item.relation.name)}:{item.relation.name}/{item.relation.arity}"
    return _SEP.join([head, *(_term_text(arg) for arg in item.args)])


def fingerprint_instance(instance: Instance, *, canonical: bool = True) -> str:
    """Digest of an instance; canonical (null-renamed) by default.

    Delegates to :meth:`Instance.fingerprint`, which sorts a textual
    atom encoding -- no Python ``hash()`` anywhere on the path.
    """
    return _digest(["instance", instance.fingerprint(canonical=canonical)])


def fingerprint_schema(schema: Schema) -> str:
    """Digest of a schema: its sorted ``name/arity`` pairs."""
    return _digest(
        ["schema", *(f"{name}/{schema[name].arity}" for name in schema.names)]
    )


def fingerprint_query(query) -> str:
    """Digest of a query (CQ, UCQ, or FO), from its structure.

    Conjunctive queries encode head / body / inequalities explicitly;
    other query classes fall back to ``repr``, which is deterministic
    for every class in :mod:`repro.logic.queries` (names and atoms only,
    no object identities).
    """
    from ..logic.queries import ConjunctiveQuery, UnionOfConjunctiveQueries

    if isinstance(query, UnionOfConjunctiveQueries):
        return _digest(
            ["ucq", *(fingerprint_query(d) for d in query.disjuncts)]
        )
    if isinstance(query, ConjunctiveQuery):
        parts = ["cq", _SEP.join(_term_text(v) for v in query.head)]
        parts.extend(_atom_text(item) for item in query.body)
        parts.extend(
            "neq" + _SEP + _term_text(left) + _SEP + _term_text(right)
            for left, right in query.inequalities
        )
        return _digest(parts)
    return _digest(["query", type(query).__name__, repr(query)])


def fingerprint_dependency(dependency) -> str:
    """Digest of a tgd or egd, ignoring its display name."""
    if dependency.is_egd:
        return _digest(
            [
                "egd",
                *(_atom_text(item) for item in dependency.premise_atoms),
                "eq" + _SEP + _term_text(dependency.left)
                + _SEP + _term_text(dependency.right),
            ]
        )
    parts = ["tgd"]
    if dependency.premise_atoms is not None:
        parts.extend(_atom_text(item) for item in dependency.premise_atoms)
    else:
        # FO premises have no structural encoder; their repr is built
        # from variable/constant names and connectives only.
        parts.append("fo" + _SEP + repr(dependency.premise_formula))
    parts.append("->")
    parts.extend(_atom_text(item) for item in dependency.conclusion_atoms)
    return _digest(parts)


def fingerprint_setting(setting) -> str:
    """Digest of a data exchange setting ``D = (σ, τ, Σ_st, Σ_t)``."""
    return _digest(
        [
            "setting",
            fingerprint_schema(setting.source_schema),
            fingerprint_schema(setting.target_schema),
            "st",
            *(fingerprint_dependency(d) for d in setting.st_dependencies),
            "t",
            *(fingerprint_dependency(d) for d in setting.target_dependencies),
        ]
    )


def fingerprint_answers(answers: Iterable[Tuple[Value, ...]]) -> str:
    """Digest of an answer set (used by equivalence tests, not as a key)."""
    rows = sorted(
        _SEP.join(_term_text(value) for value in row) for row in answers
    )
    return _digest(["answers", *rows])


def fingerprint_ledger(ledger) -> str:
    """Digest of a provenance ledger (``repro.obs/prov/v1``).

    Hashes the canonical JSON rendering of the ledger's payload, so a
    ledger and its round-trip through :meth:`ProvenanceLedger.dumps` /
    ``loads`` fingerprint identically -- provenance artifacts are
    content-addressable next to solve results.
    """
    return _digest(["provenance", ledger.dumps()])


def task_key(kind: str, *parts: str) -> str:
    """Combine component digests into one cache key.

    ``kind`` namespaces the key ("solve", "answers", ...); parts are
    digests or plain deterministic strings (budgets, option flags).
    """
    return _digest(["task", kind, *parts])


def solve_key(
    setting,
    source: Instance,
    *,
    max_steps: int,
    engine: str,
    core_algorithm: str,
) -> str:
    """Cache key for one :func:`repro.exchange.solve.solve` run.

    ``max_steps`` participates because it decides divergence verdicts;
    ``engine``/``core_algorithm`` participate because different engines
    produce different (hom-equivalent, but not identical) canonical
    solutions.
    """
    return task_key(
        "solve",
        fingerprint_setting(setting),
        fingerprint_instance(source),
        f"max_steps={max_steps}",
        f"engine={engine}",
        f"core={core_algorithm}",
    )


def answer_key(
    setting,
    source: Instance,
    query,
    semantics: str,
    *,
    solutions: Optional[Sequence[Instance]] = None,
) -> str:
    """Cache key for one certain-answer computation.

    When an explicit solution space is supplied, its canonical
    fingerprints join the key -- answering over a caller-provided space
    must never collide with answering over the enumerated one.
    """
    parts = [
        fingerprint_setting(setting),
        fingerprint_instance(source),
        fingerprint_query(query),
        f"semantics={semantics}",
    ]
    if solutions is not None:
        parts.append("space")
        parts.extend(sorted(fingerprint_instance(s) for s in solutions))
    return task_key("answers", *parts)
