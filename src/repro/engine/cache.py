"""A versioned, content-addressed result cache with an LRU memory tier.

Layout on disk (``directory`` is whatever the caller passes, e.g. the
CLI's ``--cache DIR``)::

    <directory>/repro.engine/cache/v1/<kind>/<k[:2]>/<key>.json

* ``v1`` is :data:`CACHE_VERSION`; bumping it orphans (never misreads)
  old entries.
* ``kind`` namespaces payload families: ``solve`` for chase outcomes +
  cores, ``answers`` for certain-answer verdicts.  Keys come from
  :mod:`repro.engine.fingerprint`, so a key is a sha256 hexdigest and
  the two-character fan-out directory keeps directories small.

Every payload is a JSON object ``{"schema": "repro.engine/v1", "kind":
..., "key": ..., "payload": {...}}``; instances inside payloads use the
``repro.io/v1`` codec (:func:`repro.io.instance_to_payload`), which
round-trips nulls exactly.  Writes are atomic (tempfile + ``os.replace``)
so a crashed writer never leaves a half-entry that a reader could trust;
unreadable or version-mismatched entries count as misses.

The in-memory tier is a bounded LRU (``memory_slots`` entries) in front
of the disk tier; :meth:`invalidate` evicts from both.  Telemetry:
``engine.cache.hits`` / ``.misses`` / ``.writes`` / ``.invalidations``
counters, with memory-tier hits double-counted under
``engine.cache.memory_hits``; per-lookup latency distributions land in
the ``engine.cache.hit_seconds`` / ``.miss_seconds`` histograms (a
memory hit, a disk hit, and a disk miss differ by orders of magnitude,
which totals alone cannot show).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

from ..obs import counter, histogram

#: Payload schema tag; every entry this module writes carries it.
CACHE_SCHEMA = "repro.engine/v1"

#: On-disk layout version (the ``v1`` path segment).
CACHE_VERSION = "v1"

#: Default size of the in-memory LRU tier.
DEFAULT_MEMORY_SLOTS = 256

PathLike = Union[str, Path]


class ResultCache:
    """Content-addressed store for chase outcomes, cores, and verdicts."""

    def __init__(
        self,
        directory: PathLike,
        *,
        memory_slots: int = DEFAULT_MEMORY_SLOTS,
    ):
        self.root = Path(directory) / "repro.engine" / "cache" / CACHE_VERSION
        self.memory_slots = max(0, int(memory_slots))
        self._memory: "OrderedDict[tuple, dict]" = OrderedDict()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def path_for(self, kind: str, key: str) -> Path:
        """Where the entry for ``(kind, key)`` lives on disk."""
        return self.root / kind / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[dict]:
        """The payload for ``(kind, key)``, or None on a miss.

        Hits promote the entry to most-recently-used in the memory tier;
        disk hits populate it.
        """
        started = time.perf_counter()
        slot = (kind, key)
        found = self._memory.get(slot)
        if found is not None:
            self._memory.move_to_end(slot)
            counter("engine.cache.hits").inc()
            counter("engine.cache.memory_hits").inc()
            histogram("engine.cache.hit_seconds").record(
                time.perf_counter() - started
            )
            return found
        path = self.path_for(kind, key)
        try:
            with path.open(encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            counter("engine.cache.misses").inc()
            histogram("engine.cache.miss_seconds").record(
                time.perf_counter() - started
            )
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or entry.get("key") != key
            or "payload" not in entry
        ):
            counter("engine.cache.misses").inc()
            histogram("engine.cache.miss_seconds").record(
                time.perf_counter() - started
            )
            return None
        payload = entry["payload"]
        self._remember(slot, payload)
        counter("engine.cache.hits").inc()
        histogram("engine.cache.hit_seconds").record(
            time.perf_counter() - started
        )
        return payload

    def put(self, kind: str, key: str, payload: dict) -> Path:
        """Store ``payload`` under ``(kind, key)``; returns the path.

        The write is atomic: a sibling tempfile is renamed over the
        final path, so concurrent readers see either the old entry or
        the complete new one.
        """
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        text = json.dumps(entry, sort_keys=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._remember((kind, key), payload)
        counter("engine.cache.writes").inc()
        return path

    def _remember(self, slot: tuple, payload: dict) -> None:
        if self.memory_slots <= 0:
            return
        self._memory[slot] = payload
        self._memory.move_to_end(slot)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)
            counter("engine.cache.evictions").inc()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(
        self, kind: Optional[str] = None, key: Optional[str] = None
    ) -> int:
        """Drop entries from both tiers; returns how many disk entries went.

        ``invalidate()`` clears everything, ``invalidate(kind)`` one
        payload family, ``invalidate(kind, key)`` a single entry.
        """
        if key is not None and kind is None:
            raise ValueError("invalidating by key needs a kind")
        removed = 0
        if kind is None:
            self._memory.clear()
            removed = sum(1 for _ in self.root.glob("*/*/*.json"))
            for entry in self.root.glob("*/*/*.json"):
                entry.unlink(missing_ok=True)
        elif key is None:
            for slot in [s for s in self._memory if s[0] == kind]:
                del self._memory[slot]
            for entry in (self.root / kind).glob("*/*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        else:
            self._memory.pop((kind, key), None)
            path = self.path_for(kind, key)
            if path.exists():
                path.unlink()
                removed = 1
        counter("engine.cache.invalidations").inc(removed)
        return removed

    def clear(self) -> int:
        """Alias for full invalidation."""
        return self.invalidate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of entries on disk."""
        return sum(1 for _ in self.root.glob("*/*/*.json"))

    def memory_size(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, disk={len(self)}, "
            f"memory={self.memory_size()}/{self.memory_slots})"
        )
