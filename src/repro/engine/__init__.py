"""``repro.engine`` -- execution engine: parallelism + result caching.

Three stdlib-only pieces, usable separately or together:

* :mod:`repro.engine.fingerprint` -- deterministic (hash-seed
  independent, isomorphism-aware) sha256 digests of settings,
  dependencies, instances, and queries; the cache's addressing scheme.
* :mod:`repro.engine.cache` -- :class:`ResultCache`, a versioned
  content-addressed on-disk store (``repro.engine/cache/v1``) with an
  in-memory LRU tier, for chase outcomes, cores, and certain-answer
  verdicts.
* :mod:`repro.engine.executor` -- :class:`Executor`, a process-pool
  mapper with deterministic result order and a guaranteed serial
  fallback (``workers=1`` or unpicklable tasks).

Entry points accept these as optional keyword arguments
(``solve(..., cache=...)``, ``all_four_semantics(..., executor=...,
cache=...)``); the CLI exposes them as ``--workers`` / ``--cache``.
See ``docs/engine.md``.
"""

from .cache import CACHE_SCHEMA, CACHE_VERSION, ResultCache
from .executor import WORKERS_ENV, Executor, default_workers
from .fingerprint import (
    FINGERPRINT_VERSION,
    answer_key,
    fingerprint_answers,
    fingerprint_dependency,
    fingerprint_instance,
    fingerprint_ledger,
    fingerprint_query,
    fingerprint_schema,
    fingerprint_setting,
    solve_key,
    task_key,
)

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_VERSION",
    "Executor",
    "FINGERPRINT_VERSION",
    "ResultCache",
    "WORKERS_ENV",
    "answer_key",
    "default_workers",
    "fingerprint_answers",
    "fingerprint_dependency",
    "fingerprint_instance",
    "fingerprint_ledger",
    "fingerprint_query",
    "fingerprint_schema",
    "fingerprint_setting",
    "solve_key",
    "task_key",
]
