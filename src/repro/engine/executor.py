"""A process-pool executor with a guaranteed serial fallback.

The expensive per-item work in this codebase -- chasing one possible
world, evaluating a query under one batch of valuations, deciding one
semantics for one query -- is embarrassingly parallel, and every input
(settings, instances, queries, valuations) is picklable.  This module
wraps :class:`concurrent.futures.ProcessPoolExecutor` with the policy
the rest of the library relies on:

* **Determinism.**  Results always come back in submission order, so a
  parallel run is byte-identical to ``workers=1`` (asserted by the
  engine test suite on all four answer semantics).
* **Graceful degradation.**  With ``workers <= 1``, or when a task
  fails an upfront pickle probe, work runs serially in-process -- same
  results, no pool.  ``REPRO_WORKERS`` sets the default width.
* **Telemetry.**  ``engine.tasks_dispatched`` counts items handed to
  the pool, ``engine.serial_tasks`` items run in-process,
  ``engine.pickle_fallbacks`` probe failures; per-worker wall time
  accumulates in the ``engine.worker`` span stats (recorded by the
  parent from timings measured inside the workers).

Worker callables must be module-level functions (fork + pickle); the
higher-level entry points (:meth:`Executor.map_worlds`,
:meth:`Executor.map_valuations`, :meth:`Executor.batch_answer`) ship
their own.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..obs import counter, span_stats

#: Environment variable consulted for the default pool width.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Pool width from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _timed(payload: Tuple[Callable, tuple]) -> Tuple[float, object]:
    """Run one task in a worker, returning (elapsed seconds, result)."""
    fn, args = payload
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


class Executor:
    """Maps functions over items, in processes when it pays off.

    ``workers=None`` reads :func:`default_workers`.  The underlying pool
    is created lazily on first parallel dispatch and reused until
    :meth:`close`; the instance is a context manager.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = default_workers() if workers is None else max(1, workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"Executor(workers={self.workers}, pool={state})"

    # ------------------------------------------------------------------
    # Core mapping primitive
    # ------------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable,
        arg_tuples: Iterable[tuple],
        *,
        label: str = "engine.worker",
    ) -> List[object]:
        """``[fn(*args) for args in arg_tuples]``, possibly in processes.

        Results are returned in submission order regardless of worker
        completion order.  Falls back to serial execution when the pool
        is unavailable, the task list is trivial, or ``(fn, first_args)``
        does not pickle.
        """
        tasks = list(arg_tuples)
        if not tasks:
            return []
        if self.parallel and len(tasks) > 1 and self._picklable(fn, tasks[0]):
            return self._map_parallel(fn, tasks, label)
        counter("engine.serial_tasks").inc(len(tasks))
        return [fn(*args) for args in tasks]

    def _picklable(self, fn: Callable, first: tuple) -> bool:
        try:
            pickle.dumps((fn, first))
        except Exception:
            counter("engine.pickle_fallbacks").inc()
            return False
        return True

    def _map_parallel(
        self, fn: Callable, tasks: List[tuple], label: str
    ) -> List[object]:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        counter("engine.tasks_dispatched").inc(len(tasks))
        stats = span_stats(label)
        results: List[object] = []
        try:
            for elapsed, result in self._pool.map(
                _timed, [(fn, args) for args in tasks]
            ):
                stats.record(elapsed)
                results.append(result)
        except (pickle.PicklingError, AttributeError, TypeError):
            # A later task failed to pickle after the probe passed (e.g.
            # an unpicklable closure deep inside one argument): redo the
            # whole batch serially so callers still get every result.
            counter("engine.pickle_fallbacks").inc()
            counter("engine.serial_tasks").inc(len(tasks))
            return [fn(*args) for args in tasks]
        return results

    # ------------------------------------------------------------------
    # Domain-level entry points
    # ------------------------------------------------------------------

    def map_worlds(
        self,
        fn: Callable,
        worlds: Iterable,
        *extra_args,
        label: str = "engine.worlds",
    ) -> List[object]:
        """Apply ``fn(world, *extra_args)`` to each possible world /
        solution in a space, preserving order."""
        return self.map_tasks(
            fn, [(world, *extra_args) for world in worlds], label=label
        )

    def map_valuations(
        self,
        fn: Callable,
        valuations: Iterable,
        *extra_args,
        chunk_size: Optional[int] = None,
        label: str = "engine.valuations",
    ) -> List[object]:
        """Apply ``fn(chunk, *extra_args)`` to chunks of a valuation
        stream; returns per-chunk results in order.

        Valuations are tiny dicts but very numerous, so they are batched
        (about four chunks per worker by default) to amortize the IPC
        cost of a process round trip.
        """
        items = list(valuations)
        if not items:
            return []
        if chunk_size is None:
            chunk_size = max(1, len(items) // (self.workers * 4) or 1)
        chunks = [
            items[start : start + chunk_size]
            for start in range(0, len(items), chunk_size)
        ]
        return self.map_tasks(
            fn, [(chunk, *extra_args) for chunk in chunks], label=label
        )

    def batch_answer(
        self,
        setting,
        source,
        queries: Sequence,
        semantics: str = "certain",
        *,
        cache=None,
    ) -> List[frozenset]:
        """Answer many queries under one semantics, one task per query.

        ``semantics`` is one of the four names accepted by
        :class:`repro.answering.decision.AnswerLanguage.SEMANTICS`.
        """
        from ..answering.semantics import _semantics_fn  # lazy: avoid cycle

        answer = _semantics_fn(semantics)
        results = self.map_worlds(
            answer,
            queries,
            setting,
            source,
            label="engine.batch_answer",
        )
        return list(results)
