"""A process-pool executor with a guaranteed serial fallback.

The expensive per-item work in this codebase -- chasing one possible
world, evaluating a query under one batch of valuations, deciding one
semantics for one query -- is embarrassingly parallel, and every input
(settings, instances, queries, valuations) is picklable.  This module
wraps :class:`concurrent.futures.ProcessPoolExecutor` with the policy
the rest of the library relies on:

* **Determinism.**  Results always come back in submission order, so a
  parallel run is byte-identical to ``workers=1`` (asserted by the
  engine test suite on all four answer semantics).
* **Graceful degradation.**  With ``workers <= 1``, or when a task
  fails an upfront pickle probe, work runs serially in-process -- same
  results, no pool.  ``REPRO_WORKERS`` sets the default width.
* **Telemetry.**  ``engine.tasks_dispatched`` counts items handed to
  the pool, ``engine.serial_tasks`` items run in-process,
  ``engine.pickle_fallbacks`` probe failures.  Every pooled task runs
  inside :func:`_run_task`, a worker harness that resets the worker's
  registry, roots its span stack at the parent's current span path,
  runs the task, and ships the whole registry state (counters, span
  histograms, standalone histograms, and -- when the parent has a live
  sink -- the raw trace events) back alongside the result.  The parent
  folds each blob in by name via ``Telemetry.merge_state``, so
  ``snapshot()`` reflects all work regardless of ``REPRO_WORKERS`` and
  a parallel ``--trace-viewer`` renders one coherent trace with a lane
  per worker.  Task latency and pool queue wait land in the
  ``engine.executor.task_seconds`` / ``.queue_wait_seconds``
  histograms.

Worker callables must be module-level functions (fork + pickle); the
higher-level entry points (:meth:`Executor.map_worlds`,
:meth:`Executor.map_valuations`, :meth:`Executor.batch_answer`) ship
their own.
"""

from __future__ import annotations

import os
import pickle
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..obs import (
    NULL_SINK,
    RecordingSink,
    attribution,
    counter,
    get_telemetry,
    histogram,
)

#: Environment variable consulted for the default pool width.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Pool width from ``REPRO_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _run_task(payload: tuple) -> Tuple[float, object, dict]:
    """The worker harness: run one task under fresh worker telemetry.

    Returns ``(elapsed seconds, result, state)`` where ``state`` is the
    worker registry's picklable ``export_state`` blob plus the pool
    queue wait, the worker's pid (its trace lane), and -- when the
    parent asked for them -- the task's raw trace events.

    The registry is reset *in place* at task start: forked workers
    inherit the parent's aggregates, and without the reset those
    inherited values would be exported and double-counted on merge.
    Resetting in place keeps module-level prefetched Counter handles
    valid (the documented hot-path idiom).
    """
    fn, args, label, base_path, want_events, submitted_wall, attributed = (
        payload
    )
    telemetry = get_telemetry()
    telemetry.reset()
    telemetry.seed(base_path)
    # The parent's attributed-execution flag travels in the payload (not
    # via fork inheritance: the pool may predate the enable, and spawn
    # platforms re-import with a fresh default).  The reset above already
    # cleared any inherited attribution tables, so nothing double-counts.
    attribution.enable(attributed)
    queue_wait = max(0.0, time.time() - submitted_wall)
    # Never emit into an inherited parent sink (a forked JsonLinesSink
    # would interleave writes with the parent's): record locally when
    # the parent wants events, otherwise stay silent.
    sink = RecordingSink() if want_events else NULL_SINK
    previous_sink = telemetry.install_sink(sink)
    start = time.perf_counter()
    try:
        # The labeled span is opened *here*, in the worker, so its stats
        # (and, when traced, its start/end events) travel back in the
        # state blob: the parent's merged snapshot aggregates per-task
        # worker wall time under ``<parent span>/<label>``, and every
        # task is visible on its worker's trace lane even when the task
        # body has no instrumentation of its own.
        with telemetry.span(label):
            result = fn(*args)
    finally:
        elapsed = time.perf_counter() - start
        telemetry.install_sink(previous_sink)
    state = telemetry.export_state()
    state["queue_wait"] = queue_wait
    state["lane"] = os.getpid()
    if want_events:
        state["events"] = sink.events
    return elapsed, result, state


class Executor:
    """Maps functions over items, in processes when it pays off.

    ``workers=None`` reads :func:`default_workers`.  The underlying pool
    is created lazily on first parallel dispatch and reused until
    :meth:`close`; the instance is a context manager.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = default_workers() if workers is None else max(1, workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Pickle-probe verdicts per callable: repeated submissions of
        #: the same worker function skip the probe (which re-pickles the
        #: first argument tuple -- expensive for instance-sized args).
        self._probe_cache: dict = {}
        #: Propagated into every worker-side trace event this executor
        #: replays, so a multi-process trace is attributable to one run.
        self.trace_id = uuid.uuid4().hex[:16]

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"Executor(workers={self.workers}, pool={state})"

    # ------------------------------------------------------------------
    # Core mapping primitive
    # ------------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable,
        arg_tuples: Iterable[tuple],
        *,
        label: str = "engine.worker",
    ) -> List[object]:
        """``[fn(*args) for args in arg_tuples]``, possibly in processes.

        Results are returned in submission order regardless of worker
        completion order.  Falls back to serial execution when the pool
        is unavailable, the task list is trivial, or ``(fn, first_args)``
        does not pickle.
        """
        tasks = list(arg_tuples)
        if not tasks:
            return []
        if self.parallel and len(tasks) > 1 and self._picklable(fn, tasks[0]):
            return self._map_parallel(fn, tasks, label)
        counter("engine.serial_tasks").inc(len(tasks))
        return [fn(*args) for args in tasks]

    def _picklable(self, fn: Callable, first: tuple) -> bool:
        """Probe ``(fn, first)`` for picklability, memoized per callable.

        A positive verdict is cached on ``fn``: later batches skip the
        probe round-trip entirely (``engine.probe_cache_hits``), and an
        argument that turns out unpicklable anyway is still caught by
        the batch-level serial fallback in :meth:`_map_parallel`.  A
        negative verdict is cached only when ``fn`` *itself* does not
        pickle (a lambda or closure stays unpicklable forever); failures
        caused by the arguments are re-probed next time.
        """
        try:
            cached = self._probe_cache.get(fn)
        except TypeError:  # unhashable callable: probe every time
            cached = None
            fn_key = None
        else:
            fn_key = fn
        if cached is not None:
            counter("engine.probe_cache_hits").inc()
            if not cached:
                counter("engine.pickle_fallbacks").inc()
            return cached
        try:
            pickle.dumps((fn, first))
        except Exception:
            counter("engine.pickle_fallbacks").inc()
            if fn_key is not None:
                try:
                    pickle.dumps(fn)
                except Exception:
                    self._probe_cache[fn_key] = False
            return False
        if fn_key is not None:
            self._probe_cache[fn_key] = True
        return True

    def _map_parallel(
        self, fn: Callable, tasks: List[tuple], label: str
    ) -> List[object]:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        counter("engine.tasks_dispatched").inc(len(tasks))
        telemetry = get_telemetry()
        base_path = telemetry.current_path
        want_events = telemetry.emitting
        submitted_wall = time.time()
        attributed = attribution.enabled()
        payloads = [
            (
                fn,
                args,
                label,
                base_path,
                want_events,
                submitted_wall,
                attributed,
            )
            for args in tasks
        ]
        results: List[object] = []
        worker_states: List[Tuple[float, dict]] = []
        try:
            for elapsed, result, state in self._pool.map(_run_task, payloads):
                worker_states.append((elapsed, state))
                results.append(result)
        except (pickle.PicklingError, AttributeError, TypeError):
            # A later task failed to pickle after the probe passed (e.g.
            # an unpicklable closure deep inside one argument): redo the
            # whole batch serially so callers still get every result.
            counter("engine.pickle_fallbacks").inc()
            counter("engine.serial_tasks").inc(len(tasks))
            return [fn(*args) for args in tasks]
        # Merge only after the whole batch came back: the serial
        # fallback above re-runs everything, so folding worker blobs in
        # as they stream would double-count a half-completed batch.
        # Per-task wall time under the ``label`` span arrives via the
        # worker harness's own span (merged below), so the parent only
        # records the executor-level histograms here.
        task_hist = histogram("engine.executor.task_seconds")
        wait_hist = histogram("engine.executor.queue_wait_seconds")
        for elapsed, state in worker_states:
            task_hist.record(elapsed)
            wait_hist.record(float(state.get("queue_wait", 0.0)))
            telemetry.merge_state(state)
            events = state.get("events")
            if events:
                telemetry.replay_events(
                    events,
                    lane=int(state.get("lane", 0)),
                    epoch_wall=float(state["epoch_wall"]),
                    trace_id=self.trace_id,
                )
        return results

    # ------------------------------------------------------------------
    # Domain-level entry points
    # ------------------------------------------------------------------

    def map_worlds(
        self,
        fn: Callable,
        worlds: Iterable,
        *extra_args,
        label: str = "engine.worlds",
    ) -> List[object]:
        """Apply ``fn(world, *extra_args)`` to each possible world /
        solution in a space, preserving order."""
        return self.map_tasks(
            fn, [(world, *extra_args) for world in worlds], label=label
        )

    def map_valuations(
        self,
        fn: Callable,
        valuations: Iterable,
        *extra_args,
        chunk_size: Optional[int] = None,
        label: str = "engine.valuations",
    ) -> List[object]:
        """Apply ``fn(chunk, *extra_args)`` to chunks of a valuation
        stream; returns per-chunk results in order.

        Valuations are tiny dicts but very numerous, so they are batched
        (about four chunks per worker by default) to amortize the IPC
        cost of a process round trip.
        """
        items = list(valuations)
        if not items:
            return []
        if chunk_size is None:
            chunk_size = max(1, len(items) // (self.workers * 4) or 1)
        chunks = [
            items[start : start + chunk_size]
            for start in range(0, len(items), chunk_size)
        ]
        return self.map_tasks(
            fn, [(chunk, *extra_args) for chunk in chunks], label=label
        )

    def batch_answer(
        self,
        setting,
        source,
        queries: Sequence,
        semantics: str = "certain",
        *,
        cache=None,
    ) -> List[frozenset]:
        """Answer many queries under one semantics, one task per query.

        ``semantics`` is one of the four names accepted by
        :class:`repro.answering.decision.AnswerLanguage.SEMANTICS`.
        """
        from ..answering.semantics import _semantics_fn  # lazy: avoid cycle

        answer = _semantics_fn(semantics)
        results = self.map_worlds(
            answer,
            queries,
            setting,
            source,
            label="engine.batch_answer",
        )
        return list(results)
