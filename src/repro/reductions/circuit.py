"""PTIME-hardness gadgets (Propositions 6.6 and 7.8).

Both propositions assert PTIME-hardness (under logspace reductions) of
problems our library solves in polynomial time:

* Proposition 6.6: Existence-of-CWA-Solutions(D) for some weakly acyclic
  D;
* Proposition 7.8: the four answer semantics for some setting with full
  target tgds only and a conjunctive query.

The canonical PTIME-complete problem we reduce from is **path systems
accessibility** (Cook's problem P; equivalently, monotone circuit
value): given axioms ``A ⊆ N`` and rules ``(x, y, z)`` ("x is derivable
from y and z"), decide whether a goal node is derivable.

Reductions:

* derivability is computed by a single full target tgd
  ``Deriv(y) ∧ Deriv(z) ∧ Rule'(x,y,z) → Deriv(x)`` -- the chase *is* the
  fixpoint computation;
* for Proposition 7.8 the query ``Q() :- Goal'(g), Deriv(g)`` is true
  (under all four semantics -- the chase produces no nulls) iff the goal
  is derivable;
* for Proposition 6.6 an egd ``Deriv(g) ∧ Goal'(g) ∧ Zero(u) ∧ One(w) →
  u = w`` (with distinct constants 0, 1 in Zero/One) makes the chase
  fail iff the goal is derivable, so a CWA-solution exists iff the goal
  is *not* derivable.

A monotone circuit evaluator plus a circuit-to-path-system compiler are
included so benchmarks can scale inputs naturally.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Const
from ..exchange.setting import DataExchangeSetting
from ..logic.parser import parse_query
from ..logic.queries import Query


class PathSystem:
    """A path system: nodes, axioms, rules (x from y and z), one goal."""

    def __init__(
        self,
        axioms: Iterable[str],
        rules: Iterable[Tuple[str, str, str]],
        goal: str,
    ):
        self.axioms: Tuple[str, ...] = tuple(dict.fromkeys(axioms))
        self.rules: Tuple[Tuple[str, str, str], ...] = tuple(rules)
        self.goal = goal

    def derivable(self) -> Set[str]:
        """The least fixpoint of the rules over the axioms."""
        known: Set[str] = set(self.axioms)
        changed = True
        while changed:
            changed = False
            for node, left, right in self.rules:
                if node not in known and left in known and right in known:
                    known.add(node)
                    changed = True
        return known

    @property
    def goal_derivable(self) -> bool:
        return self.goal in self.derivable()


class MonotoneCircuit:
    """A monotone Boolean circuit: inputs and AND/OR gates.

    ``gates`` maps a gate name to ``("and" | "or", left, right)``;
    ``inputs`` maps input names to Boolean values.
    """

    def __init__(
        self,
        inputs: Dict[str, bool],
        gates: Dict[str, Tuple[str, str, str]],
        output: str,
    ):
        self.inputs = dict(inputs)
        self.gates = dict(gates)
        self.output = output

    def evaluate(self) -> bool:
        """Evaluate the circuit bottom-up (gates may be listed in any
        topological-compatible order; cycles raise)."""
        values: Dict[str, bool] = dict(self.inputs)

        def value_of(name: str, seen: Tuple[str, ...] = ()) -> bool:
            if name in values:
                return values[name]
            if name in seen:
                raise ValueError(f"cycle through gate {name!r}")
            kind, left, right = self.gates[name]
            lv = value_of(left, seen + (name,))
            rv = value_of(right, seen + (name,))
            result = (lv and rv) if kind == "and" else (lv or rv)
            values[name] = result
            return result

        return value_of(self.output)

    def to_path_system(self) -> PathSystem:
        """Compile to a path system: axioms are the true inputs; an AND
        gate is one rule; an OR gate is two rules (one per operand,
        using the operand twice)."""
        axioms = [name for name, value in self.inputs.items() if value]
        rules: List[Tuple[str, str, str]] = []
        for name, (kind, left, right) in self.gates.items():
            if kind == "and":
                rules.append((name, left, right))
            else:
                rules.append((name, left, left))
                rules.append((name, right, right))
        return PathSystem(axioms, rules, self.output)


def random_circuit(
    inputs: int, gates: int, seed: int = 0, true_fraction: float = 0.5
) -> MonotoneCircuit:
    """A random layered monotone circuit for scaling benchmarks."""
    rng = random.Random(seed)
    input_values = {
        f"in{i}": rng.random() < true_fraction for i in range(inputs)
    }
    names = list(input_values)
    gate_table: Dict[str, Tuple[str, str, str]] = {}
    for index in range(gates):
        name = f"g{index}"
        kind = rng.choice(("and", "or"))
        left, right = rng.choice(names), rng.choice(names)
        gate_table[name] = (kind, left, right)
        names.append(name)
    return MonotoneCircuit(input_values, gate_table, names[-1])


# ----------------------------------------------------------------------
# Settings
# ----------------------------------------------------------------------


def derivability_setting() -> DataExchangeSetting:
    """Full-tgds-only setting computing path-system derivability
    (Proposition 7.8's hardness carrier; Table 1, row 4)."""
    sigma = Schema.of(Axiom=1, Rule=3, Goal=1)
    tau = Schema.of(Deriv=1, RuleT=3, GoalT=1)
    st = [
        "Axiom(x) -> Deriv(x)",
        "Rule(x, y, z) -> RuleT(x, y, z)",
        "Goal(x) -> GoalT(x)",
    ]
    tdeps = ["Deriv(y) & Deriv(z) & RuleT(x, y, z) -> Deriv(x)"]
    return DataExchangeSetting.from_strings(sigma, tau, st, tdeps)


def existence_hardness_setting() -> DataExchangeSetting:
    """Weakly acyclic setting for Proposition 6.6: the chase fails (no
    CWA-solution exists) iff the goal is derivable."""
    sigma = Schema.of(Axiom=1, Rule=3, Goal=1, Bit=1)
    tau = Schema.of(Deriv=1, RuleT=3, GoalT=1, Zero=1, One=1)
    st = [
        "Axiom(x) -> Deriv(x)",
        "Rule(x, y, z) -> RuleT(x, y, z)",
        "Goal(x) -> GoalT(x)",
        "Bit(b) -> Zero('0') & One('1')",
    ]
    tdeps = [
        "Deriv(y) & Deriv(z) & RuleT(x, y, z) -> Deriv(x)",
        "Deriv(g) & GoalT(g) & Zero(u) & One(w) -> u = w",
    ]
    return DataExchangeSetting.from_strings(sigma, tau, st, tdeps)


def encode_path_system(system: PathSystem, with_bit: bool = False) -> Instance:
    """The source instance for either setting."""
    arities = {"Axiom": 1, "Rule": 3, "Goal": 1}
    if with_bit:
        arities["Bit"] = 1
    sigma = Schema.from_mapping(arities)
    source = Instance()
    for axiom in system.axioms:
        source.add(Atom(sigma["Axiom"], (Const(axiom),)))
    for node, left, right in system.rules:
        source.add(
            Atom(sigma["Rule"], (Const(node), Const(left), Const(right)))
        )
    source.add(Atom(sigma["Goal"], (Const(system.goal),)))
    if with_bit:
        source.add(Atom(sigma["Bit"], (Const("0"),)))
    return source


def goal_query() -> Query:
    """``Q() :- GoalT(g), Deriv(g)`` -- Proposition 7.8's query."""
    return parse_query("Q() :- GoalT(g), Deriv(g)")


def decide_derivable_via_certain_answers(system: PathSystem) -> bool:
    """Goal derivable ⟺ the certain answer of Q is true.

    The setting has full tgds only (no nulls anywhere), so by
    Theorem 7.1 / Lemma 7.7 all four semantics coincide with the naive
    evaluation on the chase result.
    """
    from ..answering.naive import ucq_certain_answers

    setting = derivability_setting()
    source = encode_path_system(system)
    return bool(ucq_certain_answers(setting, source, goal_query()))


def decide_derivable_via_existence(system: PathSystem) -> bool:
    """Goal derivable ⟺ *no* CWA-solution exists (Proposition 6.6)."""
    from ..exchange.solve import existence_of_cwa_solutions

    setting = existence_hardness_setting()
    source = encode_path_system(system, with_bit=True)
    return not existence_of_cwa_solutions(setting, source)
