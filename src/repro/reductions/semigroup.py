"""The Kolaitis-Panttaja-Tan setting ``D_emb`` and Example 6.1.

``D_emb`` encodes the embedding problem for finite semigroups: a source
instance encodes a partial binary function p, and a *solution* exists iff
p extends to a finite total associative function.  Kolaitis et al. use it
to prove Existence-of-Solutions undecidable; the paper's Example 6.1
shows the same reduction does **not** work for CWA-solutions: the source
``S = {R(0,1,1)}`` has solutions (addition modulo k+2, for any k) but *no*
CWA-solution -- any finite candidate T would contain a maximal chain
``R'(0,1,v₀), R'(v₀,1,v₁), ..., R'(v_{k-1},1,v_k)`` that d_total closes
into a cycle, and no cycle maps homomorphically into the acyclic chain of
``Z_{k+2}`` -- contradicting universality.

This module provides the setting, encodings of partial functions, the
modular-addition solutions, and the chain argument as an executable
refutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Const, Value
from ..exchange.setting import DataExchangeSetting
from ..homomorphism.search import find_homomorphism

SOURCE_RELATION = "R"
TARGET_RELATION = "Rt"


def d_emb_setting() -> DataExchangeSetting:
    """The setting of Example 6.1 (from [11]).

    * one copy s-t-tgd ``R(x,y,z) → R'(x,y,z)``,
    * ``d_func``:  R'(x,y,z₁) ∧ R'(x,y,z₂) → z₁ = z₂,
    * ``d_assoc``: R'(x,y,u) ∧ R'(y,z,v) ∧ R'(u,z,w) → R'(x,v,w),
    * ``d_total``: R'(x₁,x₂,x₃) ∧ R'(y₁,y₂,y₃) → ∃z R'(x_i, y_j, z)
      for every i, j ∈ {1,2,3} (nine tgds, one per conjunct of the
      paper's big conjunction).
    """
    sigma = Schema.of(**{SOURCE_RELATION: 3})
    tau = Schema.of(**{TARGET_RELATION: 3})
    st = [f"{SOURCE_RELATION}(x, y, z) -> {TARGET_RELATION}(x, y, z)"]
    tdeps = [
        f"{TARGET_RELATION}(x, y, z1) & {TARGET_RELATION}(x, y, z2) -> z1 = z2",
        f"{TARGET_RELATION}(x, y, u) & {TARGET_RELATION}(y, z, v) & "
        f"{TARGET_RELATION}(u, z, w) -> {TARGET_RELATION}(x, v, w)",
    ]
    for i in range(1, 4):
        for j in range(1, 4):
            tdeps.append(
                f"{TARGET_RELATION}(x1, x2, x3) & {TARGET_RELATION}(y1, y2, y3) "
                f"-> exists z . {TARGET_RELATION}(x{i}, y{j}, z)"
            )
    return DataExchangeSetting.from_strings(sigma, tau, st, tdeps)


def encode_partial_function(graph: Dict[Tuple[str, str], str]) -> Instance:
    """``S = {R(x, y, z) | p(x, y) = z}`` for a partial function p."""
    relation = RelationSymbol(SOURCE_RELATION, 3)
    source = Instance()
    for (left, right), result in sorted(graph.items()):
        source.add(
            Atom(relation, (Const(left), Const(right), Const(result)))
        )
    return source


def example_6_1_source() -> Instance:
    """``S = {R(0, 1, 1)}``."""
    return encode_partial_function({("0", "1"): "1"})


def modular_addition_solution(k: int) -> Instance:
    """``T' = {R'(a,b,c) | a + b = c mod (k+2)}`` -- a finite solution
    for Example 6.1's source, for every k ≥ 0."""
    modulus = k + 2
    relation = RelationSymbol(TARGET_RELATION, 3)
    target = Instance()
    for a in range(modulus):
        for b in range(modulus):
            target.add(
                Atom(
                    relation,
                    (Const(a), Const(b), Const((a + b) % modulus)),
                )
            )
    return target


def successor_chain(target: Instance) -> List[Value]:
    """The maximal chain ``v₀, v₁, ...`` with ``R'(0,1,v₀)`` and
    ``R'(v_{i-1}, 1, v_i)``, pairwise distinct (Example 6.1's argument).

    Stops at the first repetition; on a finite instance satisfying
    d_total the chain always closes into a visited value.
    """
    one = Const("1")
    successor: Dict[Value, Value] = {}
    for atom in target.atoms_of(TARGET_RELATION):
        if atom.args[1] == one:
            successor[atom.args[0]] = atom.args[2]
    chain: List[Value] = []
    seen: Set[Value] = set()
    current = successor.get(Const("0"))
    while current is not None and current not in seen:
        chain.append(current)
        seen.add(current)
        current = successor.get(current)
    return chain


def refute_cwa_solution(target: Instance) -> Optional[str]:
    """Execute Example 6.1's contradiction on a candidate CWA-solution.

    Given any finite solution T for ``S = {R(0,1,1)}`` under D_emb,
    returns a human-readable explanation of why T cannot be a
    CWA-solution: its successor chain (forced to close into a cycle by
    d_total) admits no homomorphism into the strictly longer acyclic
    chain of the modular solution ``Z_{k+2}``.  Returns None only if the
    argument unexpectedly fails (which Theorem 4.8 says cannot happen for
    actual solutions).
    """
    chain = successor_chain(target)
    k = len(chain) - 1
    if k < 0:
        return (
            "T lacks R'(0,1,v) entirely, so it violates d_total "
            "and is not even a solution"
        )
    comparison = modular_addition_solution(k)
    if find_homomorphism(target, comparison) is None:
        return (
            f"T's successor chain has length {k + 1} and closes into a "
            f"cycle; no homomorphism into the modular solution Z_{k + 2} "
            "exists, so T is not universal and hence no CWA-solution "
            "(Theorem 4.8)"
        )
    return None


def is_associative_total(table: Dict[Tuple[str, str], str], domain: Sequence[str]) -> bool:
    """Is ``table`` a total associative function on ``domain``?

    The brute-force check behind the embedding problem; used by tests to
    confirm the modular solutions really encode semigroups.
    """
    for x in domain:
        for y in domain:
            if (x, y) not in table:
                return False
    for x in domain:
        for y in domain:
            for z in domain:
                if table[(table[(x, y)], z)] != table[(x, table[(y, z)])]:
                    return False
    return True


def instance_as_table(target: Instance) -> Dict[Tuple[str, str], str]:
    """Read a target instance back as a function table (names only)."""
    table: Dict[Tuple[str, str], str] = {}
    for atom in target.atoms_of(TARGET_RELATION):
        left, right, result = atom.args
        table[(str(left), str(right))] = str(result)
    return table
