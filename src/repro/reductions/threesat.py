"""3-SAT and the co-NP-hardness of certain answers (Theorem 7.5).

Theorem 7.5 states that for some richly acyclic setting and some
conjunctive query with **one** inequality, deciding the certain answers
is co-NP-complete; the proof (a reduction from the complement of 3-SAT)
is in the unavailable full version.  The paper notes (discussion after
Theorem 7.5) that a slightly weaker version -- a conjunctive query with
**two** inequalities, no target dependencies -- already follows from
Mądry [13], and that his proof carries over to certain□ and certain◇.

We implement that two-inequality reduction, verified end-to-end against
a brute-force SAT solver:

    φ is unsatisfiable  ⟺  certain□(Q, S_φ) = certain◇(Q, S_φ) = true.

Construction
------------
Source: ``Cls(c, v₁, s₁, v₂, s₂, v₃, s₃)`` (clause c with literals
(vᵢ, sᵢ), signs '+'/'-'), ``VarS(v)``, ``Init(0)``.

S-t-tgds (no target dependencies; trivially richly acyclic):

* copy clauses to ``Cl``;
* ``VarS(v) → ∃t V(v, t)`` -- each variable gets an unknown value;
* ``Init(d) → ∃z,o (R0(z) ∧ R1(o) ∧ Fal('+', z) ∧ Fal('-', o))`` -- two
  reference nulls z ("false") and o ("true"), with ``Fal`` mapping each
  literal sign to the value that falsifies it.

A valuation of the core chooses constants for z, o and every t_v.  Read
it as an assignment: v is *true* if t_v = o, *false* if t_v = z, and
*garbage* otherwise.  The query (a UCQ, one disjunct with two
inequalities, one pure) is true on a world iff the world is garbage or
falsifies some clause:

* ``Q_garbage() :- V(v,t), R0(z), R1(o), t ≠ z, t ≠ o``
* ``Q_false()   :- Cl(c,v₁,s₁,v₂,s₂,v₃,s₃),
  V(v₁,t₁), Fal(s₁,t₁), V(v₂,t₂), Fal(s₂,t₂), V(v₃,t₃), Fal(s₃,t₃)``

Correctness: a world with z = o makes every variable either garbage
(→ Q_garbage) or equal to both references, in which case *all* its
literals are false and every clause is (→ Q_false).  A world with z ≠ o
and no garbage is exactly a Boolean assignment, and Q_false holds iff
the assignment falsifies a clause.  Hence every world satisfies Q iff no
satisfying assignment exists.

The deviation from Theorem 7.5's sharper statement (one inequality,
richly acyclic target egds) is recorded in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Const
from ..exchange.setting import DataExchangeSetting
from ..logic.parser import parse_query
from ..logic.queries import Query

POSITIVE = "+"
NEGATIVE = "-"

Literal = Tuple[str, str]  # (variable name, sign)
Clause = Tuple[Literal, Literal, Literal]


class ThreeSat:
    """A 3-CNF formula: a list of three-literal clauses."""

    def __init__(self, clauses: Sequence[Clause]):
        self.clauses: Tuple[Clause, ...] = tuple(clauses)
        variables: List[str] = []
        for clause in self.clauses:
            for variable, sign in clause:
                if sign not in (POSITIVE, NEGATIVE):
                    raise ValueError(f"bad sign {sign!r}")
                if variable not in variables:
                    variables.append(variable)
        self.variables: Tuple[str, ...] = tuple(variables)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Is every clause satisfied?"""
        for clause in self.clauses:
            satisfied = False
            for variable, sign in clause:
                value = assignment[variable]
                if (sign == POSITIVE and value) or (
                    sign == NEGATIVE and not value
                ):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def satisfying_assignment(self) -> Optional[Dict[str, bool]]:
        """Brute-force search; None iff unsatisfiable."""
        for bits in product((False, True), repeat=len(self.variables)):
            assignment = dict(zip(self.variables, bits))
            if self.evaluate(assignment):
                return assignment
        return None

    @property
    def satisfiable(self) -> bool:
        return self.satisfying_assignment() is not None

    def __repr__(self) -> str:
        def lit(literal: Literal) -> str:
            variable, sign = literal
            return variable if sign == POSITIVE else f"¬{variable}"

        return " ∧ ".join(
            "(" + " ∨ ".join(lit(l) for l in clause) + ")"
            for clause in self.clauses
        )


def random_formula(
    variables: int, clauses: int, seed: int = 0
) -> ThreeSat:
    """A random 3-CNF formula (variables named x0, x1, ...)."""
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(variables)]
    built: List[Clause] = []
    for _ in range(clauses):
        chosen = rng.sample(names, 3) if variables >= 3 else [
            rng.choice(names) for _ in range(3)
        ]
        built.append(
            tuple(
                (name, rng.choice((POSITIVE, NEGATIVE))) for name in chosen
            )
        )
    return ThreeSat(built)


def unsatisfiable_formula(variables: int = 2) -> ThreeSat:
    """All 2^3 sign patterns over three fixed variables: unsatisfiable."""
    names = [f"x{i}" for i in range(max(3, variables))]
    a, b, c = names[0], names[1], names[2]
    clauses: List[Clause] = []
    for signs in product((POSITIVE, NEGATIVE), repeat=3):
        clauses.append(((a, signs[0]), (b, signs[1]), (c, signs[2])))
    return ThreeSat(clauses)


# ----------------------------------------------------------------------
# The reduction
# ----------------------------------------------------------------------


def threesat_setting() -> DataExchangeSetting:
    """The (fixed) data exchange setting of the reduction."""
    sigma = Schema.of(Cls=7, VarS=1, Init=1)
    tau = Schema.of(Cl=7, V=2, R0=1, R1=1, Fal=2)
    st = [
        "Cls(c, v1, s1, v2, s2, v3, s3) -> Cl(c, v1, s1, v2, s2, v3, s3)",
        "VarS(v) -> exists t . V(v, t)",
        "Init(d) -> exists z, o . "
        f"R0(z) & R1(o) & Fal('{POSITIVE}', z) & Fal('{NEGATIVE}', o)",
    ]
    return DataExchangeSetting.from_strings(sigma, tau, st, [])


def encode_formula(formula: ThreeSat) -> Instance:
    """``S_φ``: the clauses, the variables, and the init token."""
    sigma = Schema.of(Cls=7, VarS=1, Init=1)
    source = Instance()
    source.add(Atom(sigma["Init"], (Const("0"),)))
    for name in formula.variables:
        source.add(Atom(sigma["VarS"], (Const(name),)))
    for index, clause in enumerate(formula.clauses):
        args = [Const(f"c{index}")]
        for variable, sign in clause:
            args.append(Const(variable))
            args.append(Const(sign))
        source.add(Atom(sigma["Cls"], tuple(args)))
    return source


def unsat_query() -> Query:
    """The Boolean UCQ of the reduction (see module docstring)."""
    return parse_query(
        "Q() :- V(v, t), R0(z), R1(o), t != z, t != o ; "
        "Q() :- Cl(c, v1, s1, v2, s2, v3, s3), "
        "V(v1, t1), Fal(s1, t1), "
        "V(v2, t2), Fal(s2, t2), "
        "V(v3, t3), Fal(s3, t3)"
    )


def sat_witness_query() -> Query:
    """The FO negation of :func:`unsat_query`, for the NP side.

    Theorem 7.5 also states NP-completeness of the *maybe* semantics.
    For Boolean queries, ``maybe◇(¬Q, S) = ¬certain□(Q, S)`` pointwise
    on each solution's worlds, so the same reduction decides SAT through
    the maybe answers of the negated query: φ is satisfiable iff some
    world of some CWA-solution satisfies ¬Q (i.e. encodes a satisfying
    assignment).
    """
    from ..logic.queries import FirstOrderQuery
    from ..logic.formulas import Not

    positive = unsat_query()
    return FirstOrderQuery((), Not(positive.to_formula()))


def decide_sat_via_maybe_answers(formula: ThreeSat) -> bool:
    """φ satisfiable ⟺ the maybe answer of ¬Q on S_φ is true.

    Exercises the NP side of Proposition 7.4 / Theorem 7.5.  For a
    Boolean query on a single solution, ``◇(¬Q)(T) = ¬□Q(T)``
    (some world falsifies Q iff not all worlds satisfy it), so the
    maybe answer is computed by complementing the certain sweep --
    the general brute-force FO path through :func:`sat_witness_query`
    gives the same verdict but enumerates assignments for every
    quantified variable of ¬Q and is only feasible on tiny inputs
    (tests cross-check the two on such inputs).

    maybe◇ ranges over *all* CWA-solutions; since every CWA-solution's
    worlds are included in CanSol's (the setting has no target
    dependencies, so Proposition 5.4 applies and Rep(T) ⊆ Rep(CanSol)),
    evaluating on CanSol is exact, matching Theorem 7.1.
    """
    from ..answering.valuations import certain_on
    from ..cwa.solution import cansol

    setting = threesat_setting()
    source = encode_formula(formula)
    solution = cansol(setting, source)
    if solution is None:
        raise RuntimeError("the reduction setting always has solutions")
    certain = certain_on(
        unsat_query(), solution, setting.target_dependencies, anchors=()
    )
    return not bool(certain)


def decide_unsat_via_certain_answers(
    formula: ThreeSat,
    *,
    semantics: str = "certain",
    fast_anchors: bool = True,
) -> bool:
    """φ unsatisfiable ⟺ the certain answer of Q on S_φ is true.

    ``semantics`` is "certain" (certain□, evaluated on the core per
    Theorem 7.1) or "potential_certain" (certain◇, evaluated on CanSol:
    the setting has no target dependencies, so Proposition 5.4 applies).

    With ``fast_anchors=True`` the valuation enumeration uses an empty
    anchor set, which is sound for this reduction: every term the query
    compares (by join or inequality) binds exclusively to *null-fed*
    positions (V.2, R0.1, R1.1, Fal.2 hold only nulls in any
    CWA-solution; Fal.1 and the Cl columns join constants with
    constants, independent of the valuation).  Hence only the equality
    *pattern* among nulls matters and set partitions cover all cases:
    Bell(#vars + 2) worlds instead of (pool size)^(#vars + 2).  Tests
    cross-check both modes.
    """
    from ..answering.valuations import certain_on
    from ..cwa.solution import cansol, core_solution

    setting = threesat_setting()
    source = encode_formula(formula)
    query = unsat_query()
    anchors = () if fast_anchors else None
    if semantics == "certain":
        solution = core_solution(setting, source)
    elif semantics == "potential_certain":
        solution = cansol(setting, source)
    else:
        raise ValueError(f"unknown semantics {semantics!r}")
    if solution is None:
        raise RuntimeError("the reduction setting always has solutions")
    answers = certain_on(
        query, solution, setting.target_dependencies, anchors=anchors
    )
    return bool(answers)
