"""Turing machines and the undecidability setting D_halt (Theorem 6.2).

Theorem 6.2 proves Existence-of-CWA-Solutions undecidable by building a
fixed data exchange setting ``D_halt`` that simulates deterministic
one-tape Turing machines: a machine M (encoded as a source instance
``S_M``) halts on the empty input iff a CWA-solution for ``S_M`` exists.

This module provides

* a deterministic one-tape Turing machine substrate (the machine model of
  the proof: δ total on (Q ∖ Q_F) × Σ, tape infinite to the right only),
* the setting ``D_halt`` with exactly the paper's dependencies,
* the encoding ``S_M`` of a machine,
* a *witness construction*: for a machine that halts within a budget, the
  finite target instance that the full version's proof exhibits -- the
  run grid with the tape closed off by a NEXTPOS self-loop -- which our
  CWA-presolution recognizer then certifies,
* chase-based simulation checks: the standard chase of ``S_M`` reproduces
  M's configurations step by step (and never terminates, since the
  END rule extends the time-0 tape forever -- which is exactly why the
  *standard* chase cannot decide the problem).

Everything undecidable is exercised under explicit budgets; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.errors import ReproError
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Const, Null, Value
from ..exchange.setting import DataExchangeSetting

BLANK = "_"
LEFT = "L"
RIGHT = "R"

Transition = Tuple[str, str, str]  # (next state, written symbol, direction)


class TuringMachine:
    """A deterministic one-tape Turing machine, tape infinite to the right.

    ``delta`` maps ``(state, symbol)`` to ``(state', symbol', direction)``
    and must be total on ``(states ∖ final_states) × alphabet`` (as in the
    paper's Halt variant).  The blank symbol is implicit in the alphabet.
    """

    def __init__(
        self,
        states: Sequence[str],
        alphabet: Sequence[str],
        delta: Dict[Tuple[str, str], Transition],
        start_state: str,
        final_states: Sequence[str],
    ):
        self.states = tuple(states)
        self.alphabet = tuple(dict.fromkeys(tuple(alphabet) + (BLANK,)))
        self.delta = dict(delta)
        self.start_state = start_state
        self.final_states = frozenset(final_states)
        self._validate()

    def _validate(self) -> None:
        if self.start_state not in self.states:
            raise ReproError(f"unknown start state {self.start_state!r}")
        for final in self.final_states:
            if final not in self.states:
                raise ReproError(f"unknown final state {final!r}")
        for state in self.states:
            if state in self.final_states:
                continue
            for symbol in self.alphabet:
                if (state, symbol) not in self.delta:
                    raise ReproError(
                        f"δ must be total: missing ({state!r}, {symbol!r})"
                    )
        for (state, symbol), (next_state, written, direction) in self.delta.items():
            if state in self.final_states:
                raise ReproError(
                    f"δ must not be defined on final state {state!r}"
                )
            if next_state not in self.states or written not in self.alphabet:
                raise ReproError(
                    f"bad transition δ({state!r}, {symbol!r}) = "
                    f"({next_state!r}, {written!r}, {direction!r})"
                )
            if direction not in (LEFT, RIGHT):
                raise ReproError(f"direction must be L or R, got {direction!r}")

    def run_on_empty(self, max_steps: int) -> "MachineRun":
        """Simulate on the empty input for up to ``max_steps`` steps.

        Positions are 1-based (the paper starts the head at position 1).
        Returns the full configuration history.
        """
        tape: Dict[int, str] = {}
        state = self.start_state
        head = 1
        configurations: List[Configuration] = [
            Configuration(state, head, dict(tape))
        ]
        for _ in range(max_steps):
            if state in self.final_states:
                return MachineRun(True, configurations)
            symbol = tape.get(head, BLANK)
            state, written, direction = self.delta[(state, symbol)]
            tape[head] = written
            head = head - 1 if direction == LEFT else head + 1
            if head < 1:
                raise ReproError(
                    "the machine moved off the left end of the tape"
                )
            configurations.append(Configuration(state, head, dict(tape)))
        halted = state in self.final_states
        return MachineRun(halted, configurations)


class Configuration:
    """One machine configuration: state, head position, written cells."""

    __slots__ = ("state", "head", "tape")

    def __init__(self, state: str, head: int, tape: Dict[int, str]):
        self.state = state
        self.head = head
        self.tape = tape

    def symbol_at(self, position: int) -> str:
        return self.tape.get(position, BLANK)

    def __repr__(self) -> str:
        cells = "".join(
            self.symbol_at(i) for i in range(1, max(self.tape, default=1) + 2)
        )
        return f"⟨{self.state}, head={self.head}, tape={cells!r}⟩"


class MachineRun:
    """The result of a bounded simulation."""

    __slots__ = ("halted", "configurations")

    def __init__(self, halted: bool, configurations: List[Configuration]):
        self.halted = halted
        self.configurations = configurations

    @property
    def steps(self) -> int:
        return len(self.configurations) - 1


# ----------------------------------------------------------------------
# Sample machines
# ----------------------------------------------------------------------


def halting_machine(k: int = 3) -> TuringMachine:
    """Writes ``1`` and moves right ``k`` times, then halts."""
    states = [f"q{i}" for i in range(k + 1)] + ["halt"]
    delta: Dict[Tuple[str, str], Transition] = {}
    for index in range(k):
        for symbol in ("1", BLANK):
            delta[(f"q{index}", symbol)] = (f"q{index + 1}", "1", RIGHT)
    for symbol in ("1", BLANK):
        delta[(f"q{k}", symbol)] = ("halt", symbol, RIGHT)
    return TuringMachine(states, ["1"], delta, "q0", ["halt"])


def looping_machine() -> TuringMachine:
    """Moves right forever, never halting."""
    delta: Dict[Tuple[str, str], Transition] = {
        ("run", BLANK): ("run", BLANK, RIGHT),
        ("run", "1"): ("run", "1", RIGHT),
    }
    return TuringMachine(["run", "halt"], ["1"], delta, "run", ["halt"])


def zigzag_machine() -> TuringMachine:
    """Bounces between positions 1 and 2 forever (a bounded-space loop)."""
    delta: Dict[Tuple[str, str], Transition] = {}
    for symbol in ("1", BLANK):
        delta[("a", symbol)] = ("b", "1", RIGHT)
        delta[("b", symbol)] = ("a", "1", LEFT)
    return TuringMachine(["a", "b", "halt"], ["1"], delta, "a", ["halt"])


# ----------------------------------------------------------------------
# The setting D_halt
# ----------------------------------------------------------------------

DELTA_SOURCE = "DeltaS"
Q0_SOURCE = "QZero"


def d_halt_setting() -> DataExchangeSetting:
    """The paper's ``D_halt`` (proof of Theorem 6.2).

    Source: ``DeltaS/5`` (graph of δ), ``QZero/1`` (the start state).
    Target: ``Delta/5``, ``Q/3``, ``I/3``, ``NEXTPOS/3``, ``END/2``,
    ``NEXT/2`` (the t ⊲ t' relation), ``COPYL/3``, ``COPYR/3``.
    """
    sigma = Schema.of(**{DELTA_SOURCE: 5, Q0_SOURCE: 1})
    tau = Schema.of(
        Delta=5, Q=3, I=3, NEXTPOS=3, END=2, NEXT=2, COPYL=3, COPYR=3
    )
    st = [
        f"{DELTA_SOURCE}(q, s, q2, s2, d) -> Delta(q, s, q2, s2, d)",
        f"{Q0_SOURCE}(q) -> Q(0, q, 1) & I(0, 1, '{BLANK}') & "
        f"I(0, 2, '{BLANK}') & NEXTPOS(0, 1, 2) & END(0, 2)",
    ]
    tdeps = [
        # Transition with a left move.
        f"Q(t, q, p) & I(t, p, s) & NEXTPOS(t, p2, p) & "
        f"Delta(q, s, q2, s2, '{LEFT}') -> exists t2 . "
        "NEXT(t, t2) & Q(t2, q2, p2) & I(t2, p, s2) & "
        "COPYL(t, t2, p) & COPYR(t, t2, p)",
        # Transition with a right move.
        f"Q(t, q, p) & I(t, p, s) & NEXTPOS(t, p, p2) & "
        f"Delta(q, s, q2, s2, '{RIGHT}') -> exists t2 . "
        "NEXT(t, t2) & Q(t2, q2, p2) & I(t2, p, s2) & "
        "COPYL(t, t2, p) & COPYR(t, t2, p)",
        # Copy the tape left of the modified cell.
        "COPYL(t, t2, p) & NEXTPOS(t, p2, p) & I(t, p2, s) -> "
        "COPYL(t, t2, p2) & NEXTPOS(t2, p2, p) & I(t2, p2, s)",
        # Copy the tape right of the modified cell.
        "COPYR(t, t2, p) & NEXTPOS(t, p, p2) & I(t, p2, s) -> "
        "COPYR(t, t2, p2) & NEXTPOS(t2, p, p2) & I(t2, p2, s)",
        # Add a new blank cell at the end of the tape.
        "END(t, p) -> exists p2 . "
        f"NEXTPOS(t, p, p2) & I(t, p2, '{BLANK}') & END(t, p2)",
    ]
    return DataExchangeSetting.from_strings(sigma, tau, st, tdeps)


def encode_machine(machine: TuringMachine) -> Instance:
    """``S_M``: the graph of δ plus the start state (proof of Thm 6.2)."""
    sigma = Schema.of(**{DELTA_SOURCE: 5, Q0_SOURCE: 1})
    delta_relation = sigma[DELTA_SOURCE]
    q0_relation = sigma[Q0_SOURCE]
    source = Instance()
    for (state, symbol), (next_state, written, direction) in sorted(
        machine.delta.items()
    ):
        source.add(
            Atom(
                delta_relation,
                (
                    Const(state),
                    Const(symbol),
                    Const(next_state),
                    Const(written),
                    Const(direction),
                ),
            )
        )
    source.add(Atom(q0_relation, (Const(machine.start_state),)))
    return source


# ----------------------------------------------------------------------
# Witness construction for halting machines
# ----------------------------------------------------------------------


def halting_witness(
    machine: TuringMachine, *, max_steps: int = 200
) -> Instance:
    """A finite target instance witnessing a CWA-solution for ``S_M``.

    For a machine that halts within ``max_steps``, build the run grid the
    full version's proof exhibits:

    * times ``0, t₁, ..., t_k`` (0 is the init constant, the rest nulls),
    * positions ``1, 2, p₃, ..., p_m`` (1, 2 constants, the rest nulls),
      where m exceeds every head position reached, plus the complete
      ``Q / I / NEXTPOS / NEXT / COPYL / COPYR`` facts of the run,
    * the tape closed off by a ``NEXTPOS(t, p_m, p_m)`` self-loop with
      ``I(t, p_m, blank)`` and ``END(0, p_m)``, which satisfies the END
      tgd with ``p' = p`` without growing the instance.

    Raises :class:`ReproError` if the machine does not halt in time.
    The returned instance is certified a CWA-presolution for ``S_M`` by
    the recognizer in tests (machine sizes permitting).
    """
    run = machine.run_on_empty(max_steps)
    if not run.halted:
        raise ReproError(
            f"machine did not halt within {max_steps} steps; "
            "no finite witness can be built"
        )
    configurations = run.configurations
    steps = run.steps

    setting = d_halt_setting()
    tau = setting.target_schema
    q_rel, i_rel = tau["Q"], tau["I"]
    nextpos_rel, end_rel = tau["NEXTPOS"], tau["END"]
    next_rel = tau["NEXT"]
    copyl_rel, copyr_rel = tau["COPYL"], tau["COPYR"]
    delta_rel = tau["Delta"]

    # m = last materialized position: strictly beyond every head position
    # and beyond every written cell, and at least 3 so the self-loop cell
    # is never entered by the head.
    highest = 2
    for configuration in configurations:
        highest = max(highest, configuration.head + 1)
        if configuration.tape:
            highest = max(highest, max(configuration.tape) + 1)
    m = highest + 1

    next_null = 0

    def fresh() -> Null:
        nonlocal next_null
        value = Null(next_null)
        next_null += 1
        return value

    times: List[Value] = [Const("0")]
    times.extend(fresh() for _ in range(steps))
    positions: Dict[int, Value] = {1: Const("1"), 2: Const("2")}
    for index in range(3, m + 1):
        positions[index] = fresh()

    target = Instance()
    # Machine table (copied to the target by the first s-t-tgd).
    for (state, symbol), (next_state, written, direction) in sorted(
        machine.delta.items()
    ):
        target.add(
            Atom(
                delta_rel,
                (
                    Const(state),
                    Const(symbol),
                    Const(next_state),
                    Const(written),
                    Const(direction),
                ),
            )
        )

    for step, configuration in enumerate(configurations):
        t = times[step]
        target.add(
            Atom(
                q_rel,
                (t, Const(configuration.state), positions[configuration.head]),
            )
        )
        for index in range(1, m + 1):
            target.add(
                Atom(i_rel, (t, positions[index], Const(configuration.symbol_at(index))))
            )
        for index in range(1, m):
            target.add(
                Atom(nextpos_rel, (t, positions[index], positions[index + 1]))
            )
        # Close the tape: the END tgd is satisfied with p' = p.
        target.add(Atom(nextpos_rel, (t, positions[m], positions[m])))
        if step + 1 < len(times):
            target.add(Atom(next_rel, (t, times[step + 1])))

    # END facts: the initial tape end (position 2) and the whole chain of
    # end-extensions up to the looped cell, at time 0.
    for index in range(2, m + 1):
        target.add(Atom(end_rel, (Const("0"), positions[index])))
    target.add(Atom(end_rel, (Const("0"), positions[m])))

    # COPYL/COPYR facts for each transition: anchored at the written cell
    # and propagated across the whole materialized tape.
    for step in range(steps):
        t, t_next = times[step], times[step + 1]
        written_at = configurations[step].head
        for index in range(1, written_at + 1):
            target.add(Atom(copyl_rel, (t, t_next, positions[index])))
        for index in range(written_at, m + 1):
            target.add(Atom(copyr_rel, (t, t_next, positions[index])))

    return target


# ----------------------------------------------------------------------
# Chase-based simulation checks
# ----------------------------------------------------------------------


def chase_configurations(
    machine: TuringMachine, *, chase_steps: int
) -> List[Tuple[str, Optional[int]]]:
    """Run the standard chase of ``S_M`` for a budget and read off the
    simulated run: the (state, head-cell index) pairs along the NEXT chain.

    The head cell index is resolved against the NEXTPOS chain of the
    corresponding time value when possible (positions are nulls).  Used
    to verify that D_halt simulates the machine.
    """
    from ..chase.standard import standard_chase

    setting = d_halt_setting()
    source = encode_machine(machine)
    outcome = standard_chase(
        source, list(setting.all_dependencies), max_steps=chase_steps
    )
    instance = outcome.instance

    # Follow the NEXT chain from time 0.
    next_atoms = instance.atoms_of("NEXT")
    successor: Dict[Value, Value] = {a.args[0]: a.args[1] for a in next_atoms}
    chain: List[Value] = [Const("0")]
    while chain[-1] in successor and len(chain) <= chase_steps:
        chain.append(successor[chain[-1]])

    readout: List[Tuple[str, Optional[int]]] = []
    for t in chain:
        q_atoms = [a for a in instance.atoms_of("Q") if a.args[0] == t]
        if not q_atoms:
            break
        state = q_atoms[0].args[1]
        head_value = q_atoms[0].args[2]
        position_index = _position_index(instance, t, head_value)
        readout.append((state.name, position_index))
    return readout


def _position_index(
    instance: Instance, time: Value, position: Value
) -> Optional[int]:
    """The 1-based index of ``position`` on time's NEXTPOS chain."""
    pairs = [
        (a.args[1], a.args[2])
        for a in instance.atoms_of("NEXTPOS")
        if a.args[0] == time
    ]
    successor = dict(pairs)
    current: Optional[Value] = Const("1")
    index = 1
    seen: Set[Value] = set()
    while current is not None and current not in seen:
        if current == position:
            return index
        seen.add(current)
        current = successor.get(current)
        index += 1
    return None
