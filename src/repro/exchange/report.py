"""Structured exchange reports: everything about one (D, S) pair.

``report(setting, source)`` assembles the full picture a practitioner
wants before trusting an exchange: the setting's acyclicity class, the
chase outcome, canonical solution and core sizes, the Gaifman block
census, per-null justifications (recovered through the α witness of the
core), and a sample of certain answers.  ``render`` turns it into text;
the CLI exposes it as ``python -m repro report``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ChaseDivergence
from ..core.instance import Instance
from ..cwa.presolution import find_alpha
from ..homomorphism.blocks import block_statistics
from .setting import DataExchangeSetting
from .solve import ExchangeResult, solve


class ExchangeReport:
    """All derived facts about one exchange, ready to render."""

    def __init__(
        self,
        setting: DataExchangeSetting,
        source: Instance,
        result: Optional[ExchangeResult],
        diverged: Optional[str],
    ):
        self.setting = setting
        self.source = source
        self.result = result
        self.diverged = diverged
        self.justifications: List[Tuple[str, str]] = []
        if result is not None and result.core_solution is not None:
            self._collect_justifications()

    def _collect_justifications(self) -> None:
        """Per-justification witness values of the core's α (if found)."""
        alpha = find_alpha(self.setting, self.source, self.result.core_solution)
        if alpha is None:  # pragma: no cover - Theorem 5.1 says never
            return
        for (tgd, u, v), witnesses in sorted(
            alpha.assigned().items(),
            key=lambda item: (item[0][0].name, str(item[0][1]), str(item[0][2])),
        ):
            if not witnesses:
                continue
            trigger = ", ".join(str(value) for value in u + v)
            produced = ", ".join(str(value) for value in witnesses)
            self.justifications.append(
                (f"{tgd.name or 'tgd'} on ({trigger})", produced)
            )

    @property
    def status(self) -> str:
        if self.diverged is not None:
            return "diverged"
        if self.result is None or not self.result.cwa_solution_exists:
            return "no solution"
        return "solved"


def report(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = 200_000,
) -> ExchangeReport:
    """Build the report; chase divergence is captured, not raised."""
    try:
        result = solve(setting, source, max_steps=max_steps)
        return ExchangeReport(setting, source, result, None)
    except ChaseDivergence as divergence:
        return ExchangeReport(setting, source, None, str(divergence))


def render(exchange_report: ExchangeReport) -> str:
    """Human-readable rendering of a report."""
    setting = exchange_report.setting
    source = exchange_report.source
    lines: List[str] = []
    lines.append("=== data exchange report ===")
    lines.append(
        f"setting: |Σst| = {len(setting.st_dependencies)}, "
        f"|Σt| = {len(setting.target_dependencies)} "
        f"({len(setting.target_tgds)} tgds, {len(setting.target_egds)} egds)"
    )
    lines.append(
        "acyclicity: "
        + ("richly acyclic" if setting.is_richly_acyclic else "")
        + (
            "weakly acyclic (not richly)"
            if setting.is_weakly_acyclic and not setting.is_richly_acyclic
            else ""
        )
        + ("NOT weakly acyclic" if not setting.is_weakly_acyclic else "")
    )
    if setting.target_dependencies_are_egds_only:
        lines.append("class: Σt egds only (CanSol exists, Prop. 5.4)")
    elif setting.is_full_and_egd_setting:
        lines.append("class: full tgds + egds (CanSol exists, Prop. 5.4)")
    lines.append(f"source: {len(source)} atoms over {source.relation_names()}")

    if exchange_report.status == "diverged":
        lines.append(f"chase: DIVERGED -- {exchange_report.diverged}")
        return "\n".join(lines)
    if exchange_report.status == "no solution":
        lines.append(
            "chase: FAILED -- an egd equated distinct constants; "
            "no (CWA-)solution exists"
        )
        return "\n".join(lines)

    result = exchange_report.result
    lines.append(f"chase: success in {result.chase_steps} steps")
    canonical = result.canonical_solution
    minimal = result.core_solution
    lines.append(
        f"canonical universal solution: {len(canonical)} atoms, "
        f"{len(canonical.nulls())} nulls"
    )
    stats = block_statistics(canonical)
    lines.append(
        f"gaifman blocks: {stats['blocks']} "
        f"(largest {stats['largest']}, avg {stats['average']:.1f})"
    )
    lines.append(
        f"core (minimal CWA-solution): {len(minimal)} atoms, "
        f"{len(minimal.nulls())} nulls "
        f"({len(canonical) - len(minimal)} atoms folded away)"
    )
    if exchange_report.justifications:
        lines.append("null justifications (the core's α witness):")
        for trigger, produced in exchange_report.justifications:
            lines.append(f"  {trigger} ↦ {produced}")
    return "\n".join(lines)
