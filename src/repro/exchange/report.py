"""Structured exchange reports: everything about one (D, S) pair.

``report(setting, source)`` assembles the full picture a practitioner
wants before trusting an exchange: the setting's acyclicity class, the
chase outcome, canonical solution and core sizes, the Gaifman block
census, per-null justifications (recovered through the α witness of the
core), a sample of certain/maybe answers per target relation, and a
telemetry snapshot (spans, counters, gauges) of the work performed.
``render`` turns it into text; the CLI exposes it as
``python -m repro report`` (add ``--profile`` for a per-phase table on
stderr, ``--trace-json PATH`` for the raw event stream).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import ChaseDivergence
from ..core.instance import Instance
from ..core.terms import Variable
from ..cwa.presolution import find_alpha
from ..homomorphism.blocks import block_statistics
from ..logic.queries import ConjunctiveQuery
from ..obs import get_telemetry, span
from .setting import DataExchangeSetting
from .solve import ExchangeResult, solve

#: Answer samples enumerate valuations of the core, which is exponential
#: in its null count; skip the sample beyond this many nulls.
ANSWER_SAMPLE_MAX_NULLS = 6


class ExchangeReport:
    """All derived facts about one exchange, ready to render."""

    def __init__(
        self,
        setting: DataExchangeSetting,
        source: Instance,
        result: Optional[ExchangeResult],
        diverged: Optional[str],
        *,
        executor=None,
    ):
        self.setting = setting
        self.source = source
        self.result = result
        self.diverged = diverged
        self.executor = executor
        self.justifications: List[Tuple[str, str]] = []
        #: Per target relation: (name, |certain□|, |maybe◇|) on the core.
        self.answer_samples: List[Tuple[str, int, int]] = []
        #: Telemetry snapshot (``repro.obs`` schema); filled by ``report``.
        self.metrics: Optional[dict] = None
        if result is not None and result.core_solution is not None:
            self._collect_justifications()
            self._collect_answer_samples()

    def _collect_justifications(self) -> None:
        """Per-justification witness values of the core's α (if found)."""
        alpha = find_alpha(self.setting, self.source, self.result.core_solution)
        if alpha is None:  # pragma: no cover - Theorem 5.1 says never
            return
        for (tgd, u, v), witnesses in sorted(
            alpha.assigned().items(),
            key=lambda item: (item[0][0].name, str(item[0][1]), str(item[0][2])),
        ):
            if not witnesses:
                continue
            trigger = ", ".join(str(value) for value in u + v)
            produced = ", ".join(str(value) for value in witnesses)
            self.justifications.append(
                (f"{tgd.name or 'tgd'} on ({trigger})", produced)
            )

    def _collect_answer_samples(self) -> None:
        """Atomic-query answer counts per target relation, on the core.

        For each target relation R/k the sample evaluates
        ``Q(x̄) :- R(x̄)`` under certain□ and maybe◇ on the minimal
        CWA-solution -- a cheap summary of how much of the target is
        definite versus merely possible.  Skipped when the core has too
        many nulls for valuation enumeration to stay cheap.
        """
        from ..answering.valuations import certain_on, maybe_on
        from ..core.atoms import Atom

        minimal = self.result.core_solution
        if len(minimal.nulls()) > ANSWER_SAMPLE_MAX_NULLS:
            return
        dependencies = self.setting.target_dependencies
        with span("report.answer_samples"):
            for name in sorted(self.setting.target_schema.names):
                relation = self.setting.target_schema[name]
                variables = tuple(
                    Variable(f"x{i}") for i in range(relation.arity)
                )
                query = ConjunctiveQuery(
                    variables, [Atom(relation, variables)]
                )
                certain = certain_on(
                    query, minimal, dependencies, executor=self.executor
                )
                maybe = maybe_on(
                    query, minimal, dependencies, executor=self.executor
                )
                self.answer_samples.append((name, len(certain), len(maybe)))

    @property
    def status(self) -> str:
        if self.diverged is not None:
            return "diverged"
        if self.result is None or not self.result.cwa_solution_exists:
            return "no solution"
        return "solved"


def report(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = 200_000,
    cache=None,
    executor=None,
) -> ExchangeReport:
    """Build the report; chase divergence is captured, not raised.

    The returned report carries a telemetry snapshot of everything the
    run did (``report.metrics``); the snapshot is cumulative for the
    process-wide registry -- call :func:`repro.obs.reset` first for a
    per-report reading.

    ``cache`` (a :class:`repro.engine.ResultCache`) lets a repeated
    report skip the chase and core entirely; ``executor`` parallelizes
    the answer-sample valuation sweeps.
    """
    with span("report"):
        try:
            result = solve(setting, source, max_steps=max_steps, cache=cache)
            built = ExchangeReport(
                setting, source, result, None, executor=executor
            )
        except ChaseDivergence as divergence:
            built = ExchangeReport(setting, source, None, str(divergence))
    built.metrics = get_telemetry().snapshot()
    return built


def render(exchange_report: ExchangeReport) -> str:
    """Human-readable rendering of a report."""
    setting = exchange_report.setting
    source = exchange_report.source
    lines: List[str] = []
    lines.append("=== data exchange report ===")
    lines.append(
        f"setting: |Σst| = {len(setting.st_dependencies)}, "
        f"|Σt| = {len(setting.target_dependencies)} "
        f"({len(setting.target_tgds)} tgds, {len(setting.target_egds)} egds)"
    )
    lines.append(
        "acyclicity: "
        + ("richly acyclic" if setting.is_richly_acyclic else "")
        + (
            "weakly acyclic (not richly)"
            if setting.is_weakly_acyclic and not setting.is_richly_acyclic
            else ""
        )
        + ("NOT weakly acyclic" if not setting.is_weakly_acyclic else "")
    )
    if setting.target_dependencies_are_egds_only:
        lines.append("class: Σt egds only (CanSol exists, Prop. 5.4)")
    elif setting.is_full_and_egd_setting:
        lines.append("class: full tgds + egds (CanSol exists, Prop. 5.4)")
    lines.append(f"source: {len(source)} atoms over {source.relation_names()}")

    if exchange_report.status == "diverged":
        lines.append(f"chase: DIVERGED -- {exchange_report.diverged}")
        lines.extend(_metrics_lines(exchange_report))
        return "\n".join(lines)
    if exchange_report.status == "no solution":
        lines.append(
            "chase: FAILED -- an egd equated distinct constants; "
            "no (CWA-)solution exists"
        )
        lines.extend(_metrics_lines(exchange_report))
        return "\n".join(lines)

    result = exchange_report.result
    lines.append(f"chase: success in {result.chase_steps} steps")
    canonical = result.canonical_solution
    minimal = result.core_solution
    lines.append(
        f"canonical universal solution: {len(canonical)} atoms, "
        f"{len(canonical.nulls())} nulls"
    )
    stats = block_statistics(canonical)
    lines.append(
        f"gaifman blocks: {stats['blocks']} "
        f"(largest {stats['largest']}, avg {stats['average']:.1f})"
    )
    lines.append(
        f"core (minimal CWA-solution): {len(minimal)} atoms, "
        f"{len(minimal.nulls())} nulls "
        f"({len(canonical) - len(minimal)} atoms folded away)"
    )
    if exchange_report.justifications:
        lines.append("null justifications (the core's α witness):")
        for trigger, produced in exchange_report.justifications:
            lines.append(f"  {trigger} ↦ {produced}")
    if exchange_report.answer_samples:
        lines.append("answer sample (atomic queries on the core):")
        for name, certain, maybe in exchange_report.answer_samples:
            lines.append(
                f"  {name}: {certain} certain□ answer(s), "
                f"{maybe} maybe◇ answer(s)"
            )
    lines.extend(_metrics_lines(exchange_report))
    return "\n".join(lines)


def _metrics_lines(exchange_report: ExchangeReport) -> List[str]:
    """The metrics section: per-phase wall-times, counters, gauges."""
    metrics = exchange_report.metrics
    if not metrics:
        return []
    lines = ["metrics:"]
    for path, stats in metrics.get("spans", {}).items():
        lines.append(
            f"  [span] {path}: {stats['seconds']:.4f}s "
            f"({stats['count']} call(s))"
        )
    for name, value in metrics.get("counters", {}).items():
        lines.append(f"  [counter] {name}: {value}")
    for name, value in metrics.get("gauges", {}).items():
        lines.append(f"  [gauge] {name}: {value}")
    return lines
