"""Copying data exchange settings (Section 3).

A setting is *copying* if it is of the form ``(σ, τ, Σ_st, ∅)`` where
``τ = {R' | R ∈ σ}`` and ``Σ_st = {R(x̄) → R'(x̄) | R ∈ σ}``: a source
instance is just copied to the target.  The paper uses these settings to
exhibit the anomalies of the classical certain answers semantics and to
show that the CWA semantics behaves as expected (``S_CWA = {T*}`` with
``T* = {R'(ū) | R(ū) ∈ S}``).

Also provided: the extension with a unary "domain" relation D and
s-t-tgds ``R(x₁, ..., x_r) → D(x_i)`` for every R and i, on which the
*certain universal answers* semantics of [7] exhibits the same anomaly.
"""

from __future__ import annotations

from typing import List

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Variable
from ..dependencies.tgd import Tgd
from .setting import DataExchangeSetting

COPY_SUFFIX = "_t"


def copying_setting(source_schema: Schema, suffix: str = COPY_SUFFIX) -> DataExchangeSetting:
    """The copying setting over ``source_schema``.

    >>> setting = copying_setting(Schema.of(E=2, P=1))
    >>> sorted(r.name for r in setting.target_schema)
    ['E_t', 'P_t']
    """
    target_schema = source_schema.primed(suffix)
    st_dependencies: List[Tgd] = []
    for relation in source_schema:
        variables = tuple(Variable(f"x{i + 1}") for i in range(relation.arity))
        st_dependencies.append(
            Tgd(
                premise_atoms=[Atom(relation, variables)],
                conclusion_atoms=[Atom(relation.primed(suffix), variables)],
                name=f"copy_{relation.name}",
            )
        )
    return DataExchangeSetting(source_schema, target_schema, st_dependencies)


def copying_setting_with_domain(
    source_schema: Schema, suffix: str = COPY_SUFFIX, domain_name: str = "Dom"
) -> DataExchangeSetting:
    """A copying setting extended by ``R(x₁,...,x_r) → D(x_i)`` tgds.

    This is the setting from the end of Section 3 on which the certain
    *universal* answers semantics misbehaves.
    """
    domain_relation = RelationSymbol(domain_name, 1)
    target_schema = source_schema.primed(suffix) | Schema([domain_relation])
    st_dependencies: List[Tgd] = []
    for relation in source_schema:
        variables = tuple(Variable(f"x{i + 1}") for i in range(relation.arity))
        st_dependencies.append(
            Tgd(
                premise_atoms=[Atom(relation, variables)],
                conclusion_atoms=[Atom(relation.primed(suffix), variables)],
                name=f"copy_{relation.name}",
            )
        )
        for index in range(relation.arity):
            st_dependencies.append(
                Tgd(
                    premise_atoms=[Atom(relation, variables)],
                    conclusion_atoms=[Atom(domain_relation, (variables[index],))],
                    name=f"dom_{relation.name}_{index + 1}",
                )
            )
    return DataExchangeSetting(source_schema, target_schema, st_dependencies)


def copy_instance(source: Instance, source_schema: Schema, suffix: str = COPY_SUFFIX) -> Instance:
    """``S' = {R'(ū) | R(ū) ∈ S}`` -- the intuitively right solution."""
    copied = Instance()
    for item in source:
        copied.add(Atom(item.relation.primed(suffix), item.args))
    return copied
