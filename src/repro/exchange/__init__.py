"""Data exchange settings and the end-to-end solve driver."""

from .copying import (
    COPY_SUFFIX,
    copy_instance,
    copying_setting,
    copying_setting_with_domain,
)
from .report import ExchangeReport, render, report
from .setting import DataExchangeSetting
from .solve import ExchangeResult, existence_of_cwa_solutions, solve

__all__ = [
    "COPY_SUFFIX",
    "DataExchangeSetting",
    "ExchangeReport",
    "ExchangeResult",
    "copy_instance",
    "copying_setting",
    "copying_setting_with_domain",
    "existence_of_cwa_solutions",
    "render",
    "report",
    "solve",
]
