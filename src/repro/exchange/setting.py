"""Data exchange settings ``D = (σ, τ, Σ_st, Σ_t)`` (Section 2).

A setting bundles the source schema, the target schema, the
source-to-target tgds and the target dependencies, and offers the basic
semantic judgments: is T a solution for S, is it universal, what does the
standard chase produce.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DependencyError, SchemaError
from ..core.instance import Instance
from ..core.schema import Schema
from ..dependencies.base import Dependency, parse_dependency, split_dependencies
from ..dependencies.egd import Egd
from ..dependencies.graph import is_richly_acyclic, is_weakly_acyclic
from ..dependencies.tgd import Tgd
from ..chase.satisfaction import satisfies_all
from ..chase.standard import DEFAULT_MAX_STEPS, standard_chase
from ..homomorphism.search import has_homomorphism


class DataExchangeSetting:
    """A data exchange setting ``D = (σ, τ, Σ_st, Σ_t)``.

    ``Σ_st`` must consist of s-t-tgds (premises over σ, conclusions over
    τ); ``Σ_t`` of target tgds and egds (entirely over τ).  The schemas
    must be disjoint.  All of this is validated at construction time.
    """

    def __init__(
        self,
        source_schema: Schema,
        target_schema: Schema,
        st_dependencies: Sequence[Tgd],
        target_dependencies: Sequence[Dependency] = (),
    ):
        if not source_schema.disjoint_from(target_schema):
            raise SchemaError("source and target schemas must be disjoint")
        self.source_schema = source_schema
        self.target_schema = target_schema
        self.st_dependencies: Tuple[Tgd, ...] = tuple(st_dependencies)
        self.target_dependencies: Tuple[Dependency, ...] = tuple(
            target_dependencies
        )
        self._validate()

    @classmethod
    def from_strings(
        cls,
        source_schema: Schema,
        target_schema: Schema,
        st_dependencies: Iterable[str],
        target_dependencies: Iterable[str] = (),
    ) -> "DataExchangeSetting":
        """Build a setting from dependency strings in the DSL.

        >>> sigma = Schema.of(M=2, N=2)
        >>> tau = Schema.of(E=2, F=2, G=2)
        >>> setting = DataExchangeSetting.from_strings(
        ...     sigma, tau,
        ...     ["M(x1,x2) -> E(x1,x2)",
        ...      "N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)"],
        ...     ["F(y,x) -> exists z . G(x,z)",
        ...      "F(x,y) & F(x,z) -> y = z"])
        >>> setting.is_weakly_acyclic
        True
        """
        joint = source_schema | target_schema
        st_parsed: List[Tgd] = []
        for index, text in enumerate(st_dependencies):
            dependency = parse_dependency(text, joint)
            if not dependency.is_tgd:
                raise DependencyError(f"s-t dependency must be a tgd: {text!r}")
            dependency.name = dependency.name or f"st{index + 1}"
            st_parsed.append(dependency)
        target_parsed: List[Dependency] = []
        for index, text in enumerate(target_dependencies):
            dependency = parse_dependency(text, target_schema)
            dependency.name = dependency.name or f"t{index + 1}"
            target_parsed.append(dependency)
        return cls(source_schema, target_schema, st_parsed, target_parsed)

    def _validate(self) -> None:
        for dependency in self.st_dependencies:
            if not dependency.is_tgd:
                raise DependencyError(
                    f"Σ_st may contain only s-t-tgds, got {dependency!r}"
                )
            for relation in dependency.premise_relations():
                if relation not in self.source_schema:
                    raise DependencyError(
                        f"s-t-tgd premise relation {relation} is not in σ: "
                        f"{dependency!r}"
                    )
            for relation in dependency.conclusion_relations():
                if relation not in self.target_schema:
                    raise DependencyError(
                        f"s-t-tgd conclusion relation {relation} is not in τ: "
                        f"{dependency!r}"
                    )
            if dependency.premise_atoms is None:
                # FO premise: relativize its quantifiers to σ (footnote 2).
                dependency.premise_schema = self.source_schema
        for dependency in self.target_dependencies:
            relations = (
                dependency.premise_relations() | dependency.conclusion_relations()
            )
            for relation in relations:
                if relation not in self.target_schema:
                    raise DependencyError(
                        f"target dependency uses non-target relation "
                        f"{relation}: {dependency!r}"
                    )
            if dependency.is_tgd and dependency.premise_atoms is None:
                raise DependencyError(
                    "target tgds must have conjunctive premises"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def all_dependencies(self) -> Tuple[Dependency, ...]:
        """``Σ = Σ_st ∪ Σ_t`` in a fixed order (s-t first)."""
        return self.st_dependencies + self.target_dependencies

    @property
    def joint_schema(self) -> Schema:
        """``ρ = σ ∪ τ``."""
        return self.source_schema | self.target_schema

    @property
    def target_tgds(self) -> Tuple[Tgd, ...]:
        tgds, _ = split_dependencies(self.target_dependencies)
        return tuple(tgds)

    @property
    def target_egds(self) -> Tuple[Egd, ...]:
        _, egds = split_dependencies(self.target_dependencies)
        return tuple(egds)

    @property
    def tgds(self) -> Tuple[Tgd, ...]:
        """All tgds of Σ (s-t and target)."""
        return self.st_dependencies + self.target_tgds

    @property
    def is_weakly_acyclic(self) -> bool:
        """Definition 6.5, computed on Σ_t."""
        return is_weakly_acyclic(self.target_dependencies)

    @property
    def is_richly_acyclic(self) -> bool:
        """Definition 7.3, computed on Σ_t."""
        return is_richly_acyclic(self.target_dependencies)

    @property
    def has_target_constraints(self) -> bool:
        return bool(self.target_dependencies)

    @property
    def target_dependencies_are_egds_only(self) -> bool:
        """First restricted class of Proposition 5.4 / Table 1 row 3."""
        return all(d.is_egd for d in self.target_dependencies)

    @property
    def is_full_and_egd_setting(self) -> bool:
        """Second restricted class: Σ_st full tgds, Σ_t egds + full tgds
        (Proposition 5.4 / Table 1 row 4)."""
        return all(d.is_full for d in self.st_dependencies) and all(
            d.is_egd or d.is_full for d in self.target_dependencies
        )

    # ------------------------------------------------------------------
    # Instances and solutions
    # ------------------------------------------------------------------

    def validate_source(self, source: Instance) -> None:
        """Check that ``source`` is a source instance: over σ, constants only."""
        for item in source:
            if item.relation not in self.source_schema:
                raise SchemaError(
                    f"source instance mentions non-source relation "
                    f"{item.relation}"
                )
        if not source.is_ground:
            raise SchemaError("source instances must not contain nulls")

    def validate_target(self, target: Instance) -> None:
        """Check that ``target`` is a target instance: over τ (nulls allowed)."""
        for item in target:
            if item.relation not in self.target_schema:
                raise SchemaError(
                    f"target instance mentions non-target relation "
                    f"{item.relation}"
                )

    def is_solution(self, source: Instance, target: Instance) -> bool:
        """``S ∪ T ⊨ Σ_st`` and ``T ⊨ Σ_t`` (Section 2)."""
        self.validate_source(source)
        self.validate_target(target)
        joint = source.union(target)
        return satisfies_all(joint, self.st_dependencies) and satisfies_all(
            target, self.target_dependencies
        )

    def canonical_universal_solution(
        self, source: Instance, *, max_steps: int = DEFAULT_MAX_STEPS
    ) -> Optional[Instance]:
        """The standard-chase result, restricted to τ.

        Returns None when the chase fails (no solution exists).  For
        weakly acyclic settings the chase always terminates and the
        result is a universal solution; for other settings a
        :class:`ChaseDivergence` escape is possible.
        """
        self.validate_source(source)
        outcome = standard_chase(
            source, list(self.all_dependencies), max_steps=max_steps
        )
        if outcome.failed:
            return None
        result = outcome.require_success()
        return result.reduct(self.target_schema)

    def universal_solution_exists(
        self, source: Instance, *, max_steps: int = DEFAULT_MAX_STEPS
    ) -> bool:
        """Whether a universal solution for ``source`` exists.

        Decided by the standard chase; complete for weakly acyclic
        settings (and by Corollary 5.2 this coincides with the existence
        of CWA-solutions).
        """
        return self.canonical_universal_solution(source, max_steps=max_steps) is not None

    def is_universal_solution(self, source: Instance, target: Instance) -> bool:
        """T is universal iff it is a solution with a homomorphism into
        some (equivalently, every) universal solution."""
        if not self.is_solution(source, target):
            return False
        canonical = self.canonical_universal_solution(source)
        if canonical is None:
            return False
        return has_homomorphism(target, canonical)

    def __repr__(self) -> str:
        return (
            f"DataExchangeSetting(σ={self.source_schema!r}, "
            f"τ={self.target_schema!r}, |Σ_st|={len(self.st_dependencies)}, "
            f"|Σ_t|={len(self.target_dependencies)})"
        )
