"""End-to-end data exchange driver.

``solve`` runs a complete exchange: chase, canonical universal solution,
core (= minimal CWA-solution), existence verdicts -- everything Section 6
associates with "computing a CWA-solution".  The result object carries
enough to answer queries afterwards without re-chasing.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ChaseDivergence, ReproError
from ..core.instance import Instance
from ..chase.result import ChaseStatus
from ..chase.seminaive import seminaive_chase
from ..chase.sharding import sharded_chase
from ..chase.standard import DEFAULT_MAX_STEPS, standard_chase
from ..homomorphism.blocks import blockwise_core
from ..homomorphism.core_computation import core
from ..homomorphism.parallel import partitioned_core
from ..io import instance_from_payload, instance_to_payload
from ..obs import counter, gauge, span
from .setting import DataExchangeSetting

CHASE_ENGINES = {
    "standard": standard_chase,
    "seminaive": seminaive_chase,
}

CORE_ALGORITHMS = {
    "blockwise": blockwise_core,
    "folding": core,
    "partitioned": partitioned_core,
}

#: ``shard`` argument values accepted by :func:`solve`.
SHARD_MODES = ("auto", "on", "off")


class ExchangeResult:
    """Outcome of one data exchange run.

    Attributes
    ----------
    setting, source:
        The inputs.
    canonical_solution:
        The standard-chase result restricted to τ, or None when the
        chase failed (no solution exists).
    core_solution:
        ``Core_D(S)`` -- by Theorem 5.1 the minimal CWA-solution -- or
        None when no solution exists.
    chase_steps:
        Number of chase steps performed.
    """

    __slots__ = ("setting", "source", "canonical_solution", "core_solution", "chase_steps")

    def __init__(self, setting, source, canonical_solution, core_solution, chase_steps):
        self.setting: DataExchangeSetting = setting
        self.source: Instance = source
        self.canonical_solution: Optional[Instance] = canonical_solution
        self.core_solution: Optional[Instance] = core_solution
        self.chase_steps: int = chase_steps

    @property
    def cwa_solution_exists(self) -> bool:
        """Corollary 5.2: iff a universal solution exists."""
        return self.core_solution is not None

    @property
    def cwa_solution(self) -> Optional[Instance]:
        """The CWA-solution this run produces: the core (Theorem 5.1)."""
        return self.core_solution

    def __repr__(self) -> str:
        if not self.cwa_solution_exists:
            return "ExchangeResult(no solution)"
        return (
            f"ExchangeResult(|canonical|={len(self.canonical_solution)}, "
            f"|core|={len(self.core_solution)}, steps={self.chase_steps})"
        )


def solve(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    compute_core: bool = True,
    engine: str = "standard",
    core_algorithm: str = "blockwise",
    cache=None,
    executor=None,
    shard: str = "auto",
) -> ExchangeResult:
    """Run the data exchange for ``source`` under ``setting``.

    This is the polynomial-time procedure of Proposition 6.6 for weakly
    acyclic settings: standard chase (polynomially many steps), then the
    core.  For non-weakly-acyclic settings the chase may diverge, in
    which case :class:`ChaseDivergence` propagates -- the Existence
    problem is undecidable in general (Theorem 6.2), so no budget-free
    procedure can exist.

    ``engine`` selects the trigger-discovery strategy ("standard" =
    batched rescans, "seminaive" = delta-driven); both produce
    hom-equivalent canonical solutions and identical cores.
    ``core_algorithm`` is "blockwise" (Gaifman-block folding with exact
    fallback) or "folding" (global endomorphism folding).

    ``cache``: a :class:`repro.engine.ResultCache`; hits skip the chase
    and core computation entirely.  The key covers the setting, the
    source (up to isomorphism), ``max_steps``, ``engine``, and
    ``core_algorithm``; chase *failures* are cached (they are definitive
    verdicts), divergence is not (a larger budget might succeed).

    ``executor``: a :class:`repro.engine.Executor` (or None) used by the
    partitioned paths.  ``shard`` controls the partitioned chase:
    ``"on"`` shards whenever the static analysis allows, ``"off"``
    never, and ``"auto"`` (the default) shards exactly when a parallel
    executor is supplied.  A sharded run upgrades the default
    ``"blockwise"`` core to ``"partitioned"`` -- both paths produce
    results with the same fp/v1 canonical fingerprints as a serial run,
    so cache entries are shared across modes.
    """
    setting.validate_source(source)
    try:
        chase = CHASE_ENGINES[engine]
    except KeyError:
        raise ReproError(
            f"unknown chase engine {engine!r}; pick one of "
            f"{sorted(CHASE_ENGINES)}"
        ) from None
    if core_algorithm not in CORE_ALGORITHMS:
        raise ReproError(
            f"unknown core algorithm {core_algorithm!r}; pick one of "
            f"{sorted(CORE_ALGORITHMS)}"
        )
    if shard not in SHARD_MODES:
        raise ReproError(
            f"unknown shard mode {shard!r}; pick one of {SHARD_MODES}"
        )
    use_shard = shard == "on" or (
        shard == "auto" and executor is not None and executor.parallel
    )
    if core_algorithm == "partitioned" or (
        use_shard and core_algorithm == "blockwise"
    ):
        def core_of(target):
            return partitioned_core(target, executor)
    else:
        core_of = CORE_ALGORITHMS[core_algorithm]
    key = None
    if cache is not None:
        from ..engine.fingerprint import solve_key  # lazy: engine is optional

        key = solve_key(
            setting,
            source,
            max_steps=max_steps,
            engine=engine,
            core_algorithm=core_algorithm,
        )
        hit = cache.get("solve", key)
        if hit is not None:
            result = _result_from_payload(setting, source, hit)
            if result is not None:
                if result.core_solution is None and compute_core and (
                    result.canonical_solution is not None
                ):
                    # Cached by a compute_core=False caller: finish the
                    # job from the cached canonical and upgrade the entry.
                    with span("solve.core_from_cache"):
                        result.core_solution = core_of(
                            result.canonical_solution
                        )
                    cache.put("solve", key, _result_to_payload(result))
                counter("solve.cache_hits").inc()
                return result
    with span("solve"):
        if use_shard:
            outcome = sharded_chase(
                source,
                list(setting.all_dependencies),
                executor=executor,
                engine=engine,
                max_steps=max_steps,
            )
        else:
            outcome = chase(
                source, list(setting.all_dependencies), max_steps=max_steps
            )
        if outcome.status is ChaseStatus.DIVERGED:
            raise ChaseDivergence(outcome.steps, outcome.reason)
        if outcome.status is ChaseStatus.FAILURE:
            result = ExchangeResult(setting, source, None, None, outcome.steps)
        else:
            canonical = outcome.instance.reduct(setting.target_schema)
            gauge("instance.nulls").set(len(canonical.nulls()))
            core_instance = core_of(canonical) if compute_core else None
            result = ExchangeResult(
                setting, source, canonical, core_instance, outcome.steps
            )
    if cache is not None:
        cache.put("solve", key, _result_to_payload(result))
    return result


def _result_to_payload(result: ExchangeResult) -> dict:
    """JSON-serializable form of an :class:`ExchangeResult` (sans inputs)."""
    return {
        "status": "solved" if result.canonical_solution is not None else "failed",
        "chase_steps": result.chase_steps,
        "canonical": (
            instance_to_payload(result.canonical_solution)
            if result.canonical_solution is not None
            else None
        ),
        "core": (
            instance_to_payload(result.core_solution)
            if result.core_solution is not None
            else None
        ),
    }


def _result_from_payload(
    setting: DataExchangeSetting, source: Instance, payload: dict
) -> Optional[ExchangeResult]:
    """Rebuild a cached result; None when the payload is unusable."""
    try:
        canonical = (
            instance_from_payload(payload["canonical"], setting.target_schema)
            if payload.get("canonical") is not None
            else None
        )
        core_instance = (
            instance_from_payload(payload["core"], setting.target_schema)
            if payload.get("core") is not None
            else None
        )
        steps = int(payload["chase_steps"])
    except (ReproError, KeyError, TypeError, ValueError):
        return None
    return ExchangeResult(setting, source, canonical, core_instance, steps)


def existence_of_cwa_solutions(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """The Existence-of-CWA-Solutions(D) decision problem (Section 6).

    PTIME for weakly acyclic settings (Proposition 6.6), undecidable in
    general (Theorem 6.2) -- the step budget makes this a semi-decision
    procedure outside the weakly acyclic class.
    """
    result = solve(setting, source, max_steps=max_steps, compute_core=False)
    return result.canonical_solution is not None
