"""End-to-end data exchange driver.

``solve`` runs a complete exchange: chase, canonical universal solution,
core (= minimal CWA-solution), existence verdicts -- everything Section 6
associates with "computing a CWA-solution".  The result object carries
enough to answer queries afterwards without re-chasing.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ChaseDivergence, ReproError
from ..core.instance import Instance
from ..chase.result import ChaseStatus
from ..chase.seminaive import seminaive_chase
from ..chase.standard import DEFAULT_MAX_STEPS, standard_chase
from ..homomorphism.blocks import blockwise_core
from ..homomorphism.core_computation import core
from ..obs import gauge, span
from .setting import DataExchangeSetting

CHASE_ENGINES = {
    "standard": standard_chase,
    "seminaive": seminaive_chase,
}

CORE_ALGORITHMS = {
    "blockwise": blockwise_core,
    "folding": core,
}


class ExchangeResult:
    """Outcome of one data exchange run.

    Attributes
    ----------
    setting, source:
        The inputs.
    canonical_solution:
        The standard-chase result restricted to τ, or None when the
        chase failed (no solution exists).
    core_solution:
        ``Core_D(S)`` -- by Theorem 5.1 the minimal CWA-solution -- or
        None when no solution exists.
    chase_steps:
        Number of chase steps performed.
    """

    __slots__ = ("setting", "source", "canonical_solution", "core_solution", "chase_steps")

    def __init__(self, setting, source, canonical_solution, core_solution, chase_steps):
        self.setting: DataExchangeSetting = setting
        self.source: Instance = source
        self.canonical_solution: Optional[Instance] = canonical_solution
        self.core_solution: Optional[Instance] = core_solution
        self.chase_steps: int = chase_steps

    @property
    def cwa_solution_exists(self) -> bool:
        """Corollary 5.2: iff a universal solution exists."""
        return self.core_solution is not None

    @property
    def cwa_solution(self) -> Optional[Instance]:
        """The CWA-solution this run produces: the core (Theorem 5.1)."""
        return self.core_solution

    def __repr__(self) -> str:
        if not self.cwa_solution_exists:
            return "ExchangeResult(no solution)"
        return (
            f"ExchangeResult(|canonical|={len(self.canonical_solution)}, "
            f"|core|={len(self.core_solution)}, steps={self.chase_steps})"
        )


def solve(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
    compute_core: bool = True,
    engine: str = "standard",
    core_algorithm: str = "blockwise",
) -> ExchangeResult:
    """Run the data exchange for ``source`` under ``setting``.

    This is the polynomial-time procedure of Proposition 6.6 for weakly
    acyclic settings: standard chase (polynomially many steps), then the
    core.  For non-weakly-acyclic settings the chase may diverge, in
    which case :class:`ChaseDivergence` propagates -- the Existence
    problem is undecidable in general (Theorem 6.2), so no budget-free
    procedure can exist.

    ``engine`` selects the trigger-discovery strategy ("standard" =
    batched rescans, "seminaive" = delta-driven); both produce
    hom-equivalent canonical solutions and identical cores.
    ``core_algorithm`` is "blockwise" (Gaifman-block folding with exact
    fallback) or "folding" (global endomorphism folding).
    """
    setting.validate_source(source)
    try:
        chase = CHASE_ENGINES[engine]
    except KeyError:
        raise ReproError(
            f"unknown chase engine {engine!r}; pick one of "
            f"{sorted(CHASE_ENGINES)}"
        ) from None
    try:
        core_of = CORE_ALGORITHMS[core_algorithm]
    except KeyError:
        raise ReproError(
            f"unknown core algorithm {core_algorithm!r}; pick one of "
            f"{sorted(CORE_ALGORITHMS)}"
        ) from None
    with span("solve"):
        outcome = chase(
            source, list(setting.all_dependencies), max_steps=max_steps
        )
        if outcome.status is ChaseStatus.FAILURE:
            return ExchangeResult(setting, source, None, None, outcome.steps)
        if outcome.status is ChaseStatus.DIVERGED:
            raise ChaseDivergence(outcome.steps, outcome.reason)
        canonical = outcome.instance.reduct(setting.target_schema)
        gauge("instance.nulls").set(len(canonical.nulls()))
        core_instance = core_of(canonical) if compute_core else None
        return ExchangeResult(
            setting, source, canonical, core_instance, outcome.steps
        )


def existence_of_cwa_solutions(
    setting: DataExchangeSetting,
    source: Instance,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """The Existence-of-CWA-Solutions(D) decision problem (Section 6).

    PTIME for weakly acyclic settings (Proposition 6.6), undecidable in
    general (Theorem 6.2) -- the step budget makes this a semi-decision
    procedure outside the weakly acyclic class.
    """
    result = solve(setting, source, max_steps=max_steps, compute_core=False)
    return result.canonical_solution is not None
