"""Incremental re-solving: delta maintenance for small source edits.

``repro.incremental`` maintains a solved exchange under source edits
instead of re-chasing from scratch: the provenance ledger doubles as a
fact-level dependency DAG (deletion cones, DRed-style re-derivation),
the semi-naive engine continues from the surviving chase state seeded
with just the edit, and the blockwise core pass skips or replays the
Gaifman blocks the edit provably could not have touched.  See
``docs/performance.md`` ("Incremental maintenance") for the
architecture and the exactness argument.
"""

from .core import BlockMemo, incremental_core
from .delta import SourceDelta
from .session import DeltaSession

__all__ = [
    "BlockMemo",
    "DeltaSession",
    "SourceDelta",
    "incremental_core",
]
