"""Incremental core computation: blockwise minimization with a memo.

The blockwise core pass (:mod:`repro.homomorphism.blocks`) minimizes
each Gaifman null-block of the canonical solution independently.  After
a small source edit most blocks are untouched, and re-running the fold
search over them is where a from-scratch re-solve spends almost all of
its core time.  This module memoizes the per-block outcome keyed by the
block's *owned atom set* (the atoms mentioning its nulls):

* a block whose owned set is unchanged and whose previous pass found it
  unfoldable is **skipped** outright;
* a block whose owned set is unchanged and whose previous pass folded it
  replays the recorded endomorphism (**replay**: drop the owned atoms,
  add their images) without any fold search;
* everything else is **re-minimized** from scratch.

Soundness of the skip rests on two facts.  Foldability of a block is
monotone in the atoms available as fold images, and those images must
agree with the owned atoms on their constant positions -- so a block
that was unfoldable last round can only have become foldable if some
*changed* atom is a potential image of one of its owned atoms
(:func:`_may_image`).  Unchanged blocks failing that touch test are
provably still unfoldable, *provided no fold ever crosses blocks*:
:func:`~repro.homomorphism.blocks.minimize_block_tracked` detects a
cross-block fold and this module then falls back to a full
:func:`~repro.homomorphism.blocks.blockwise_core` pass and clears the
memo (``incremental.core_fallbacks``).  The fallback keeps the result
exact in all cases; the memo is a speedup, never an approximation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Null
from ..homomorphism.blocks import (
    blockwise_core,
    minimize_block_tracked,
    null_blocks,
)
from ..obs import counter, span
from ..obs.provenance import active_ledger

#: Memo record: ``(folded, mapping, images)``.  ``folded`` False marks an
#: unfoldable block (skip); True carries the composed endomorphism and
#: the image atoms for replay.
_Record = Tuple[bool, Dict, Tuple[Atom, ...]]


class BlockMemo:
    """Per-session memo of block minimization outcomes.

    Keys are frozensets of owned atoms -- a pure function of the block's
    content, stable across re-solves as long as the block (and the fold
    results of the blocks processed before it) did not change.
    """

    __slots__ = ("records",)

    def __init__(self):
        self.records: Dict[FrozenSet[Atom], _Record] = {}

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


def _may_image(changed: Atom, owned: Atom) -> bool:
    """Can ``changed`` serve as a fold image of ``owned``?

    A block fold maps the block's nulls and fixes everything else, so an
    image of ``owned`` must share its relation and agree with it at
    every position holding a constant.  Sharing a value is *not*
    sufficient grounds to skip this test: a new atom matching the owned
    atom's constant skeleton can enable a fold even when it shares no
    null with the block.
    """
    if changed.relation != owned.relation:
        return False
    for changed_arg, owned_arg in zip(changed.args, owned.args):
        if not isinstance(owned_arg, Null) and changed_arg != owned_arg:
            return False
    return True


def _touched(owned: Iterable[Atom], changed: Iterable[Atom]) -> bool:
    """True if any changed atom is a potential fold image of the block."""
    for changed_atom in changed:
        for owned_atom in owned:
            if _may_image(changed_atom, owned_atom):
                return True
    return False


def incremental_core(
    instance: Instance, changed: Iterable[Atom], memo: BlockMemo
) -> Tuple[Instance, bool]:
    """The core of ``instance``, reusing ``memo`` from the previous solve.

    ``changed`` are the atoms added to or removed from the canonical
    solution since the memo was last refreshed (pass all atoms, or an
    empty memo, for a from-scratch pass).  Returns ``(core, fell_back)``
    where ``fell_back`` reports that a cross-block fold forced a full
    :func:`blockwise_core` pass.  The memo is refreshed in place either
    way: entries for vanished blocks are dropped, so it never grows
    beyond the live block count.
    """
    changed = tuple(changed)
    with span("core.incremental"):
        current = instance.copy()
        new_records: Dict[FrozenSet[Atom], _Record] = {}
        # One-pass block->owned-atoms index (every atom's nulls live in a
        # single block).  blockwise_core re-scans the instance per block
        # because its folds may cross blocks and reshape them mid-pass;
        # here a crossing fold aborts to the fallback below, so within a
        # completed pass each block's owned set at its turn is exactly
        # its owned set now, and the per-block scans would be the
        # quadratic dominant cost of re-solving an untouched instance.
        blocks = null_blocks(current)
        block_of: Dict[Null, int] = {}
        for index, block in enumerate(blocks):
            for item in block:
                block_of[item] = index
        owned_by: List[List[Atom]] = [[] for _ in blocks]
        for atom in current:
            for item in atom.nulls:
                owned_by[block_of[item]].append(atom)
                break
        for index, live in enumerate(blocks):
            owned = sorted(owned_by[index])
            if not owned:
                continue
            key = frozenset(owned)
            record = memo.records.get(key)
            if record is not None and not _touched(owned, changed):
                folded, mapping, images = record
                if not folded:
                    counter("incremental.blocks_skipped").inc()
                    new_records[key] = record
                    continue
                if all(item in current for item in images):
                    for item in owned:
                        current.discard(item)
                    for item in images:
                        current.add(item)
                    ledger = active_ledger()
                    if ledger is not None:
                        ledger.record_retraction(
                            "incremental", key.difference(images), mapping
                        )
                    counter("incremental.blocks_replayed").inc()
                    new_records[key] = record
                    continue
                # An image atom is gone: the recorded fold no longer
                # applies verbatim; fall through to a fresh minimize.
            counter("incremental.blocks_reminimized").inc()
            minimized, mapping, images, crossed = minimize_block_tracked(
                current, live
            )
            if crossed:
                counter("incremental.core_fallbacks").inc()
                memo.clear()
                return blockwise_core(instance), True
            if minimized is not None:
                current = minimized
            new_records[key] = (minimized is not None, mapping, images)
        memo.records = new_records
        return current, False
