"""Source deltas: the edit language of incremental re-solving.

A :class:`SourceDelta` is a pair of ground source instances -- atoms to
insert and atoms to delete.  Applying it to a source ``S`` yields
``(S \\ deletions) ∪ insertions``; an atom listed in both halves ends up
present (insert wins), and edits that do not change ``S`` (inserting a
present atom, deleting an absent one) are no-ops.  :meth:`effective`
normalizes a delta against a concrete source into exactly the atoms
that actually flip membership, which is what the delta-maintenance
machinery in :mod:`repro.incremental.session` consumes.

Two serializations are supported:

* the JSON codec ``repro.io/delta/v1`` (see :mod:`repro.io`), and
* a line-oriented text DSL for the CLI::

      + M('a', 'b')      # insert
      - N('a', 'c')      # delete

  with ``#`` comments and blank lines ignored.  :meth:`parse` sniffs
  the format (JSON payloads start with ``{``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..core.atoms import Atom
from ..core.errors import ReproError
from ..core.instance import Instance
from ..core.schema import Schema
from ..io import delta_to_payload, dumps_delta, loads_delta


def _as_ground_instance(atoms, role: str) -> Instance:
    instance = atoms if isinstance(atoms, Instance) else Instance(atoms)
    if not instance.is_ground:
        raise ReproError(
            f"delta {role} must be ground (source instances have no nulls)"
        )
    return instance.copy() if atoms is instance else instance


class SourceDelta:
    """An edit to a source instance: atoms to insert and to delete."""

    __slots__ = ("insertions", "deletions")

    def __init__(self, insertions=(), deletions=()):
        self.insertions = _as_ground_instance(insertions, "insertions")
        self.deletions = _as_ground_instance(deletions, "deletions")

    def __len__(self) -> int:
        return len(self.insertions) + len(self.deletions)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return (
            f"SourceDelta(+{len(self.insertions)} atoms, "
            f"-{len(self.deletions)} atoms)"
        )

    def apply_to(self, source: Instance) -> Instance:
        """``(source \\ deletions) ∪ insertions`` as a fresh instance."""
        result = source.copy()
        for atom in self.deletions:
            result.discard(atom)
        for atom in self.insertions:
            result.add(atom)
        return result

    def effective(
        self, source: Instance
    ) -> Tuple[Tuple[Atom, ...], Tuple[Atom, ...]]:
        """The membership-flipping part of the delta w.r.t. ``source``.

        Returns ``(insertions, deletions)`` where the insertions are the
        delta's insertions absent from ``source`` and the deletions are
        its deletions present in ``source`` and not re-inserted.  Both
        tuples are sorted, for deterministic downstream processing.
        """
        ins = tuple(
            sorted(a for a in self.insertions if a not in source)
        )
        dels = tuple(
            sorted(
                a
                for a in self.deletions
                if a in source and a not in self.insertions
            )
        )
        return ins, dels

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable dict (``repro.io/delta/v1``)."""
        return delta_to_payload(self.insertions, self.deletions)

    def dumps(self, *, indent: Optional[int] = None) -> str:
        """Versioned JSON text (``repro.io/delta/v1``), deterministic."""
        return dumps_delta(self.insertions, self.deletions, indent=indent)

    @classmethod
    def loads(cls, text: str, schema: Optional[Schema] = None) -> "SourceDelta":
        """Inverse of :meth:`dumps`."""
        insertions, deletions = loads_delta(text, schema)
        return cls(insertions, deletions)

    @classmethod
    def parse(cls, text: str, schema: Optional[Schema] = None) -> "SourceDelta":
        """Parse either the JSON codec or the ``+``/``-`` line DSL."""
        stripped = text.strip()
        if stripped.startswith("{"):
            return cls.loads(text, schema)
        from ..logic.parser import parse_instance

        insert_lines = []
        delete_lines = []
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("+"):
                insert_lines.append(line[1:].strip())
            elif line.startswith("-"):
                delete_lines.append(line[1:].strip())
            else:
                raise ReproError(
                    f"delta line {number}: expected '+ Atom(...)' or "
                    f"'- Atom(...)', got {raw!r}"
                )
        insertions = parse_instance("\n".join(insert_lines), schema)
        deletions = parse_instance("\n".join(delete_lines), schema)
        return cls(insertions, deletions)
