"""Delta sessions: solve once, then re-solve small edits incrementally.

A :class:`DeltaSession` runs one from-scratch semi-naive solve and keeps
three artifacts alive between edits:

* the **chase state** (source ∪ derived target facts),
* the **provenance ledger** -- a fact-level derivation DAG recording,
  for every fact, which firing produced it from which parents, and
* the **block memo** -- per-Gaifman-block core minimization outcomes
  (:mod:`repro.incremental.core`).

:meth:`apply` then maintains the CWA-solution under a
:class:`~repro.incremental.delta.SourceDelta` without re-chasing:

* **Deletions** retract the deleted atoms' downstream derivation cone
  (DRed-style over-deletion via
  :meth:`~repro.obs.provenance.ProvenanceLedger.downstream_cone`), then
  a continuation chase re-derives the cone members that have surviving
  alternative justifications.
* **Insertions** seed the semi-naive engine's per-tgd delta joins with
  just the inserted atoms (plus the re-derivation frontier), so trigger
  discovery only inspects matches that can involve the edit.
* The **core** is re-minimized blockwise, skipping or replaying blocks
  the edit provably could not have touched.

The continuation chase is a valid (semi-naive standard) chase of the new
source from an intermediate state every from-scratch chase can reach, so
its result is hom-equivalent to a from-scratch solve: canonical
solutions may differ in null naming, and the cores have identical fp/v1
canonical fingerprints.

**Exactness over speed**: whenever the incremental argument does not
apply, the session transparently falls back to a from-scratch re-solve
(``incremental.full_fallbacks``):

* some s-t tgd has a first-order premise -- FO premises may contain
  negation, so old firings can be invalidated by *insertions* and new
  firings enabled by *deletions*; neither direction is maintainable
  from the ledger;
* the delta deletes atoms and the ledger has egd merges -- merge steps
  do not carry the premise facts that triggered them, so deletion cones
  through merges cannot be computed exactly;
* the previous apply failed or diverged (no usable chase state).

Egd-carrying settings remain incrementally maintainable for
insertion-only deltas, and any merges the continuation itself performs
are recorded, flipping the session into the fallback regime for later
deletions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..chase.result import ChaseOutcome, ChaseStatus
from ..chase.seminaive import DEFAULT_MAX_STEPS, seminaive_chase
from ..core.atoms import Atom
from ..core.errors import ChaseDivergence, ReproError
from ..core.instance import Instance
from ..core.terms import NullFactory
from ..exchange.setting import DataExchangeSetting
from ..exchange.solve import ExchangeResult, _result_to_payload
from ..obs import counter, span
from ..obs.provenance import ProvenanceLedger, recording
from .core import BlockMemo, incremental_core
from .delta import SourceDelta


class DeltaSession:
    """A solved exchange that accepts source edits.

    ``session = DeltaSession(setting, source)`` solves from scratch;
    each ``session.apply(delta)`` returns the :class:`ExchangeResult`
    for the edited source.  ``session.result`` always holds the latest
    result and ``session.source`` the latest source.

    ``cache`` (a :class:`repro.engine.ResultCache`) receives every
    result under the same content-addressed key a batch
    ``solve(engine="seminaive")`` of the edited source would use, so
    later batch solves hit.  ``ledger`` lets the caller supply the
    :class:`ProvenanceLedger` to record into (e.g. the CLI's
    ``--provenance`` writer); by default the session owns a fresh one.
    """

    def __init__(
        self,
        setting: DataExchangeSetting,
        source: Instance,
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        cache=None,
        ledger: Optional[ProvenanceLedger] = None,
    ):
        self.setting = setting
        self.max_steps = max_steps
        self.cache = cache
        self.ledger = ledger if ledger is not None else ProvenanceLedger()
        if len(self.ledger):
            raise ReproError(
                "DeltaSession needs an empty ledger to record into; "
                "use DeltaSession.from_ledger to resume a persisted one"
            )
        self._analyze()
        setting.validate_source(source)
        self.source = source.copy()
        self._memo = BlockMemo()
        self._factory = NullFactory.above(source.active_domain())
        self._solve_initial()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _analyze(self) -> None:
        """Static per-setting facts the apply path consults."""
        self._dependencies = list(self.setting.all_dependencies)
        tgds = [d for d in self._dependencies if d.is_tgd]
        self._fo_premises = any(t.premise_atoms is None for t in tgds)
        # Tgds with a frontier-free conclusion atom derive facts sharing
        # no value with their premises; value-overlap seeding misses
        # their re-derivations, so their premise relations seed fully.
        self._frontier_free = []
        for tgd in tgds:
            if tgd.premise_atoms is None:
                continue
            frontier = set(tgd.frontier)
            if any(
                all(arg not in frontier for arg in atom.args)
                for atom in tgd.conclusion_atoms
            ):
                self._frontier_free.append(tgd)

    def _solve_initial(self) -> ExchangeResult:
        with span("incremental.solve_initial"):
            with recording(self.ledger):
                outcome = seminaive_chase(
                    self.source,
                    self._dependencies,
                    max_steps=self.max_steps,
                    null_factory=self._factory,
                )
            return self._finish(outcome, changed=None)

    @classmethod
    def from_ledger(
        cls,
        setting: DataExchangeSetting,
        source: Instance,
        persisted: Union[ProvenanceLedger, dict, str],
        *,
        max_steps: int = DEFAULT_MAX_STEPS,
        cache=None,
        ledger: Optional[ProvenanceLedger] = None,
    ) -> "DeltaSession":
        """Resume a session from a persisted ledger without re-chasing.

        ``persisted`` is a :class:`ProvenanceLedger`, its
        ``repro.obs/prov/v1`` payload dict, or its JSON text -- e.g. the
        file a previous ``solve --provenance`` run wrote.  The source
        reduct of its chase state is validated against ``source``.  The
        recorded chase state is then *verified* by one continuation
        chase round: a complete ledger passes through untouched, while a
        ledger persisted mid-run is chased to fixpoint and one from a
        failing solve reports its failure again instead of resuming a
        bogus solution.  ``ledger`` optionally names the (empty) ledger
        object to ingest into and record future applies into.
        """
        if isinstance(persisted, ProvenanceLedger) and ledger is None:
            target = persisted
        else:
            target = ledger if ledger is not None else ProvenanceLedger()
            payload = (
                persisted.to_payload()
                if isinstance(persisted, ProvenanceLedger)
                else persisted
            )
            if isinstance(payload, str):
                import json

                try:
                    payload = json.loads(payload)
                except json.JSONDecodeError as error:
                    raise ReproError(
                        f"invalid provenance JSON: {error}"
                    ) from None
            target.ingest(payload)

        session = cls.__new__(cls)
        session.setting = setting
        session.max_steps = max_steps
        session.cache = cache
        session.ledger = target
        session._analyze()
        setting.validate_source(source)
        session.source = source.copy()
        session._memo = BlockMemo()

        chase = Instance(target.chase_facts())
        if chase.reduct(setting.source_schema) != source:
            raise ReproError(
                "the persisted ledger does not describe this source "
                "instance: its chase state has a different source reduct"
            )
        session._chase = chase
        session._factory = NullFactory.above(
            value for atom in target.facts() for value in atom.args
        )
        session._failed = False
        session._canonical_atoms = frozenset()
        # Verify the recorded state: with a complete, successful ledger
        # this matching pass fires nothing (every trigger is satisfied);
        # a partial ledger is chased to fixpoint and a failing one fails
        # here rather than masquerading as solved.
        with recording(target):
            outcome = seminaive_chase(
                chase,
                session._dependencies,
                max_steps=max_steps,
                null_factory=session._factory,
                initial_delta=sorted(chase),
            )
        if outcome.status is not ChaseStatus.SUCCESS or outcome.steps:
            session._finish(outcome, changed=None)
            return session
        session._chase = outcome.instance
        canonical = chase.reduct(setting.target_schema)
        session._canonical_atoms = frozenset(canonical)
        core_instance, _ = incremental_core(
            canonical, tuple(canonical), session._memo
        )
        session.result = ExchangeResult(
            setting, session.source.copy(), canonical, core_instance, 0
        )
        return session

    # ------------------------------------------------------------------
    # Applying edits
    # ------------------------------------------------------------------

    def apply(self, delta: SourceDelta) -> ExchangeResult:
        """The :class:`ExchangeResult` for the edited source.

        The core of the returned result has the same fp/v1 canonical
        fingerprint as a from-scratch solve of the edited source; the
        canonical solution is hom-equivalent (null naming may differ).
        """
        counter("incremental.applies").inc()
        with span("incremental.apply"):
            insertions, deletions = delta.effective(self.source)
            if not insertions and not deletions:
                return self.result
            new_source = self.source.copy()
            for atom in deletions:
                new_source.discard(atom)
            for atom in insertions:
                new_source.add(atom)
            self.setting.validate_source(new_source)
            if self._needs_full(deletions):
                counter("incremental.full_fallbacks").inc()
                return self._full_resolve(new_source)

            cone: Tuple[Atom, ...] = ()
            seeds: List[Atom] = []
            if deletions:
                cone = tuple(sorted(self.ledger.downstream_cone(deletions)))
                removed = [a for a in cone if self._chase.discard(a)]
                self.ledger.record_deletion("incremental", removed)
                counter("incremental.retracted").inc(len(removed))
                seeds = self._rederivation_seeds(cone)
            for atom in insertions:
                self._chase.add(atom)
            initial = sorted(set(insertions).union(seeds))
            with recording(self.ledger):
                outcome = seminaive_chase(
                    self._chase,
                    self._dependencies,
                    max_steps=self.max_steps,
                    null_factory=self._factory,
                    initial_delta=initial,
                )
            counter("incremental.delta_rounds").inc(outcome.rounds)
            if cone:
                rederived = sum(
                    1 for atom in cone if atom in outcome.instance
                )
                counter("incremental.rederived").inc(rederived)
            self.source = new_source
            return self._finish(outcome, changed="diff")

    def _needs_full(self, deletions: Sequence[Atom]) -> bool:
        if self._failed:
            return True  # no usable chase state to continue from
        if self._fo_premises:
            return True  # FO premises are non-monotone in general
        if deletions and self.ledger.has_merges():
            return True  # deletion cones through merges are inexact
        return False

    def _full_resolve(self, new_source: Instance) -> ExchangeResult:
        """From-scratch re-solve; resets ledger, memo, and null factory."""
        with span("incremental.full_resolve"):
            self.ledger.clear()
            self._memo.clear()
            self.source = new_source
            self._factory = NullFactory.above(new_source.active_domain())
            return self._solve_initial()

    def _rederivation_seeds(self, cone: Sequence[Atom]) -> List[Atom]:
        """Surviving atoms that can participate in re-deriving the cone.

        A firing that re-derives a cone member binds its frontier from
        premise facts, so some premise fact shares a value with the
        conclusion -- seeding every survivor sharing a value with the
        cone (transitively closed by the chase's own delta rounds)
        reaches all such firings.  The exception is conclusion atoms
        without frontier variables; for tgds that have one, all atoms of
        their premise relations are seeded whenever the cone touches
        their conclusion relations.
        """
        values = set()
        for atom in cone:
            values.update(atom.args)
        seeds = [
            atom
            for atom in self._chase
            if any(value in values for value in atom.args)
        ]
        if self._frontier_free:
            cone_relations = {atom.relation for atom in cone}
            for tgd in self._frontier_free:
                if cone_relations & tgd.conclusion_relations():
                    for relation in tgd.premise_relations():
                        seeds.extend(self._chase.atoms_of(relation))
        return seeds

    # ------------------------------------------------------------------
    # Shared tail: core, result, cache
    # ------------------------------------------------------------------

    def _finish(
        self, outcome: ChaseOutcome, *, changed
    ) -> ExchangeResult:
        if outcome.status is ChaseStatus.DIVERGED:
            self._failed = True  # poisoned: next apply re-solves fully
            raise ChaseDivergence(outcome.steps, outcome.reason)
        self._chase = outcome.instance
        if outcome.status is ChaseStatus.FAILURE:
            self._failed = True
            self._canonical_atoms = frozenset()
            self._memo.clear()
            self.result = ExchangeResult(
                self.setting, self.source.copy(), None, None, outcome.steps
            )
        else:
            self._failed = False
            canonical = self._chase.reduct(self.setting.target_schema)
            new_atoms = frozenset(canonical)
            if changed is None:
                self._memo.clear()
                changed_atoms: Tuple[Atom, ...] = tuple(new_atoms)
            else:
                changed_atoms = tuple(
                    new_atoms.symmetric_difference(self._canonical_atoms)
                )
            with recording(self.ledger):
                core_instance, _ = incremental_core(
                    canonical, changed_atoms, self._memo
                )
            self._canonical_atoms = new_atoms
            self.result = ExchangeResult(
                self.setting,
                self.source.copy(),
                canonical,
                core_instance,
                outcome.steps,
            )
        self._store()
        return self.result

    def _store(self) -> None:
        if self.cache is None:
            return
        from ..engine.fingerprint import solve_key  # lazy: engine is optional

        key = solve_key(
            self.setting,
            self.source,
            max_steps=self.max_steps,
            engine="seminaive",
            core_algorithm="blockwise",
        )
        self.cache.put("solve", key, _result_to_payload(self.result))
