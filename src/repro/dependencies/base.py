"""Base class and parsing entry points for dependencies.

A dependency over a schema is a logical sentence (Section 2).  The paper
restricts attention to

* source-to-target tuple generating dependencies (s-t-tgds),
* target tgds, and
* equality generating dependencies (egds),

which is exactly what this package implements.  Following [12] (Libkin,
PODS'06), s-t-tgds may have an arbitrary first-order premise over the
source schema (footnote 2); target tgds and egds have conjunctions of
relational atoms as premises.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import DependencyError, ParseError
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Variable


class Dependency:
    """Common interface of tgds and egds."""

    def premise_relations(self) -> FrozenSet[RelationSymbol]:
        """Relation symbols used in the premise."""
        raise NotImplementedError

    def conclusion_relations(self) -> FrozenSet[RelationSymbol]:
        """Relation symbols used in the conclusion (empty for egds)."""
        raise NotImplementedError

    @property
    def is_tgd(self) -> bool:
        return False

    @property
    def is_egd(self) -> bool:
        return False


def split_dependencies(
    dependencies: Iterable[Dependency],
) -> Tuple[List[Dependency], List[Dependency]]:
    """Partition into (tgds, egds), preserving order."""
    tgds: List[Dependency] = []
    egds: List[Dependency] = []
    for dependency in dependencies:
        if dependency.is_tgd:
            tgds.append(dependency)
        elif dependency.is_egd:
            egds.append(dependency)
        else:
            raise DependencyError(f"unknown dependency kind: {dependency!r}")
    return tgds, egds


def parse_dependency(text: str, schema: Optional[Schema] = None) -> Dependency:
    """Parse a tgd or an egd, deciding by the shape of the conclusion.

    >>> d = parse_dependency("F(x,y) & F(x,z) -> y = z")
    >>> d.is_egd
    True
    >>> d = parse_dependency("N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)")
    >>> d.is_tgd
    True
    """
    # Imported here to avoid a circular import at module load time.
    from .egd import Egd
    from .tgd import Tgd

    arrow = _top_level_arrow(text)
    if arrow < 0:
        raise ParseError("a dependency needs a top-level '->'", text)
    conclusion_text = text[arrow + 2 :]
    if _looks_like_egd_conclusion(conclusion_text):
        return Egd.parse(text, schema)
    return Tgd.parse(text, schema)


def parse_dependencies(
    texts: Iterable[str], schema: Optional[Schema] = None
) -> List[Dependency]:
    """Parse several dependencies (one per string)."""
    return [parse_dependency(text, schema) for text in texts]


def _top_level_arrow(text: str) -> int:
    """Index of the first ``->`` not nested inside parentheses/quotes."""
    depth = 0
    index = 0
    quote = ""
    while index < len(text) - 1:
        char = text[index]
        if quote:
            if char == quote:
                quote = ""
        elif char in "'\"":
            quote = char
        elif char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and text[index : index + 2] == "->":
            return index
        index += 1
    return -1


def _looks_like_egd_conclusion(conclusion: str) -> bool:
    """True if the conclusion is a bare equality ``y = z``.

    Atoms contain parentheses and tgd conclusions contain atoms, so a
    conclusion without parentheses that contains ``=`` is an egd head.
    """
    stripped = conclusion.strip()
    return "(" not in stripped and "=" in stripped


def format_variables(variables: Sequence[Variable]) -> str:
    return ", ".join(v.name for v in variables)
