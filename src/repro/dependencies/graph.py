"""Dependency graphs and acyclicity notions.

Implements Definition 6.5 (the *dependency graph* and **weak acyclicity**,
from Fagin et al. / Deutsch-Tannen) and Definition 7.3 (the *extended
dependency graph* and **rich acyclicity**, introduced by this paper).

Positions are pairs ``(R, i)`` over the target schema; edges come from the
target tgds:

* for every premise variable ``x ∈ x̄`` (a frontier variable) at position
  p in ϕ: a **regular edge** from p to every position of x in ψ, and an
  **existential edge** from p to every position of a z̄-variable in ψ;
* rich acyclicity additionally adds existential edges from positions of
  the premise-only variables ``ȳ`` to positions of z̄-variables
  (Definition 7.3) -- this is what bounds the number of *justifications*
  and hence the α-chase.

A setting is weakly (richly) acyclic iff no cycle of the (extended)
dependency graph contains an existential edge; equivalently, iff no
existential edge has both endpoints in the same strongly connected
component.  We compute SCCs with an iterative Tarjan.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.schema import RelationSymbol
from ..core.terms import Variable
from .base import Dependency, split_dependencies
from .tgd import Tgd

Position = Tuple[RelationSymbol, int]
Edge = Tuple[Position, Position]


class DependencyGraph:
    """The (extended) dependency graph of a set of target dependencies."""

    def __init__(self, regular_edges: Iterable[Edge], existential_edges: Iterable[Edge]):
        self.regular_edges: FrozenSet[Edge] = frozenset(regular_edges)
        self.existential_edges: FrozenSet[Edge] = frozenset(existential_edges)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self.regular_edges | self.existential_edges

    def vertices(self) -> FrozenSet[Position]:
        out: Set[Position] = set()
        for source, destination in self.edges:
            out.add(source)
            out.add(destination)
        return frozenset(out)

    def successors(self) -> Dict[Position, List[Position]]:
        adjacency: Dict[Position, List[Position]] = {}
        for source, destination in self.edges:
            adjacency.setdefault(source, []).append(destination)
            adjacency.setdefault(destination, [])
        return adjacency

    def strongly_connected_components(self) -> List[FrozenSet[Position]]:
        """Tarjan's algorithm, iterative to avoid recursion limits."""
        adjacency = self.successors()
        index_counter = [0]
        indices: Dict[Position, int] = {}
        lowlinks: Dict[Position, int] = {}
        on_stack: Set[Position] = set()
        stack: List[Position] = []
        components: List[FrozenSet[Position]] = []

        for root in adjacency:
            if root in indices:
                continue
            work: List[Tuple[Position, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    indices[node] = index_counter[0]
                    lowlinks[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adjacency[node]
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in indices:
                        work.append((node, child_index))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[child])
                if recurse:
                    continue
                if lowlinks[node] == indices[node]:
                    component: Set[Position] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
        return components

    def has_existential_edge_on_cycle(self) -> bool:
        """True iff some cycle contains an existential edge.

        An edge lies on a cycle iff both endpoints are in the same SCC
        (self-loops form singleton SCCs with the edge present).
        """
        component_of: Dict[Position, int] = {}
        for number, component in enumerate(self.strongly_connected_components()):
            for position in component:
                component_of[position] = number
        for source, destination in self.existential_edges:
            if source == destination:
                return True
            if component_of.get(source) == component_of.get(destination):
                return True
        return False


def _positions_of(variable: Variable, atoms) -> List[Position]:
    """All positions ``(R, i)`` at which ``variable`` appears in ``atoms``."""
    positions: List[Position] = []
    for atom in atoms:
        for index, argument in enumerate(atom.args):
            if argument == variable:
                positions.append((atom.relation, index))
    return positions


def _tgd_edges(tgd: Tgd, extended: bool) -> Tuple[Set[Edge], Set[Edge]]:
    """Regular and existential edges contributed by one tgd.

    ``extended=True`` adds the rich-acyclicity edges from premise-only
    variables (Definition 7.3).
    """
    if tgd.premise_atoms is None:
        raise ValueError(
            "dependency graphs are defined for tgds with conjunctive "
            "premises (target tgds always have one)"
        )
    regular: Set[Edge] = set()
    existential: Set[Edge] = set()

    existential_positions: List[Position] = []
    for variable in tgd.existential:
        existential_positions.extend(
            _positions_of(variable, tgd.conclusion_atoms)
        )

    for variable in tgd.frontier:
        sources = _positions_of(variable, tgd.premise_atoms)
        targets = _positions_of(variable, tgd.conclusion_atoms)
        for source in sources:
            for target in targets:
                regular.add((source, target))
            for target in existential_positions:
                existential.add((source, target))

    if extended:
        for variable in tgd.premise_only:
            for source in _positions_of(variable, tgd.premise_atoms):
                for target in existential_positions:
                    existential.add((source, target))

    return regular, existential


def dependency_graph(
    target_dependencies: Sequence[Dependency], extended: bool = False
) -> DependencyGraph:
    """The (extended) dependency graph of the target tgds.

    Egds contribute no edges (they generate no tuples).
    """
    tgds, _ = split_dependencies(target_dependencies)
    regular: Set[Edge] = set()
    existential: Set[Edge] = set()
    for tgd in tgds:
        tgd_regular, tgd_existential = _tgd_edges(tgd, extended)
        regular |= tgd_regular
        existential |= tgd_existential
    return DependencyGraph(regular, existential)


def is_weakly_acyclic(target_dependencies: Sequence[Dependency]) -> bool:
    """Definition 6.5: no cycle of the dependency graph contains an
    existential edge."""
    graph = dependency_graph(target_dependencies, extended=False)
    return not graph.has_existential_edge_on_cycle()


def is_richly_acyclic(target_dependencies: Sequence[Dependency]) -> bool:
    """Definition 7.3: no cycle of the *extended* dependency graph contains
    an existential edge.  Every richly acyclic setting is weakly acyclic."""
    graph = dependency_graph(target_dependencies, extended=True)
    return not graph.has_existential_edge_on_cycle()


def to_dot(graph: DependencyGraph, title: str = "dependency graph") -> str:
    """Render a dependency graph in Graphviz DOT format.

    Regular edges are solid, existential edges dashed (the convention of
    the data exchange literature); positions print as ``R.i`` with the
    paper's 1-based index.  Paste into any DOT viewer to see why a
    setting is or is not weakly/richly acyclic.
    """

    def node(position: Position) -> str:
        relation, index = position
        return f'"{relation.name}.{index + 1}"'

    lines = [f"digraph \"{title}\" {{", "  rankdir=LR;"]
    for position in sorted(
        graph.vertices(), key=lambda p: (p[0].name, p[1])
    ):
        lines.append(f"  {node(position)};")
    for source, destination in sorted(
        graph.regular_edges,
        key=lambda e: (e[0][0].name, e[0][1], e[1][0].name, e[1][1]),
    ):
        lines.append(f"  {node(source)} -> {node(destination)};")
    for source, destination in sorted(
        graph.existential_edges,
        key=lambda e: (e[0][0].name, e[0][1], e[1][0].name, e[1][1]),
    ):
        lines.append(
            f"  {node(source)} -> {node(destination)} "
            "[style=dashed, label=\"∃\"];"
        )
    lines.append("}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Shard locality (partitioned chase)
# ----------------------------------------------------------------------


class ShardAnalysis:
    """Outcome of the static shardability analysis.

    ``local`` dependencies fire only within one value-connected component
    of the instance being chased; ``cross`` dependencies may relate atoms
    of different components and must run in a sequential residual pass.
    When ``shardable`` is False no decomposition is safe at all (some
    global guard failed) and the chase must run sequentially.
    """

    __slots__ = ("local", "cross", "shardable", "reason")

    def __init__(
        self,
        local: Sequence[Dependency],
        cross: Sequence[Dependency],
        shardable: bool,
        reason: str = "",
    ):
        self.local: Tuple[Dependency, ...] = tuple(local)
        self.cross: Tuple[Dependency, ...] = tuple(cross)
        self.shardable = shardable
        self.reason = reason

    def __repr__(self) -> str:
        if not self.shardable:
            return f"ShardAnalysis(unshardable: {self.reason})"
        return (
            f"ShardAnalysis(local={len(self.local)}, cross={len(self.cross)})"
        )


def _atoms_connected(atoms) -> bool:
    """True iff the atoms form one component under shared terms.

    Two atoms are linked when they share a variable or a constant: any
    match then places their images in the same value-connected component
    of the instance (shared variables bind to one value; shared constants
    occur in both image atoms).
    """
    if not atoms:
        return False
    index_of: Dict[object, int] = {}
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for position, atom in enumerate(atoms):
        for term in atom.args:
            anchor = index_of.setdefault(term, position)
            root_a, root_b = find(anchor), find(position)
            if root_a != root_b:
                parent[root_b] = root_a
    roots = {find(i) for i in range(len(atoms))}
    return len(roots) == 1


def premise_is_component_local(dependency: Dependency) -> bool:
    """True iff every premise match stays within one value component.

    Requires a conjunctive premise (FO premises can observe the whole
    instance), at least one atom, no nullary atoms (a propositional fact
    belongs to no component), and a connected atom graph under shared
    variables/constants.  Holds for tgds and egds alike.
    """
    atoms = getattr(dependency, "premise_atoms", None)
    if atoms is None or not atoms:
        return False
    if any(atom.relation.arity == 0 for atom in atoms):
        return False
    return _atoms_connected(atoms)


def conclusion_is_anchored(tgd: Tgd) -> bool:
    """True iff every conclusion atom is tied to the premise match.

    An atom is *anchored* when it is connected, through shared variables
    within the conclusion, to a frontier variable.  Then both the atoms a
    firing creates and any witnesses for the trigger test lie in the
    component of the frontier values -- an unanchored atom (e.g. the
    ``Q(z)`` of ``P(x) -> ∃z.Q(z)``) could be satisfied by, or merge
    with, atoms of any component.
    """
    frontier = set(tgd.frontier)
    atoms = tgd.conclusion_atoms
    anchored = [bool(atom.variables & frontier) for atom in atoms]
    if all(anchored):
        return True
    # Propagate anchoring through shared (existential) variables.
    changed = True
    while changed:
        changed = False
        anchored_variables: Set[Variable] = set(frontier)
        for position, atom in enumerate(atoms):
            if anchored[position]:
                anchored_variables |= atom.variables
        for position, atom in enumerate(atoms):
            if not anchored[position] and atom.variables & anchored_variables:
                anchored[position] = True
                changed = True
    return all(anchored)


def shard_locality(dependencies: Sequence[Dependency]) -> ShardAnalysis:
    """Classify dependencies as shard-local vs cross-shard.

    Global guards first: if any tgd conclusion mentions a constant, atoms
    derived in different shards can share that constant, silently merging
    value components the decomposition assumed independent -- the whole
    set is then unshardable.  Nullary relations (no arguments to anchor a
    component) disable sharding the same way.

    Otherwise a dependency is *local* when its premise is component-local
    and (for tgds) its conclusion is anchored; everything else is *cross*
    and must run in the residual sequential pass.
    """
    deps = list(dependencies)
    for dep in deps:
        if not dep.is_tgd:
            continue
        if any(atom.constants for atom in dep.conclusion_atoms):
            return ShardAnalysis(
                [], deps, False, "a tgd conclusion mentions a constant"
            )
        if any(
            atom.relation.arity == 0 for atom in dep.conclusion_atoms
        ):
            return ShardAnalysis(
                [], deps, False, "a tgd conclusion uses a nullary relation"
            )
    local: List[Dependency] = []
    cross: List[Dependency] = []
    for dep in deps:
        ok = premise_is_component_local(dep)
        if ok and dep.is_tgd:
            ok = conclusion_is_anchored(dep)
        (local if ok else cross).append(dep)
    return ShardAnalysis(local, cross, True)


def chase_depth_bound(
    target_dependencies: Sequence[Dependency], domain_size: int
) -> int:
    """A polynomial bound on standard-chase length for weakly acyclic Σt.

    Fagin et al. show the standard chase of a weakly acyclic setting stops
    after polynomially many steps; the exponent depends on the longest
    path rank of positions in the dependency graph.  We return a safe,
    simple over-approximation: ``(domain_size + 2) ** (rank + 2)`` summed
    over relations, capped to keep budgets sane.  Used only as a step
    budget, never for correctness.
    """
    graph = dependency_graph(target_dependencies, extended=False)
    vertices = graph.vertices()
    if not vertices:
        return max(1000, domain_size * domain_size + 10)
    rank = len(vertices)
    base = max(2, domain_size + 2)
    bound = base ** min(rank + 2, 8)
    return min(bound, 50_000_000)
