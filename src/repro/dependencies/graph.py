"""Dependency graphs and acyclicity notions.

Implements Definition 6.5 (the *dependency graph* and **weak acyclicity**,
from Fagin et al. / Deutsch-Tannen) and Definition 7.3 (the *extended
dependency graph* and **rich acyclicity**, introduced by this paper).

Positions are pairs ``(R, i)`` over the target schema; edges come from the
target tgds:

* for every premise variable ``x ∈ x̄`` (a frontier variable) at position
  p in ϕ: a **regular edge** from p to every position of x in ψ, and an
  **existential edge** from p to every position of a z̄-variable in ψ;
* rich acyclicity additionally adds existential edges from positions of
  the premise-only variables ``ȳ`` to positions of z̄-variables
  (Definition 7.3) -- this is what bounds the number of *justifications*
  and hence the α-chase.

A setting is weakly (richly) acyclic iff no cycle of the (extended)
dependency graph contains an existential edge; equivalently, iff no
existential edge has both endpoints in the same strongly connected
component.  We compute SCCs with an iterative Tarjan.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.schema import RelationSymbol
from ..core.terms import Variable
from .base import Dependency, split_dependencies
from .tgd import Tgd

Position = Tuple[RelationSymbol, int]
Edge = Tuple[Position, Position]


class DependencyGraph:
    """The (extended) dependency graph of a set of target dependencies."""

    def __init__(self, regular_edges: Iterable[Edge], existential_edges: Iterable[Edge]):
        self.regular_edges: FrozenSet[Edge] = frozenset(regular_edges)
        self.existential_edges: FrozenSet[Edge] = frozenset(existential_edges)

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self.regular_edges | self.existential_edges

    def vertices(self) -> FrozenSet[Position]:
        out: Set[Position] = set()
        for source, destination in self.edges:
            out.add(source)
            out.add(destination)
        return frozenset(out)

    def successors(self) -> Dict[Position, List[Position]]:
        adjacency: Dict[Position, List[Position]] = {}
        for source, destination in self.edges:
            adjacency.setdefault(source, []).append(destination)
            adjacency.setdefault(destination, [])
        return adjacency

    def strongly_connected_components(self) -> List[FrozenSet[Position]]:
        """Tarjan's algorithm, iterative to avoid recursion limits."""
        adjacency = self.successors()
        index_counter = [0]
        indices: Dict[Position, int] = {}
        lowlinks: Dict[Position, int] = {}
        on_stack: Set[Position] = set()
        stack: List[Position] = []
        components: List[FrozenSet[Position]] = []

        for root in adjacency:
            if root in indices:
                continue
            work: List[Tuple[Position, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    indices[node] = index_counter[0]
                    lowlinks[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = adjacency[node]
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in indices:
                        work.append((node, child_index))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[child])
                if recurse:
                    continue
                if lowlinks[node] == indices[node]:
                    component: Set[Position] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
        return components

    def has_existential_edge_on_cycle(self) -> bool:
        """True iff some cycle contains an existential edge.

        An edge lies on a cycle iff both endpoints are in the same SCC
        (self-loops form singleton SCCs with the edge present).
        """
        component_of: Dict[Position, int] = {}
        for number, component in enumerate(self.strongly_connected_components()):
            for position in component:
                component_of[position] = number
        for source, destination in self.existential_edges:
            if source == destination:
                return True
            if component_of.get(source) == component_of.get(destination):
                return True
        return False


def _positions_of(variable: Variable, atoms) -> List[Position]:
    """All positions ``(R, i)`` at which ``variable`` appears in ``atoms``."""
    positions: List[Position] = []
    for atom in atoms:
        for index, argument in enumerate(atom.args):
            if argument == variable:
                positions.append((atom.relation, index))
    return positions


def _tgd_edges(tgd: Tgd, extended: bool) -> Tuple[Set[Edge], Set[Edge]]:
    """Regular and existential edges contributed by one tgd.

    ``extended=True`` adds the rich-acyclicity edges from premise-only
    variables (Definition 7.3).
    """
    if tgd.premise_atoms is None:
        raise ValueError(
            "dependency graphs are defined for tgds with conjunctive "
            "premises (target tgds always have one)"
        )
    regular: Set[Edge] = set()
    existential: Set[Edge] = set()

    existential_positions: List[Position] = []
    for variable in tgd.existential:
        existential_positions.extend(
            _positions_of(variable, tgd.conclusion_atoms)
        )

    for variable in tgd.frontier:
        sources = _positions_of(variable, tgd.premise_atoms)
        targets = _positions_of(variable, tgd.conclusion_atoms)
        for source in sources:
            for target in targets:
                regular.add((source, target))
            for target in existential_positions:
                existential.add((source, target))

    if extended:
        for variable in tgd.premise_only:
            for source in _positions_of(variable, tgd.premise_atoms):
                for target in existential_positions:
                    existential.add((source, target))

    return regular, existential


def dependency_graph(
    target_dependencies: Sequence[Dependency], extended: bool = False
) -> DependencyGraph:
    """The (extended) dependency graph of the target tgds.

    Egds contribute no edges (they generate no tuples).
    """
    tgds, _ = split_dependencies(target_dependencies)
    regular: Set[Edge] = set()
    existential: Set[Edge] = set()
    for tgd in tgds:
        tgd_regular, tgd_existential = _tgd_edges(tgd, extended)
        regular |= tgd_regular
        existential |= tgd_existential
    return DependencyGraph(regular, existential)


def is_weakly_acyclic(target_dependencies: Sequence[Dependency]) -> bool:
    """Definition 6.5: no cycle of the dependency graph contains an
    existential edge."""
    graph = dependency_graph(target_dependencies, extended=False)
    return not graph.has_existential_edge_on_cycle()


def is_richly_acyclic(target_dependencies: Sequence[Dependency]) -> bool:
    """Definition 7.3: no cycle of the *extended* dependency graph contains
    an existential edge.  Every richly acyclic setting is weakly acyclic."""
    graph = dependency_graph(target_dependencies, extended=True)
    return not graph.has_existential_edge_on_cycle()


def to_dot(graph: DependencyGraph, title: str = "dependency graph") -> str:
    """Render a dependency graph in Graphviz DOT format.

    Regular edges are solid, existential edges dashed (the convention of
    the data exchange literature); positions print as ``R.i`` with the
    paper's 1-based index.  Paste into any DOT viewer to see why a
    setting is or is not weakly/richly acyclic.
    """

    def node(position: Position) -> str:
        relation, index = position
        return f'"{relation.name}.{index + 1}"'

    lines = [f"digraph \"{title}\" {{", "  rankdir=LR;"]
    for position in sorted(
        graph.vertices(), key=lambda p: (p[0].name, p[1])
    ):
        lines.append(f"  {node(position)};")
    for source, destination in sorted(
        graph.regular_edges,
        key=lambda e: (e[0][0].name, e[0][1], e[1][0].name, e[1][1]),
    ):
        lines.append(f"  {node(source)} -> {node(destination)};")
    for source, destination in sorted(
        graph.existential_edges,
        key=lambda e: (e[0][0].name, e[0][1], e[1][0].name, e[1][1]),
    ):
        lines.append(
            f"  {node(source)} -> {node(destination)} "
            "[style=dashed, label=\"∃\"];"
        )
    lines.append("}")
    return "\n".join(lines)


def chase_depth_bound(
    target_dependencies: Sequence[Dependency], domain_size: int
) -> int:
    """A polynomial bound on standard-chase length for weakly acyclic Σt.

    Fagin et al. show the standard chase of a weakly acyclic setting stops
    after polynomially many steps; the exponent depends on the longest
    path rank of positions in the dependency graph.  We return a safe,
    simple over-approximation: ``(domain_size + 2) ** (rank + 2)`` summed
    over relations, capped to keep budgets sane.  Used only as a step
    budget, never for correctness.
    """
    graph = dependency_graph(target_dependencies, extended=False)
    vertices = graph.vertices()
    if not vertices:
        return max(1000, domain_size * domain_size + 10)
    rank = len(vertices)
    base = max(2, domain_size + 2)
    bound = base ** min(rank + 2, 8)
    return min(bound, 50_000_000)
