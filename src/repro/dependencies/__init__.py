"""Dependencies: tgds, egds, and acyclicity analysis."""

from .base import Dependency, parse_dependencies, parse_dependency, split_dependencies
from .egd import Egd
from .graph import (
    DependencyGraph,
    chase_depth_bound,
    dependency_graph,
    is_richly_acyclic,
    is_weakly_acyclic,
)
from .tgd import Tgd

__all__ = [
    "Dependency",
    "DependencyGraph",
    "Egd",
    "Tgd",
    "chase_depth_bound",
    "dependency_graph",
    "is_richly_acyclic",
    "is_weakly_acyclic",
    "parse_dependencies",
    "parse_dependency",
    "split_dependencies",
]
