"""Tuple generating dependencies.

A tgd has the form ``∀x̄ ∀ȳ (ϕ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))`` where ψ is a
conjunction of relational atoms and ϕ is

* an arbitrary (active-domain) first-order formula for s-t-tgds (the
  paper follows [12] here, footnote 2), or
* a conjunction of relational atoms for target tgds.

Variable roles follow the paper's notation exactly:

* ``x̄`` -- the *frontier*: premise variables that also occur in ψ,
* ``ȳ`` -- premise-only variables,
* ``z̄`` -- existentially quantified conclusion variables.

The split matters because a justification (Section 4) is a quadruple
``(d, ū, v̄, z)`` with ``ū`` a tuple for x̄ and ``v̄`` a tuple for ȳ: the
*same* ū with different v̄ gives *different* justifications, which is why
weak acyclicity does not bound the α-chase but rich acyclicity does
(discussion after Proposition 7.4).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, Substitution
from ..core.errors import DependencyError
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Value, Variable
from ..logic.evaluation import satisfying_assignments
from ..logic.formulas import Formula, is_conjunction_of_atoms
from ..logic.matching import exists_match, match
from ..logic.parser import _Parser
from ..logic import formulas as fo
from .base import Dependency, format_variables


class Tgd(Dependency):
    """A tuple generating dependency.

    Premises are stored in one of two forms:

    * ``premise_atoms`` -- the common case, a conjunction of atoms,
      matched through the indexed matcher;
    * ``premise_formula`` -- an arbitrary FO formula over the source
      schema (s-t-tgds only), evaluated by brute force.
    """

    def __init__(
        self,
        premise_atoms: Optional[Sequence[Atom]] = None,
        conclusion_atoms: Sequence[Atom] = (),
        premise_formula: Optional[Formula] = None,
        name: str = "",
    ):
        if (premise_atoms is None) == (premise_formula is None):
            raise DependencyError(
                "exactly one of premise_atoms / premise_formula must be given"
            )
        self.premise_atoms: Optional[Tuple[Atom, ...]] = (
            tuple(premise_atoms) if premise_atoms is not None else None
        )
        self.premise_formula = premise_formula
        self.conclusion_atoms: Tuple[Atom, ...] = tuple(conclusion_atoms)
        self.name = name
        # For s-t-tgds with FO premises: the schema the premise speaks
        # about.  Footnote 2 of the paper relativizes premise quantifiers
        # to the active domain *with respect to σ*; the exchange layer
        # sets this to σ so that premise evaluation uses the σ-reduct.
        self.premise_schema: Optional["Schema"] = None
        if not self.conclusion_atoms:
            raise DependencyError("a tgd needs at least one conclusion atom")

        premise_variables = self._premise_variables()
        conclusion_variables: Set[Variable] = set()
        for atom in self.conclusion_atoms:
            conclusion_variables |= atom.variables

        # x̄: frontier; ȳ: premise-only; z̄: existential.
        self.frontier: Tuple[Variable, ...] = tuple(
            sorted(premise_variables & conclusion_variables, key=lambda v: v.name)
        )
        self.premise_only: Tuple[Variable, ...] = tuple(
            sorted(premise_variables - conclusion_variables, key=lambda v: v.name)
        )
        self.existential: Tuple[Variable, ...] = tuple(
            sorted(conclusion_variables - premise_variables, key=lambda v: v.name)
        )

    def _premise_variables(self) -> Set[Variable]:
        if self.premise_atoms is not None:
            out: Set[Variable] = set()
            for atom in self.premise_atoms:
                out |= atom.variables
            return out
        return set(self.premise_formula.free_variables())

    # ------------------------------------------------------------------
    # Shape properties
    # ------------------------------------------------------------------

    @property
    def is_tgd(self) -> bool:
        return True

    @property
    def is_full(self) -> bool:
        """Full tgds have no existential quantifiers (Proposition 5.4)."""
        return not self.existential

    @property
    def has_conjunctive_premise(self) -> bool:
        return self.premise_atoms is not None

    def premise_relations(self) -> FrozenSet[RelationSymbol]:
        if self.premise_atoms is not None:
            return frozenset(atom.relation for atom in self.premise_atoms)
        return frozenset(
            atom.relation for atom in fo.atoms_of(self.premise_formula)
        )

    def conclusion_relations(self) -> FrozenSet[RelationSymbol]:
        return frozenset(atom.relation for atom in self.conclusion_atoms)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def premise_matches(self, instance: Instance) -> Iterator[Substitution]:
        """All substitutions (ū for x̄, v̄ for ȳ) with ``I ⊨ ϕ[ū, v̄]``."""
        if self.premise_atoms is not None:
            yield from match(self.premise_atoms, instance)
            return
        base = (
            instance.reduct(self.premise_schema)
            if self.premise_schema is not None
            else instance
        )
        free = tuple(self.frontier) + tuple(self.premise_only)
        for values in satisfying_assignments(self.premise_formula, base, free):
            yield Substitution(dict(zip(free, values)))

    def conclusion_holds(self, instance: Instance, premise_match: Substitution) -> bool:
        """Standard-chase trigger test: ``I ⊨ ∃z̄ ψ[ū, z̄]``.

        Used by the standard chase (fire only if this fails) -- condition
        (2) in Remark 4.3 of the paper.
        """
        frontier_binding = premise_match.restrict(self.frontier)
        return exists_match(
            self.conclusion_atoms, instance, initial=frontier_binding
        )

    def conclusion_atoms_under(
        self, premise_match: Substitution, witnesses: Sequence[Value]
    ) -> Tuple[Atom, ...]:
        """The atoms of ``ψ[ū, w̄]`` for witnesses w̄ assigned to z̄."""
        if len(witnesses) != len(self.existential):
            raise DependencyError(
                f"{len(self.existential)} witnesses expected, "
                f"got {len(witnesses)}"
            )
        binding = premise_match.restrict(self.frontier).extend_many(
            zip(self.existential, witnesses)
        )
        return tuple(binding.apply(atom) for atom in self.conclusion_atoms)

    def conclusion_present(
        self,
        instance: Instance,
        premise_match: Substitution,
        witnesses: Sequence[Value],
    ) -> bool:
        """α-chase trigger test: are all atoms of ``ψ[ū, ᾱ(...)]`` in I?

        This is condition (1) of Definition 4.1 -- the tgd is α-applicable
        iff the premise matches and this returns False.
        """
        return all(
            atom in instance
            for atom in self.conclusion_atoms_under(premise_match, witnesses)
        )

    # ------------------------------------------------------------------
    # Parsing and printing
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, schema: Optional[Schema] = None, name: str = "") -> "Tgd":
        """Parse ``premise -> conclusion`` with optional ``exists`` prefix.

        >>> d = Tgd.parse("N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)")
        >>> d.is_full
        False
        >>> [v.name for v in d.existential]
        ['z1', 'z2']
        """
        parser = _Parser(text, schema)
        premise_formula = parser.parse_disjunction()
        parser.expect("ARROW")
        existential: List[Variable] = []
        if parser.accept("EXISTS"):
            existential.append(Variable(parser.expect("IDENT").text))
            while parser.accept("COMMA"):
                existential.append(Variable(parser.expect("IDENT").text))
            parser.expect("DOT")
        conclusion_formula = parser.parse_conjunction()
        parser.require_end()

        if not is_conjunction_of_atoms(conclusion_formula):
            raise DependencyError(
                f"tgd conclusion must be a conjunction of atoms: {text!r}"
            )
        conclusion_atoms = fo.atoms_of(conclusion_formula)

        declared = set(existential)
        inferred = set()
        premise_free = premise_formula.free_variables()
        for atom in conclusion_atoms:
            inferred |= atom.variables - premise_free
        if declared and declared != inferred:
            raise DependencyError(
                f"declared existential variables {sorted(v.name for v in declared)} "
                f"differ from inferred {sorted(v.name for v in inferred)} in {text!r}"
            )

        if is_conjunction_of_atoms(premise_formula):
            return cls(
                premise_atoms=fo.atoms_of(premise_formula),
                conclusion_atoms=conclusion_atoms,
                name=name,
            )
        return cls(
            premise_formula=premise_formula,
            conclusion_atoms=conclusion_atoms,
            name=name,
        )

    def __repr__(self) -> str:
        if self.premise_atoms is not None:
            premise = " ∧ ".join(repr(atom) for atom in self.premise_atoms)
        else:
            premise = repr(self.premise_formula)
        conclusion = " ∧ ".join(repr(atom) for atom in self.conclusion_atoms)
        if self.existential:
            conclusion = f"∃{format_variables(self.existential)}. {conclusion}"
        label = f"{self.name}: " if self.name else ""
        return f"{label}{premise} → {conclusion}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Tgd)
            and self.premise_atoms == other.premise_atoms
            and self.premise_formula == other.premise_formula
            and self.conclusion_atoms == other.conclusion_atoms
        )

    def __hash__(self) -> int:
        return hash(
            ("Tgd", self.premise_atoms, self.premise_formula, self.conclusion_atoms)
        )
