"""Equality generating dependencies.

An egd has the form ``∀x̄ (ϕ(x̄) → y = z)`` where ϕ is a conjunction of
relational atoms over the target schema and y, z are variables of x̄
(Section 2 of the paper).  Applying an egd to an instance either

* *succeeds* -- one of the two matched values is a null and gets replaced
  by the other (if both are nulls, the larger is replaced by the smaller,
  footnote 4), or
* *fails* -- both matched values are distinct constants (Definition 4.1).
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.errors import DependencyError
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Null, Value, Variable
from ..logic.formulas import is_conjunction_of_atoms
from ..logic.matching import match
from ..logic.parser import _Parser
from ..logic import formulas as fo
from .base import Dependency


class Egd(Dependency):
    """An equality generating dependency ``ϕ(x̄) → left = right``."""

    def __init__(
        self,
        premise_atoms: Sequence[Atom],
        left: Variable,
        right: Variable,
        name: str = "",
    ):
        self.premise_atoms: Tuple[Atom, ...] = tuple(premise_atoms)
        self.left = left
        self.right = right
        self.name = name
        if not self.premise_atoms:
            raise DependencyError("an egd needs at least one premise atom")
        premise_variables: Set[Variable] = set()
        for atom in self.premise_atoms:
            premise_variables |= atom.variables
        for side in (left, right):
            if side not in premise_variables:
                raise DependencyError(
                    f"egd equates {side}, which does not occur in the premise"
                )

    @property
    def is_egd(self) -> bool:
        return True

    def premise_relations(self) -> FrozenSet[RelationSymbol]:
        return frozenset(atom.relation for atom in self.premise_atoms)

    def conclusion_relations(self) -> FrozenSet[RelationSymbol]:
        return frozenset()

    # ------------------------------------------------------------------
    # Matching and application
    # ------------------------------------------------------------------

    def violations(self, instance: Instance) -> Iterator[Tuple[Value, Value]]:
        """Pairs ``(u_k, u_l)`` with ``I ⊨ ϕ[ū]`` and ``u_k ≠ u_l``.

        These are exactly the matches to which the egd "can be applied"
        in the sense of Definition 4.1.
        """
        seen: Set[Tuple[Value, Value]] = set()
        for substitution in match(self.premise_atoms, instance):
            left_value = substitution[self.left]
            right_value = substitution[self.right]
            if left_value != right_value:
                pair = (left_value, right_value)
                if pair not in seen:
                    seen.add(pair)
                    yield pair

    def first_violation(self, instance: Instance) -> Optional[Tuple[Value, Value]]:
        """The first violating pair, or None if the egd is satisfied."""
        for pair in self.violations(instance):
            return pair
        return None

    def is_satisfied(self, instance: Instance) -> bool:
        return self.first_violation(instance) is None

    @staticmethod
    def merge_direction(left: Value, right: Value) -> Optional[Tuple[Value, Value]]:
        """How to resolve ``left = right``: returns ``(old, new)`` meaning
        "replace old by new", or None if both are (distinct) constants --
        the failing case.

        The replacement rule follows footnote 4 of the paper: a null is
        replaced by a constant; between two nulls, the larger identifier is
        replaced by the smaller.
        """
        left_is_null = isinstance(left, Null)
        right_is_null = isinstance(right, Null)
        if left_is_null and right_is_null:
            return (left, right) if right < left else (right, left)
        if left_is_null:
            return (left, right)
        if right_is_null:
            return (right, left)
        return None  # two distinct constants: the application fails

    # ------------------------------------------------------------------
    # Parsing and printing
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str, schema: Optional[Schema] = None, name: str = "") -> "Egd":
        """Parse ``ϕ -> y = z``.

        >>> d = Egd.parse("F(x,y) & F(x,z) -> y = z")
        >>> d.left.name, d.right.name
        ('y', 'z')
        """
        parser = _Parser(text, schema)
        premise_formula = parser.parse_conjunction()
        parser.expect("ARROW")
        left_token = parser.expect("IDENT")
        parser.expect("EQ")
        right_token = parser.expect("IDENT")
        parser.require_end()
        if not is_conjunction_of_atoms(premise_formula):
            raise DependencyError(
                f"egd premise must be a conjunction of atoms: {text!r}"
            )
        return cls(
            premise_atoms=fo.atoms_of(premise_formula),
            left=Variable(left_token.text),
            right=Variable(right_token.text),
            name=name,
        )

    def __repr__(self) -> str:
        premise = " ∧ ".join(repr(atom) for atom in self.premise_atoms)
        label = f"{self.name}: " if self.name else ""
        return f"{label}{premise} → {self.left} = {self.right}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Egd)
            and self.premise_atoms == other.premise_atoms
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Egd", self.premise_atoms, self.left, self.right))
