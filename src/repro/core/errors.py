"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema was used inconsistently (unknown relation, wrong arity, ...)."""


class ArityError(SchemaError):
    """An atom or tuple does not match the arity of its relation symbol."""


class ParseError(ReproError):
    """A dependency, formula or query string could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if text and position >= 0:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class DependencyError(ReproError):
    """A dependency is malformed (free variables, wrong shape, ...)."""


class ChaseFailure(ReproError):
    """An egd tried to equate two distinct constants; the chase fails.

    Carries the offending egd and the pair of constants so callers can
    report *why* no solution exists.
    """

    def __init__(self, egd, left, right):
        self.egd = egd
        self.left = left
        self.right = right
        super().__init__(
            f"chase failed: egd {egd} requires {left} = {right}, "
            f"but both are constants"
        )


class ChaseDivergence(ReproError):
    """A chase did not terminate within its step budget.

    For weakly acyclic settings the standard chase always terminates; this
    error therefore signals either a non-terminating setting (as in the
    paper's Example 4.4 with alpha_3, or D_halt on a non-halting machine)
    or a budget that is too small.
    """

    def __init__(self, steps: int, message: str = ""):
        self.steps = steps
        super().__init__(
            message or f"chase exceeded its step budget of {steps} steps"
        )


class NotASolutionError(ReproError):
    """A target instance was expected to be a solution but is not."""


class UnsupportedQueryError(ReproError):
    """A query falls outside the class supported by the chosen algorithm."""
