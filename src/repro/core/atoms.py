"""Atoms and substitutions.

An instance is a finite set of atoms ``R(u1, ..., ur)`` (Section 2).  Atoms
over *values* populate instances; atoms over values *and variables* occur
inside formulas and dependencies.  Both are represented by :class:`Atom`;
:meth:`Atom.is_ground` distinguishes them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from .errors import ArityError
from .schema import RelationSymbol
from .terms import Const, Null, Term, Value, Variable, as_value


class Atom:
    """An atom ``R(t1, ..., tr)`` where each ``ti`` is a value or variable.

    Atoms are immutable and hashable.  The constructor checks arity.

    >>> R = RelationSymbol("R", 2)
    >>> Atom(R, (Const("a"), Null(0))).is_ground
    True
    >>> Atom(R, (Const("a"), Variable("x"))).is_ground
    False
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: RelationSymbol, args: Iterable[Term]):
        args = tuple(args)
        if len(args) != relation.arity:
            raise ArityError(
                f"{relation.name} has arity {relation.arity}, "
                f"got {len(args)} arguments"
            )
        self.relation = relation
        self.args = args
        self._hash = hash(("Atom", relation, args))

    @property
    def is_ground(self) -> bool:
        """True if every argument is a value (no variables)."""
        return all(isinstance(arg, Value) for arg in self.args)

    @property
    def values(self) -> Tuple[Value, ...]:
        """The value arguments (constants and nulls) in positional order."""
        return tuple(arg for arg in self.args if isinstance(arg, Value))

    @property
    def nulls(self) -> FrozenSet[Null]:
        """The nulls occurring in this atom."""
        return frozenset(arg for arg in self.args if isinstance(arg, Null))

    @property
    def constants(self) -> FrozenSet[Const]:
        """The constants occurring in this atom."""
        return frozenset(arg for arg in self.args if isinstance(arg, Const))

    @property
    def variables(self) -> FrozenSet[Variable]:
        """The variables occurring in this atom."""
        return frozenset(arg for arg in self.args if isinstance(arg, Variable))

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply a substitution to every argument.

        Arguments absent from ``mapping`` are left unchanged, so partial
        substitutions are allowed (used during backtracking matching).
        """
        return Atom(
            self.relation,
            tuple(mapping.get(arg, arg) for arg in self.args),
        )

    def rename_values(self, mapping: Mapping[Value, Value]) -> "Atom":
        """Apply a value-to-value mapping (e.g. a homomorphism) to the atom."""
        return Atom(
            self.relation,
            tuple(
                mapping.get(arg, arg) if isinstance(arg, Value) else arg
                for arg in self.args
            ),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.relation == other.relation
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def _sort_key(self):
        return (
            self.relation.name,
            tuple(_term_sort_key(arg) for arg in self.args),
        )

    def __repr__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.relation.name}({inner})"


def _term_sort_key(term: Term):
    """A total order over mixed terms for deterministic printing."""
    if isinstance(term, Const):
        return (0, term.name)
    if isinstance(term, Null):
        return (1, term.ident)
    if isinstance(term, Variable):
        return (2, term.name)
    raise TypeError(f"unexpected term {term!r}")


def atom(relation: RelationSymbol, *args) -> Atom:
    """Build a ground atom, coercing raw strings/ints to constants.

    >>> R = RelationSymbol("R", 2)
    >>> atom(R, "a", Null(1))
    R(a, ⊥1)
    """
    coerced = tuple(
        arg if isinstance(arg, (Value, Variable)) else as_value(arg)
        for arg in args
    )
    return Atom(relation, coerced)


class Substitution:
    """An immutable assignment from variables to terms.

    Used by the matcher and the chase; supports functional extension
    (returns a new substitution, never mutates), which keeps backtracking
    code obviously correct.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Variable, Term] = None):
        self._mapping: Dict[Variable, Term] = dict(mapping or {})

    def get(self, variable: Variable, default=None):
        return self._mapping.get(variable, default)

    def __getitem__(self, variable: Variable) -> Term:
        return self._mapping[variable]

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self):
        return iter(self._mapping)

    def items(self):
        return self._mapping.items()

    def extend(self, variable: Variable, term: Term) -> "Substitution":
        """A new substitution that additionally maps ``variable`` to ``term``."""
        mapping = dict(self._mapping)
        mapping[variable] = term
        return Substitution(mapping)

    def extend_many(self, pairs: Iterable[Tuple[Variable, Term]]) -> "Substitution":
        """A new substitution extended by every pair in ``pairs``."""
        mapping = dict(self._mapping)
        mapping.update(pairs)
        return Substitution(mapping)

    def apply(self, atom_: Atom) -> Atom:
        """Apply this substitution to an atom."""
        return atom_.substitute(self._mapping)

    def restrict(self, variables_: Iterable[Variable]) -> "Substitution":
        """The restriction of this substitution to ``variables_``."""
        keep = set(variables_)
        return Substitution(
            {v: t for v, t in self._mapping.items() if v in keep}
        )

    def as_tuple(self, variables_: Iterable[Variable]) -> Tuple[Term, ...]:
        """The image of ``variables_`` as a tuple, in the given order."""
        return tuple(self._mapping[v] for v in variables_)

    def __eq__(self, other) -> bool:
        return isinstance(other, Substitution) and self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{v} ↦ {t}" for v, t in sorted(self._mapping.items(), key=lambda p: p[0].name)
        )
        return f"{{{inner}}}"
