"""Values and variables: constants, labeled nulls, and logic variables.

The paper (Section 2) fixes a domain ``Dom = Const ∪ Null`` where ``Const``
is a countably infinite set of constants and ``Null`` a countably infinite
set of labeled nulls, disjoint from ``Const``.  Instances may mention both;
source instances mention only constants.

Design notes
------------
* :class:`Const` and :class:`Null` are immutable and hashable, so they can
  live in sets and dictionary keys (instances are sets of atoms).
* Both classes are **interned**: at any moment, two live equal values are
  the *same object*.  Construction routes through ``__new__`` and a
  per-class :class:`weakref.WeakValueDictionary` (so unused values are
  still collected), and pickling routes back through the constructor via
  ``__reduce__``, which keeps the invariant across the process-pool
  executor.  The compiled match plans in :mod:`repro.logic.plans` rely on
  this to compare values by identity (``is``) in their inner loops.
* ``Null`` carries an integer identifier and is **totally ordered** by it.
  Definition 4.1 of the paper resolves the ambiguity of egd application by
  assuming "Null is linearly ordered so that if both u_k and u_l are nulls,
  the larger null is replaced by the smaller one"; we implement exactly
  that order.
* Constants are ordered among themselves by name; any constant sorts below
  any null.  This gives a deterministic total order on ``Dom`` which the
  chase engines use to make results reproducible.
* :class:`Variable` is *not* a value: it only occurs inside formulas and
  dependencies, never inside instances.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Iterator, Union


class Term:
    """Common base class for everything that can fill an atom position."""

    __slots__ = ()


class Value(Term):
    """Base class for domain elements (constants and nulls)."""

    __slots__ = ()

    @property
    def is_null(self) -> bool:
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return not self.is_null


class Const(Value):
    """A constant from the countably infinite set ``Const``.

    Constants compare by name.  Two ``Const`` objects with the same name
    are equal and interchangeable.

    Constants are interned: equal live constants are the same object.

    >>> Const("a") == Const("a")
    True
    >>> Const("a") is Const("a")
    True
    >>> Const("a").is_null
    False
    """

    __slots__ = ("name", "_hash", "__weakref__")

    _interned: "weakref.WeakValueDictionary[str, Const]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, name):
        # Accept ints for convenience (Example 5.3 uses P(1), ..., P(n)).
        name = str(name)
        self = cls._interned.get(name)
        if self is None:
            self = super().__new__(cls)
            self.name = name
            self._hash = hash(("Const", name))
            cls._interned[name] = self
        return self

    def __reduce__(self):
        # Unpickling re-enters __new__, so interning (and with it the
        # identity-comparison contract) survives the process pool.
        return (Const, (self.name,))

    @property
    def is_null(self) -> bool:
        return False

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Const) and self.name == other.name
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if isinstance(other, Const):
            return self.name < other.name
        if isinstance(other, Null):
            return True  # constants sort below nulls
        return NotImplemented

    def __le__(self, other) -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        return f"Const({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Null(Value):
    """A labeled null -- a placeholder for an unknown value.

    Nulls compare by their integer identifier; the identifier also defines
    the linear order used when an egd merges two nulls (the larger is
    replaced by the smaller, footnote 4 of the paper).

    Fresh nulls should be obtained from a :class:`NullFactory` so that
    identifiers never collide within one computation.

    Nulls are interned: equal live nulls are the same object.
    """

    __slots__ = ("ident", "_hash", "__weakref__")

    _interned: "weakref.WeakValueDictionary[int, Null]" = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, ident: int):
        ident = int(ident)
        self = cls._interned.get(ident)
        if self is None:
            self = super().__new__(cls)
            self.ident = ident
            self._hash = hash(("Null", ident))
            cls._interned[ident] = self
        return self

    def __reduce__(self):
        return (Null, (self.ident,))

    @property
    def is_null(self) -> bool:
        return True

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Null) and self.ident == other.ident
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if isinstance(other, Null):
            return self.ident < other.ident
        if isinstance(other, Const):
            return False  # nulls sort above constants
        return NotImplemented

    def __le__(self, other) -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        return f"Null({self.ident})"

    def __str__(self) -> str:
        return f"⊥{self.ident}"


class Variable(Term):
    """A first-order variable, used in formulas and dependencies only."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = str(name)
        self._hash = hash(("Variable", self.name))

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if isinstance(other, Variable):
            return self.name < other.name
        return NotImplemented

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class NullFactory:
    """Produces fresh nulls with strictly increasing identifiers.

    A factory can be *seeded above* an existing instance so the nulls it
    produces are guaranteed fresh with respect to that instance:

    >>> factory = NullFactory(start=10)
    >>> factory.fresh()
    Null(10)
    >>> factory.fresh()
    Null(11)
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def fresh(self) -> Null:
        """Return a null no previous call of this factory has returned."""
        return Null(next(self._counter))

    def fresh_tuple(self, n: int) -> tuple:
        """Return a tuple of ``n`` pairwise distinct fresh nulls."""
        return tuple(self.fresh() for _ in range(n))

    @classmethod
    def above(cls, values) -> "NullFactory":
        """A factory whose nulls exceed every null identifier in ``values``."""
        highest = -1
        for value in values:
            if isinstance(value, Null) and value.ident > highest:
                highest = value.ident
        return cls(start=highest + 1)


def const(name) -> Const:
    """Shorthand constructor for constants."""
    return Const(name)


def null(ident: int) -> Null:
    """Shorthand constructor for a null with an explicit identifier."""
    return Null(ident)


def var(name: str) -> Variable:
    """Shorthand constructor for variables."""
    return Variable(name)


def variables(names: str) -> Iterator[Variable]:
    """Build several variables from a whitespace-separated string.

    >>> x, y = variables("x y")
    >>> x
    Variable('x')
    """
    return (Variable(name) for name in names.split())


def constants(names: str) -> Iterator[Const]:
    """Build several constants from a whitespace-separated string."""
    return (Const(name) for name in names.split())


ValueLike = Union[Value, str, int]


def as_value(item: ValueLike) -> Value:
    """Coerce a raw Python value to a domain element.

    Strings and integers become constants; :class:`Value` instances pass
    through unchanged.  This keeps example and test code terse without
    blurring the constant/null distinction.
    """
    if isinstance(item, Value):
        return item
    if isinstance(item, (str, int)):
        return Const(item)
    raise TypeError(f"cannot interpret {item!r} as a domain value")
