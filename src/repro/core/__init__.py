"""Relational substrate: values, atoms, schemas, instances.

This package implements the basic objects of Section 2 of the paper:
constants, labeled nulls, relation symbols, schemas, ground atoms, and
instances with incomplete data.
"""

from .atoms import Atom, Substitution, atom
from .errors import (
    ArityError,
    ChaseDivergence,
    ChaseFailure,
    DependencyError,
    NotASolutionError,
    ParseError,
    ReproError,
    SchemaError,
    UnsupportedQueryError,
)
from .instance import Instance, isomorphic
from .schema import RelationSymbol, Schema
from .terms import (
    Const,
    Null,
    NullFactory,
    Term,
    Value,
    Variable,
    as_value,
    const,
    constants,
    null,
    var,
    variables,
)

__all__ = [
    "Atom",
    "ArityError",
    "ChaseDivergence",
    "ChaseFailure",
    "Const",
    "DependencyError",
    "Instance",
    "NotASolutionError",
    "Null",
    "NullFactory",
    "ParseError",
    "RelationSymbol",
    "ReproError",
    "Schema",
    "SchemaError",
    "Substitution",
    "Term",
    "UnsupportedQueryError",
    "Value",
    "Variable",
    "as_value",
    "atom",
    "const",
    "constants",
    "isomorphic",
    "null",
    "var",
    "variables",
]
