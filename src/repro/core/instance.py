"""Instances: finite sets of atoms with incomplete data.

An instance is represented by a finite set of ground atoms over
``Dom = Const ∪ Null`` (Section 2 of the paper).  :class:`Instance` is a
mutable container with two indexes that the conjunctive matcher exploits:

* ``by relation name`` -- all atoms of a relation,
* ``by (relation name, position, value)`` -- all atoms of a relation with a
  given value at a given position, and
* ``by (relation name, argument tuple)`` -- a per-relation hash set of the
  full argument tuples, giving :meth:`Instance.has_tuple` an O(1)
  ground-membership probe that never constructs an :class:`Atom`.

All indexes are maintained incrementally on ``add``/``discard``, so the
chase (which adds atoms in a loop) never rebuilds them.
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .atoms import Atom
from .errors import SchemaError
from .schema import RelationSymbol, Schema
from .terms import Const, Null, NullFactory, Value

#: Shared default for the zero-copy probe accessors below.
_EMPTY_SET: FrozenSet[Atom] = frozenset()


class Instance:
    """A finite set of ground atoms, possibly containing nulls.

    >>> from repro.core import Schema, atom
    >>> tau = Schema.of(E=2)
    >>> inst = Instance()
    >>> _ = inst.add(atom(tau["E"], "a", "b"))
    >>> len(inst)
    1
    """

    __slots__ = (
        "_atoms",
        "_by_relation",
        "_by_position",
        "_by_tuple",
        "_fingerprints",
        "_canonical_cache",
    )

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._atoms: Set[Atom] = set()
        self._by_relation: Dict[str, Set[Atom]] = {}
        self._by_position: Dict[Tuple[str, int, Value], Set[Atom]] = {}
        self._by_tuple: Dict[str, Set[Tuple[Value, ...]]] = {}
        # Memoized fingerprint()/canonical() results, dropped on any
        # mutation.  The incremental re-solve loop fingerprints the same
        # unchanged instances once per edit; these make that free.
        self._fingerprints: Dict[bool, str] = {}
        self._canonical_cache: Optional["Instance"] = None
        for item in atoms:
            self.add(item)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, item: Atom) -> bool:
        """Insert an atom; return True if it was new.

        Raises if the atom is not ground: instances hold values only.
        """
        if not item.is_ground:
            raise SchemaError(f"cannot add non-ground atom {item!r} to an instance")
        if item in self._atoms:
            return False
        self._invalidate_caches()
        self._atoms.add(item)
        name = item.relation.name
        self._by_relation.setdefault(name, set()).add(item)
        # Reuse the atom's own args tuple: the full-tuple index costs one
        # pointer per atom, not a copy of the arguments.
        self._by_tuple.setdefault(name, set()).add(item.args)
        for position, value in enumerate(item.args):
            key = (name, position, value)
            self._by_position.setdefault(key, set()).add(item)
        return True

    def add_all(self, items: Iterable[Atom]) -> int:
        """Insert several atoms; return how many were new."""
        return sum(1 for item in items if self.add(item))

    def discard(self, item: Atom) -> bool:
        """Remove an atom if present; return True if it was present."""
        if item not in self._atoms:
            return False
        self._invalidate_caches()
        self._atoms.remove(item)
        name = item.relation.name
        bucket = self._by_relation.get(name)
        if bucket is not None:
            bucket.discard(item)
            if not bucket:
                del self._by_relation[name]
        tuples = self._by_tuple.get(name)
        if tuples is not None:
            tuples.discard(item.args)
            if not tuples:
                del self._by_tuple[name]
        for position, value in enumerate(item.args):
            key = (name, position, value)
            slot = self._by_position.get(key)
            if slot is not None:
                slot.discard(item)
                if not slot:
                    del self._by_position[key]
        return True

    def _invalidate_caches(self) -> None:
        """Drop memoized fingerprint/canonical forms (dirty flag).

        Rebinds (rather than clears) the dicts so copies sharing a cache
        snapshot keep their still-valid entries.
        """
        if self._fingerprints:
            self._fingerprints = {}
        if self._canonical_cache is not None:
            self._canonical_cache = None

    def replace_value(self, old: Value, new: Value) -> None:
        """Replace every occurrence of ``old`` by ``new`` (egd application).

        The paper's egd rule (Definition 4.1) replaces one null by another
        value throughout the instance; this is that operation.
        """
        if old == new:
            return
        affected = [item for item in self._atoms if old in item.args]
        for item in affected:
            self.discard(item)
        for item in affected:
            self.add(item.rename_values({old: new}))

    # ------------------------------------------------------------------
    # Queries on the container
    # ------------------------------------------------------------------

    def __contains__(self, item: Atom) -> bool:
        return item in self._atoms

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __bool__(self) -> bool:
        return bool(self._atoms)

    def atoms_of(self, relation) -> FrozenSet[Atom]:
        """All atoms of a relation (by symbol or by name)."""
        name = relation.name if isinstance(relation, RelationSymbol) else relation
        return frozenset(self._by_relation.get(name, ()))

    def atoms_with(self, relation, position: int, value: Value) -> FrozenSet[Atom]:
        """All atoms of ``relation`` having ``value`` at ``position`` (0-based)."""
        name = relation.name if isinstance(relation, RelationSymbol) else relation
        return frozenset(self._by_position.get((name, position, value), ()))

    def count_with(self, relation, position: int, value: Value) -> int:
        """Cardinality of :meth:`atoms_with`, without materializing the set."""
        name = relation.name if isinstance(relation, RelationSymbol) else relation
        return len(self._by_position.get((name, position, value), ()))

    def count_of(self, relation) -> int:
        """Cardinality of :meth:`atoms_of`, without materializing the set."""
        name = relation.name if isinstance(relation, RelationSymbol) else relation
        return len(self._by_relation.get(name, ()))

    def has_tuple(self, name: str, args: Tuple[Value, ...]) -> bool:
        """O(1) ground-membership probe by relation *name* and args tuple.

        Equivalent to ``Atom(relation, args) in instance`` but without
        constructing (and hashing) an :class:`Atom`.  The hot path of the
        compiled match plans (:mod:`repro.logic.plans`) uses this for
        join steps whose variables are all already bound.
        """
        bucket = self._by_tuple.get(name)
        return bucket is not None and args in bucket

    def probe_relation(self, name: str) -> Set[Atom]:
        """Zero-copy view of the atoms of relation ``name``.

        Unlike :meth:`atoms_of` the returned set is the live index
        bucket; callers must not mutate the instance while iterating it.
        Reserved for the matcher/plan hot paths.
        """
        return self._by_relation.get(name, _EMPTY_SET)

    def probe_position(self, name: str, position: int, value: Value) -> Set[Atom]:
        """Zero-copy view of the ``(name, position, value)`` index bucket.

        Same contract as :meth:`probe_relation`: a live view, not a copy.
        """
        return self._by_position.get((name, position, value), _EMPTY_SET)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of relations with at least one atom, sorted."""
        return tuple(sorted(self._by_relation))

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------

    def active_domain(self) -> FrozenSet[Value]:
        """``Dom(I)``: every value occurring in some atom."""
        values: Set[Value] = set()
        for item in self._atoms:
            values.update(item.args)
        return frozenset(values)

    def constants(self) -> FrozenSet[Const]:
        """``Const(I) = Dom(I) ∩ Const``."""
        return frozenset(v for v in self.active_domain() if isinstance(v, Const))

    def nulls(self) -> FrozenSet[Null]:
        """``Null(I) = Dom(I) ∩ Null``."""
        return frozenset(v for v in self.active_domain() if isinstance(v, Null))

    @property
    def is_ground(self) -> bool:
        """True if the instance contains no nulls (e.g. a source instance)."""
        return not self.nulls()

    def null_factory(self) -> NullFactory:
        """A factory of nulls fresh with respect to this instance."""
        return NullFactory.above(self.active_domain())

    # ------------------------------------------------------------------
    # Set-like algebra
    # ------------------------------------------------------------------

    def copy(self) -> "Instance":
        """An independent copy (indexes are rebuilt incrementally)."""
        result = Instance(self._atoms)
        # Same atom set, same digests: seed the copy's caches.  The
        # copy's first mutation rebinds them without touching ours.
        result._fingerprints = dict(self._fingerprints)
        result._canonical_cache = self._canonical_cache
        return result

    def union(self, other: "Instance") -> "Instance":
        """A new instance holding the atoms of both."""
        result = self.copy()
        result.add_all(other)
        return result

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def difference(self, other: "Instance") -> "Instance":
        """A new instance holding atoms of self not in other."""
        return Instance(item for item in self._atoms if item not in other)

    def issubset(self, other: "Instance") -> bool:
        """True if every atom of self is an atom of other."""
        return all(item in other for item in self._atoms)

    def reduct(self, schema: Schema) -> "Instance":
        """The σ-reduct ``I|σ``: atoms whose relation belongs to ``schema``."""
        return Instance(
            item for item in self._atoms if item.relation in schema
        )

    def rename_values(self, mapping: Mapping[Value, Value]) -> "Instance":
        """The image of this instance under a value mapping (h(I))."""
        return Instance(item.rename_values(mapping) for item in self._atoms)

    def frozen(self) -> FrozenSet[Atom]:
        """A hashable snapshot of the atom set (used for cycle detection)."""
        return frozenset(self._atoms)

    def components(self) -> List["Instance"]:
        """The value-connected components, in deterministic order.

        Two atoms are connected when they share a value (constant or
        null); a component is a maximal connected group of atoms.  No
        homomorphism or dependency with a component-local premise can
        relate atoms of different components, which is what the
        partitioned chase (:mod:`repro.chase.sharding`) and the
        partitioned core (:mod:`repro.homomorphism.parallel`) exploit.
        Nullary atoms share no values and each form their own component.
        Components are sorted by their least atom.
        """
        ordered = self.sorted_atoms()
        parent = list(range(len(ordered)))

        def find(index: int) -> int:
            while parent[index] != index:
                parent[index] = parent[parent[index]]
                index = parent[index]
            return index

        anchor: Dict[Value, int] = {}
        for position, item in enumerate(ordered):
            for value in item.args:
                first = anchor.setdefault(value, position)
                root_a, root_b = find(first), find(position)
                if root_a != root_b:
                    parent[root_b] = root_a
        groups: Dict[int, List[Atom]] = {}
        for position, item in enumerate(ordered):
            groups.setdefault(find(position), []).append(item)
        # ``ordered`` is sorted, so grouping by first member index keeps
        # the components in least-atom order.
        return [Instance(groups[root]) for root in sorted(groups)]

    def __reduce__(self):
        """Pickle as the sorted atom tuple; indexes are rebuilt on load.

        The three indexes triple the in-memory footprint but are pure
        functions of the atom set, so shipping them to worker processes
        would waste IPC bandwidth.  Sorting makes the pickle bytes a
        deterministic function of the atom set.
        """
        return (Instance, (tuple(self.sorted_atoms()),))

    def fingerprint(self, *, canonical: bool = False) -> str:
        """A deterministic content digest of the atom set (sha256 hex).

        The digest is computed from a length-prefixed textual encoding of
        the atoms, sorted bytewise -- it depends only on the atom set,
        never on ``PYTHONHASHSEED``, insertion order, or object identity.
        Two instances are equal iff their fingerprints agree (modulo
        sha256 collisions), which makes the digest a compact hashable
        stand-in for :meth:`frozen` in cycle-detection ``seen`` sets.

        With ``canonical=True`` the nulls are first renamed via
        :meth:`canonical_renaming`, so instances that differ only in the
        *names* of their nulls (when the deterministic atom order induces
        the same renaming) hash equally -- the form used by the
        ``repro.engine`` result cache to deduplicate semantically equal
        inputs.

        Both variants are memoized until the next mutation; repeat
        lookups land in the ``fingerprint.cache_hits`` counter.
        """
        cached = self._fingerprints.get(canonical)
        if cached is not None:
            _cache_hit()
            return cached
        target = self.canonical() if canonical else self
        digest = hashlib.sha256()
        for token in sorted(_atom_token(item) for item in target._atoms):
            digest.update(token)
            digest.update(b"\x1e")
        result = digest.hexdigest()
        self._fingerprints[canonical] = result
        return result

    # ------------------------------------------------------------------
    # Equality and canonical forms
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, Instance) and self._atoms == other._atoms

    def __hash__(self):
        raise TypeError(
            "Instance is mutable and unhashable; use .frozen() for a snapshot"
        )

    def canonical_renaming(self) -> Dict[Null, Null]:
        """A renaming of nulls to 0,1,2,... in deterministic order.

        Two instances equal "up to renaming of nulls" become literally
        equal after canonicalization whenever the renaming implied by the
        deterministic atom order matches; :func:`isomorphic` performs the
        full (backtracking) check.
        """
        ordering: List[Null] = []
        seen: Set[Null] = set()
        for item in sorted(self._atoms):
            for value in item.args:
                if isinstance(value, Null) and value not in seen:
                    seen.add(value)
                    ordering.append(value)
        return {old: Null(index) for index, old in enumerate(ordering)}

    def canonical(self) -> "Instance":
        """This instance with nulls renamed canonically.  Idempotent.

        One application of :meth:`canonical_renaming` is not a fixed
        point: renaming nulls re-sorts the atoms, which can reorder
        first occurrences.  The renaming is therefore iterated until the
        sequence of forms cycles (the orbit is finite -- every form uses
        nulls 0..k-1), and the lexicographically least form of the cycle
        is returned.  Starting from that form revisits exactly the same
        cycle, so ``canonical(canonical(I)) == canonical(I)`` -- the
        stability the ``repro.io`` codec and the ``repro.engine`` cache
        keys rely on.

        The form is memoized until the next mutation (callers must not
        mutate the returned instance); hits count towards
        ``fingerprint.cache_hits``.
        """
        if self._canonical_cache is not None:
            _cache_hit()
            return self._canonical_cache
        history: List[Tuple[Atom, ...]] = []
        forms: Dict[Tuple[Atom, ...], "Instance"] = {}
        current = self
        while True:
            current = current.rename_values(current.canonical_renaming())
            key = tuple(current.sorted_atoms())
            if key in forms:
                start = history.index(key)
                least = min(history[start:])
                result = forms[least]
                result._canonical_cache = result  # idempotent
                self._canonical_cache = result
                return result
            history.append(key)
            forms[key] = current

    def sorted_atoms(self) -> List[Atom]:
        """The atoms in deterministic order (for printing and tests)."""
        return sorted(self._atoms)

    def __repr__(self) -> str:
        if not self._atoms:
            return "Instance(∅)"
        inner = ", ".join(repr(item) for item in self.sorted_atoms())
        return f"Instance({{{inner}}})"

    def pretty(self, indent: str = "  ") -> str:
        """A multi-line rendering grouped by relation, for examples/docs."""
        lines: List[str] = []
        for name in self.relation_names():
            rendered = ", ".join(
                repr(item) for item in sorted(self._by_relation[name])
            )
            lines.append(f"{indent}{rendered}")
        return "\n".join(lines) if lines else f"{indent}(empty)"


#: Lazily bound ``fingerprint.cache_hits`` counter (importing
#: :mod:`repro.obs` at module load would cycle: obs imports core).
_CACHE_HITS = None


def _cache_hit() -> None:
    global _CACHE_HITS
    if _CACHE_HITS is None:
        from ..obs import counter

        _CACHE_HITS = counter("fingerprint.cache_hits")
    _CACHE_HITS.inc()


def _atom_token(item: Atom) -> bytes:
    """An injective textual encoding of a ground atom.

    Cells are length-prefixed (constants) or integer-tagged (nulls) so no
    constant name can collide with another cell's encoding.
    """
    parts = [f"{len(item.relation.name)}:{item.relation.name}/{item.relation.arity}"]
    for value in item.args:
        if isinstance(value, Null):
            parts.append(f"n{value.ident}")
        else:
            parts.append(f"c{len(value.name)}:{value.name}")
    return "\x1f".join(parts).encode("utf-8")


def isomorphic(left: Instance, right: Instance) -> bool:
    """Decide whether two instances are equal up to renaming of nulls.

    Constants must map to themselves; nulls must map bijectively to nulls.
    This is the paper's "up to renaming of nulls" equivalence, used e.g. to
    compare cores.  Backtracking over null pairings with degree-based
    pruning; exponential in the worst case but instant at test scale.
    """
    if len(left) != len(right):
        return False
    if left.constants() != right.constants():
        return False
    left_nulls = sorted(left.nulls())
    right_nulls = sorted(right.nulls())
    if len(left_nulls) != len(right_nulls):
        return False
    if not left_nulls:
        return left == right

    def signature(instance: Instance, value: Value) -> Tuple:
        entries = []
        for item in instance:
            for position, arg in enumerate(item.args):
                if arg == value:
                    entries.append((item.relation.name, position))
        return tuple(sorted(entries))

    right_by_signature: Dict[Tuple, List[Null]] = {}
    for value in right_nulls:
        right_by_signature.setdefault(signature(right, value), []).append(value)

    candidates: List[Tuple[Null, List[Null]]] = []
    for value in left_nulls:
        options = right_by_signature.get(signature(left, value))
        if not options:
            return False
        candidates.append((value, options))
    # Most constrained first.
    candidates.sort(key=lambda pair: len(pair[1]))

    right_atoms = right.frozen()

    def extend(index: int, mapping: Dict[Null, Null], used: Set[Null]) -> bool:
        if index == len(candidates):
            return all(
                item.rename_values(mapping) in right_atoms for item in left
            )
        value, options = candidates[index]
        for option in options:
            if option in used:
                continue
            mapping[value] = option
            used.add(option)
            # Local consistency: every left atom fully mapped so far must exist.
            consistent = True
            for item in left:
                if value in item.args:
                    image = item.rename_values(mapping)
                    if image.is_ground and not any(
                        isinstance(arg, Null) and arg not in mapping.values()
                        for arg in image.args
                    ):
                        mapped_everything = all(
                            not isinstance(arg, Null) or arg in mapping
                            for arg in item.args
                        )
                        if mapped_everything and image not in right_atoms:
                            consistent = False
                            break
            if consistent and extend(index + 1, mapping, used):
                return True
            del mapping[value]
            used.discard(option)
        return False

    return extend(0, {}, set())
