"""Schemas: finite sets of relation symbols with fixed arities.

A data exchange setting has two *disjoint* schemas: the source schema σ and
the target schema τ (Section 2 of the paper).  :class:`Schema` enforces
arity consistency and offers set-like operations needed by the exchange
layer (union for the joint schema ρ = σ ∪ τ, disjointness checks, and the
"primed copy" construction used by copying settings in Section 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from .errors import SchemaError


class RelationSymbol:
    """A relation symbol with a name and a fixed arity.

    Symbols compare by ``(name, arity)`` so that structurally equal schemas
    built independently are interchangeable.
    """

    __slots__ = ("name", "arity", "_hash")

    def __init__(self, name: str, arity: int):
        if arity < 0:
            raise SchemaError(f"arity of {name} must be non-negative, got {arity}")
        self.name = str(name)
        self.arity = int(arity)
        self._hash = hash(("RelationSymbol", self.name, self.arity))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RelationSymbol)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other) -> bool:
        if isinstance(other, RelationSymbol):
            return (self.name, self.arity) < (other.name, other.arity)
        return NotImplemented

    def __repr__(self) -> str:
        return f"RelationSymbol({self.name!r}, {self.arity})"

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def primed(self, suffix: str = "_t") -> "RelationSymbol":
        """The copy ``R'`` of this symbol used by copying settings."""
        return RelationSymbol(self.name + suffix, self.arity)


class Schema:
    """An immutable finite set of relation symbols.

    >>> sigma = Schema.of(M=2, N=2)
    >>> sigma["M"].arity
    2
    >>> len(sigma)
    2
    """

    __slots__ = ("_by_name",)

    def __init__(self, symbols: Iterable[RelationSymbol] = ()):
        by_name: Dict[str, RelationSymbol] = {}
        for symbol in symbols:
            existing = by_name.get(symbol.name)
            if existing is not None and existing != symbol:
                raise SchemaError(
                    f"conflicting arities for relation {symbol.name}: "
                    f"{existing.arity} vs {symbol.arity}"
                )
            by_name[symbol.name] = symbol
        self._by_name = by_name

    @classmethod
    def of(cls, **arities: int) -> "Schema":
        """Build a schema from keyword arguments ``name=arity``."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    @classmethod
    def from_mapping(cls, arities: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def __contains__(self, item) -> bool:
        if isinstance(item, RelationSymbol):
            return self._by_name.get(item.name) == item
        return item in self._by_name

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown relation symbol {name!r}") from None

    def get(self, name: str):
        """The symbol named ``name``, or None if absent."""
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(sorted(self._by_name.values()))

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(frozenset(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(symbol) for symbol in self)
        return f"Schema({{{inner}}})"

    @property
    def names(self) -> Tuple[str, ...]:
        """Relation names, sorted."""
        return tuple(sorted(self._by_name))

    def union(self, other: "Schema") -> "Schema":
        """The joint schema; arities must agree on shared names."""
        return Schema(list(self._by_name.values()) + list(other._by_name.values()))

    def __or__(self, other: "Schema") -> "Schema":
        return self.union(other)

    def disjoint_from(self, other: "Schema") -> bool:
        """True if no relation name is shared (required for σ and τ)."""
        return not set(self._by_name) & set(other._by_name)

    def primed(self, suffix: str = "_t") -> "Schema":
        """The schema ``{R' | R ∈ self}`` of copying settings (Section 3)."""
        return Schema(symbol.primed(suffix) for symbol in self)

    def positions(self) -> Tuple[Tuple[RelationSymbol, int], ...]:
        """All positions ``(R, i)`` over this schema (Definition 6.5).

        Positions are 0-based here, unlike the paper's 1-based convention;
        this is an internal representation detail only.
        """
        return tuple(
            (symbol, i) for symbol in self for i in range(symbol.arity)
        )
