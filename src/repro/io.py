"""Loading and saving instances: CSV directories and a JSON codec.

A practical data exchange tool needs to ingest real tables.  This module
maps a directory of CSV files to an :class:`Instance` and back:

* one file per relation, named ``<Relation>.csv``;
* every cell is a constant, except cells of the form ``_:<int>`` which
  denote labeled nulls (the Turtle-ish blank-node convention), e.g.
  ``_:3`` is ``Null(3)`` -- so target instances with incomplete data
  round-trip;
* an optional header row is skipped when it matches the relation's
  column names ``col1, col2, ...`` (written by :func:`dump_instance`).

The reader validates arities against a schema when one is given, and
infers relation symbols from the data otherwise.

The **JSON codec** (:func:`dumps_instance` / :func:`loads_instance`,
schema ``repro.io/v1``) is the lossless sibling of the CSV format: cells
are *typed* (``["c", name]`` for constants, ``["n", ident]`` for nulls),
so constants whose name merely looks like a null literal (``"_:3"``) --
the cases :func:`roundtrip_safe` warns about -- survive unchanged, and
null identity is preserved exactly, including under
:meth:`Instance.canonical_renaming`.  The ``repro.engine`` result cache
stores every instance payload through this codec.
"""

from __future__ import annotations

import csv
import json
import re
from pathlib import Path
from typing import List, Optional, Union

from .core.atoms import Atom
from .core.errors import ReproError, SchemaError
from .core.instance import Instance
from .core.schema import RelationSymbol, Schema
from .core.terms import Const, Null, Value

NULL_PATTERN = re.compile(r"^_:(\d+)$")
PathLike = Union[str, Path]


def parse_cell(text: str) -> Value:
    """``"_:<n>"`` becomes a null; anything else a constant."""
    matched = NULL_PATTERN.match(text.strip())
    if matched:
        return Null(int(matched.group(1)))
    return Const(text.strip())


def format_cell(value: Value) -> str:
    """Inverse of :func:`parse_cell`."""
    if isinstance(value, Null):
        return f"_:{value.ident}"
    return value.name


def _header_for(arity: int) -> List[str]:
    return [f"col{i + 1}" for i in range(arity)]


def load_relation(
    path: PathLike,
    relation: Optional[RelationSymbol] = None,
    name: Optional[str] = None,
) -> List[Atom]:
    """Read one CSV file into atoms.

    The relation symbol is taken from ``relation``, or built from
    ``name`` (default: the file stem) and the observed column count.
    """
    path = Path(path)
    relation_name = name or (relation.name if relation else path.stem)
    atoms: List[Atom] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row or all(not cell.strip() for cell in row):
                continue
            if relation is None:
                relation = RelationSymbol(relation_name, len(row))
            if len(row) != relation.arity:
                raise SchemaError(
                    f"{path.name}:{row_number + 1}: expected "
                    f"{relation.arity} columns, got {len(row)}"
                )
            if row_number == 0 and [
                cell.strip() for cell in row
            ] == _header_for(relation.arity):
                continue  # generated header
            atoms.append(Atom(relation, tuple(parse_cell(cell) for cell in row)))
    return atoms


def load_instance(
    directory: PathLike, schema: Optional[Schema] = None
) -> Instance:
    """Read every ``*.csv`` in a directory into one instance.

    With a schema, file stems must name schema relations and arities are
    validated; without one, relations are inferred per file.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ReproError(f"{directory} is not a directory")
    instance = Instance()
    found = sorted(directory.glob("*.csv"))
    if not found:
        raise ReproError(f"no .csv files in {directory}")
    for path in found:
        relation: Optional[RelationSymbol] = None
        if schema is not None:
            relation = schema.get(path.stem)
            if relation is None:
                raise SchemaError(
                    f"{path.name}: relation {path.stem!r} is not in the schema"
                )
        instance.add_all(load_relation(path, relation))
    return instance


def dump_instance(
    instance: Instance,
    directory: PathLike,
    *,
    header: bool = True,
) -> List[Path]:
    """Write an instance as one CSV per relation; returns written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in instance.relation_names():
        atoms = sorted(instance.atoms_of(name))
        path = directory / f"{name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            if header and atoms:
                writer.writerow(_header_for(atoms[0].relation.arity))
            for atom in atoms:
                writer.writerow([format_cell(value) for value in atom.args])
        written.append(path)
    return written


# ----------------------------------------------------------------------
# JSON codec (repro.io/v1)
# ----------------------------------------------------------------------

#: Version tag embedded in every JSON payload this module writes.
JSON_SCHEMA = "repro.io/v1"


def cell_to_json(value: Value) -> List:
    """A typed JSON cell: ``["c", name]`` or ``["n", ident]``.

    Unlike the CSV convention this is injective on all of ``Dom``: a
    constant literally named ``"_:3"`` stays distinguishable from
    ``Null(3)``.
    """
    if isinstance(value, Null):
        return ["n", value.ident]
    return ["c", value.name]


def cell_from_json(cell) -> Value:
    """Inverse of :func:`cell_to_json`."""
    try:
        tag, payload = cell
    except (TypeError, ValueError):
        raise ReproError(f"malformed JSON cell {cell!r}") from None
    if tag == "n":
        return Null(int(payload))
    if tag == "c":
        return Const(str(payload))
    raise ReproError(f"unknown JSON cell tag {tag!r} in {cell!r}")


def instance_to_payload(instance: Instance, *, canonical: bool = False) -> dict:
    """The instance as a plain JSON-serializable dict (``repro.io/v1``).

    Rows are emitted in deterministic (sorted-atom) order, so equal
    instances produce equal payloads regardless of insertion order.
    With ``canonical=True`` the nulls are renamed via
    :meth:`Instance.canonical_renaming` first -- the form stored by the
    ``repro.engine`` cache, where keys are canonical fingerprints.
    """
    if canonical:
        instance = instance.canonical()
    relations = {}
    for name in instance.relation_names():
        atoms = sorted(instance.atoms_of(name))
        relations[name] = {
            "arity": atoms[0].relation.arity,
            "rows": [
                [cell_to_json(value) for value in item.args] for item in atoms
            ],
        }
    return {"schema": JSON_SCHEMA, "relations": relations}


def instance_from_payload(
    payload: dict, schema: Optional[Schema] = None
) -> Instance:
    """Rebuild an instance from :func:`instance_to_payload` output.

    With a schema, relation names are resolved against it (and validated);
    without one, relation symbols are inferred from the payload.
    """
    if not isinstance(payload, dict):
        raise ReproError(f"instance payload must be an object, got {payload!r}")
    version = payload.get("schema")
    if version != JSON_SCHEMA:
        raise ReproError(
            f"unsupported instance payload schema {version!r} "
            f"(expected {JSON_SCHEMA!r})"
        )
    instance = Instance()
    for name, body in payload.get("relations", {}).items():
        arity = int(body["arity"])
        if schema is not None:
            relation = schema.get(name)
            if relation is None:
                raise SchemaError(
                    f"relation {name!r} from the payload is not in the schema"
                )
            if relation.arity != arity:
                raise SchemaError(
                    f"payload arity {arity} for {name!r} does not match the "
                    f"schema arity {relation.arity}"
                )
        else:
            relation = RelationSymbol(name, arity)
        for row in body.get("rows", ()):
            if len(row) != arity:
                raise SchemaError(
                    f"{name!r} row {row!r} has {len(row)} cells, expected {arity}"
                )
            instance.add(
                Atom(relation, tuple(cell_from_json(cell) for cell in row))
            )
    return instance


def answers_to_json(answers) -> List[List[List]]:
    """An answer set as sorted rows of typed cells (``repro.io/v1``).

    Deterministic: rows are sorted, so equal answer sets encode equally.
    """
    return sorted(
        [cell_to_json(value) for value in row] for row in answers
    )


def answers_from_json(rows) -> frozenset:
    """Inverse of :func:`answers_to_json`."""
    if not isinstance(rows, list):
        raise ReproError(f"answer rows must be a list, got {rows!r}")
    return frozenset(
        tuple(cell_from_json(cell) for cell in row) for row in rows
    )


def dumps_instance(
    instance: Instance,
    *,
    canonical: bool = False,
    indent: Optional[int] = None,
) -> str:
    """Serialize an instance to a versioned JSON string (``repro.io/v1``).

    The output is deterministic (sorted keys, sorted rows); equal
    instances serialize to equal strings.
    """
    return json.dumps(
        instance_to_payload(instance, canonical=canonical),
        indent=indent,
        sort_keys=True,
    )


def loads_instance(text: str, schema: Optional[Schema] = None) -> Instance:
    """Inverse of :func:`dumps_instance`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid instance JSON: {error}") from None
    return instance_from_payload(payload, schema)


# ----------------------------------------------------------------------
# Source-delta codec (repro.io/delta/v1)
# ----------------------------------------------------------------------

#: Version tag of the delta payloads consumed by ``repro.incremental``.
DELTA_SCHEMA = "repro.io/delta/v1"


def delta_to_payload(insertions: Instance, deletions: Instance) -> dict:
    """A source delta as a JSON-serializable dict (``repro.io/delta/v1``).

    Both halves are full ``repro.io/v1`` instance payloads, so typed
    cells (and hence constants named like null literals) survive.
    """
    return {
        "schema": DELTA_SCHEMA,
        "insert": instance_to_payload(insertions),
        "delete": instance_to_payload(deletions),
    }


def delta_from_payload(payload: dict, schema: Optional[Schema] = None):
    """Rebuild ``(insertions, deletions)`` from :func:`delta_to_payload`."""
    if not isinstance(payload, dict):
        raise ReproError(f"delta payload must be an object, got {payload!r}")
    version = payload.get("schema")
    if version != DELTA_SCHEMA:
        raise ReproError(
            f"unsupported delta payload schema {version!r} "
            f"(expected {DELTA_SCHEMA!r})"
        )
    insertions = instance_from_payload(payload.get("insert"), schema)
    deletions = instance_from_payload(payload.get("delete"), schema)
    return insertions, deletions


def dumps_delta(
    insertions: Instance,
    deletions: Instance,
    *,
    indent: Optional[int] = None,
) -> str:
    """Serialize a source delta to versioned JSON (deterministic)."""
    return json.dumps(
        delta_to_payload(insertions, deletions), indent=indent, sort_keys=True
    )


def loads_delta(text: str, schema: Optional[Schema] = None):
    """Inverse of :func:`dumps_delta`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid delta JSON: {error}") from None
    return delta_from_payload(payload, schema)


def roundtrip_safe(instance: Instance) -> bool:
    """True if every constant survives the CSV round trip unchanged.

    Constants whose name *looks like* a null literal (``_:3``) or that
    carry leading/trailing whitespace would be re-read differently;
    :func:`dump_instance` callers can check this first.  The JSON codec
    (:func:`dumps_instance`) has no such unsafe constants -- its cells
    are typed.
    """
    for value in instance.active_domain():
        if isinstance(value, Const):
            if NULL_PATTERN.match(value.name):
                return False
            if value.name != value.name.strip():
                return False
    return True
