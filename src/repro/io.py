"""Loading and saving instances as CSV directories.

A practical data exchange tool needs to ingest real tables.  This module
maps a directory of CSV files to an :class:`Instance` and back:

* one file per relation, named ``<Relation>.csv``;
* every cell is a constant, except cells of the form ``_:<int>`` which
  denote labeled nulls (the Turtle-ish blank-node convention), e.g.
  ``_:3`` is ``Null(3)`` -- so target instances with incomplete data
  round-trip;
* an optional header row is skipped when it matches the relation's
  column names ``col1, col2, ...`` (written by :func:`dump_instance`).

The reader validates arities against a schema when one is given, and
infers relation symbols from the data otherwise.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import List, Optional, Union

from .core.atoms import Atom
from .core.errors import ReproError, SchemaError
from .core.instance import Instance
from .core.schema import RelationSymbol, Schema
from .core.terms import Const, Null, Value

NULL_PATTERN = re.compile(r"^_:(\d+)$")
PathLike = Union[str, Path]


def parse_cell(text: str) -> Value:
    """``"_:<n>"`` becomes a null; anything else a constant."""
    matched = NULL_PATTERN.match(text.strip())
    if matched:
        return Null(int(matched.group(1)))
    return Const(text.strip())


def format_cell(value: Value) -> str:
    """Inverse of :func:`parse_cell`."""
    if isinstance(value, Null):
        return f"_:{value.ident}"
    return value.name


def _header_for(arity: int) -> List[str]:
    return [f"col{i + 1}" for i in range(arity)]


def load_relation(
    path: PathLike,
    relation: Optional[RelationSymbol] = None,
    name: Optional[str] = None,
) -> List[Atom]:
    """Read one CSV file into atoms.

    The relation symbol is taken from ``relation``, or built from
    ``name`` (default: the file stem) and the observed column count.
    """
    path = Path(path)
    relation_name = name or (relation.name if relation else path.stem)
    atoms: List[Atom] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row or all(not cell.strip() for cell in row):
                continue
            if relation is None:
                relation = RelationSymbol(relation_name, len(row))
            if len(row) != relation.arity:
                raise SchemaError(
                    f"{path.name}:{row_number + 1}: expected "
                    f"{relation.arity} columns, got {len(row)}"
                )
            if row_number == 0 and [
                cell.strip() for cell in row
            ] == _header_for(relation.arity):
                continue  # generated header
            atoms.append(Atom(relation, tuple(parse_cell(cell) for cell in row)))
    return atoms


def load_instance(
    directory: PathLike, schema: Optional[Schema] = None
) -> Instance:
    """Read every ``*.csv`` in a directory into one instance.

    With a schema, file stems must name schema relations and arities are
    validated; without one, relations are inferred per file.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ReproError(f"{directory} is not a directory")
    instance = Instance()
    found = sorted(directory.glob("*.csv"))
    if not found:
        raise ReproError(f"no .csv files in {directory}")
    for path in found:
        relation: Optional[RelationSymbol] = None
        if schema is not None:
            relation = schema.get(path.stem)
            if relation is None:
                raise SchemaError(
                    f"{path.name}: relation {path.stem!r} is not in the schema"
                )
        instance.add_all(load_relation(path, relation))
    return instance


def dump_instance(
    instance: Instance,
    directory: PathLike,
    *,
    header: bool = True,
) -> List[Path]:
    """Write an instance as one CSV per relation; returns written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in instance.relation_names():
        atoms = sorted(instance.atoms_of(name))
        path = directory / f"{name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            if header and atoms:
                writer.writerow(_header_for(atoms[0].relation.arity))
            for atom in atoms:
                writer.writerow([format_cell(value) for value in atom.args])
        written.append(path)
    return written


def roundtrip_safe(instance: Instance) -> bool:
    """True if every constant survives the CSV round trip unchanged.

    Constants whose name *looks like* a null literal (``_:3``) or that
    carry leading/trailing whitespace would be re-read differently;
    :func:`dump_instance` callers can check this first.
    """
    for value in instance.active_domain():
        if isinstance(value, Const):
            if NULL_PATTERN.match(value.name):
                return False
            if value.name != value.name.strip():
                return False
    return True
