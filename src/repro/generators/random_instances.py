"""Synthetic workload generators.

The paper has no empirical section, so every benchmark instance is
synthetic; these generators produce the scalable families used by the
benchmark harness (see DESIGN.md §2) and by the property-based tests.

All generators take an explicit ``random.Random`` seed or instance so
benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Const
from ..exchange.setting import DataExchangeSetting

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_source_instance(
    schema: Schema,
    domain_size: int,
    atoms_per_relation: int,
    seed: RandomLike = 0,
) -> Instance:
    """A random ground instance over ``schema``.

    Values are drawn uniformly from ``{c0, ..., c(domain_size-1)}``.
    """
    rng = _rng(seed)
    domain = [Const(f"c{i}") for i in range(domain_size)]
    instance = Instance()
    for relation in schema:
        for _ in range(atoms_per_relation):
            args = tuple(rng.choice(domain) for _ in range(relation.arity))
            instance.add(Atom(relation, args))
    return instance


def random_graph_instance(
    nodes: int,
    edges: int,
    seed: RandomLike = 0,
    edge_name: str = "E",
    label_name: Optional[str] = "P",
    labeled_fraction: float = 0.2,
) -> Instance:
    """A random directed graph with an optional unary label relation."""
    rng = _rng(seed)
    edge_relation = RelationSymbol(edge_name, 2)
    instance = Instance()
    names = [Const(f"v{i}") for i in range(nodes)]
    for _ in range(edges):
        left, right = rng.choice(names), rng.choice(names)
        instance.add(Atom(edge_relation, (left, right)))
    if label_name is not None:
        label_relation = RelationSymbol(label_name, 1)
        for name in names:
            if rng.random() < labeled_fraction:
                instance.add(Atom(label_relation, (name,)))
    return instance


def cycle_instance(
    length: int,
    prefix: str,
    edge_name: str = "E",
    labeled: Sequence[int] = (),
    label_name: str = "P",
) -> Instance:
    """A directed cycle ``prefix0 → prefix1 → ... → prefix0``.

    Used by the Section 3 anomaly: the paper's S* is the disjoint union
    of two 9-cycles with one P-labeled node.
    """
    edge_relation = RelationSymbol(edge_name, 2)
    label_relation = RelationSymbol(label_name, 1)
    instance = Instance()
    names = [Const(f"{prefix}{i}") for i in range(length)]
    for index in range(length):
        instance.add(
            Atom(edge_relation, (names[index], names[(index + 1) % length]))
        )
    for index in labeled:
        instance.add(Atom(label_relation, (names[index],)))
    return instance


def section_3_source(cycle_length: int = 9) -> Instance:
    """The paper's S*: two disjoint cycles, a₄ labeled P (Section 3)."""
    left = cycle_instance(cycle_length, "a", labeled=(4,))
    right = cycle_instance(cycle_length, "b")
    return left.union(right)


def employee_source(
    employees: int,
    departments: int,
    seed: RandomLike = 0,
) -> Instance:
    """Employees assigned to departments -- workload for egd settings."""
    rng = _rng(seed)
    relation = RelationSymbol("Emp", 2)
    instance = Instance()
    for index in range(employees):
        dept = rng.randrange(departments)
        instance.add(
            Atom(relation, (Const(f"e{index}"), Const(f"d{dept}")))
        )
    return instance


def chain_setting(length: int) -> DataExchangeSetting:
    """A weakly acyclic setting whose chase cascades through ``length``
    target relations: ``R0 → R1 → ... → R_length`` with one fresh null
    per hop.  Scales chase depth for the existence benchmark."""
    sigma = Schema.of(R0=2)
    target_relations = {f"R{i}": 2 for i in range(1, length + 1)}
    tau = Schema.from_mapping(target_relations)
    st = ["R0(x, y) -> exists z . R1(y, z)"]
    tdeps = [
        f"R{i}(x, y) -> exists z . R{i + 1}(y, z)"
        for i in range(1, length)
    ]
    return DataExchangeSetting.from_strings(sigma, tau, st, tdeps)


def chain_source(atoms: int) -> Instance:
    """A path of the given length over R0 for :func:`chain_setting`."""
    relation = RelationSymbol("R0", 2)
    instance = Instance()
    for index in range(atoms):
        instance.add(
            Atom(relation, (Const(f"u{index}"), Const(f"u{index + 1}")))
        )
    return instance


def star_source(rays: int, relation_name: str = "N") -> Instance:
    """``{N(hub, leaf_i)}`` -- drives settings like Example 2.1's d₂."""
    relation = RelationSymbol(relation_name, 2)
    instance = Instance()
    hub = Const("hub")
    for index in range(rays):
        instance.add(Atom(relation, (hub, Const(f"leaf{index}"))))
    return instance


def example_2_1_scaled_source(pairs: int, seed: RandomLike = 0) -> Instance:
    """A scaled version of Example 2.1's source: ``pairs`` rows in M and
    2·``pairs`` rows in N over a proportional constant pool."""
    rng = _rng(seed)
    m_relation = RelationSymbol("M", 2)
    n_relation = RelationSymbol("N", 2)
    pool = [Const(f"c{i}") for i in range(max(2, pairs))]
    instance = Instance()
    for _ in range(pairs):
        instance.add(Atom(m_relation, (rng.choice(pool), rng.choice(pool))))
    for _ in range(2 * pairs):
        instance.add(Atom(n_relation, (rng.choice(pool), rng.choice(pool))))
    return instance


def disjoint_scaled_sources(
    copies: int, pairs: int, seed: RandomLike = 0
) -> Instance:
    """A disjoint union of ``copies`` scaled Example 2.1 sources.

    Each copy draws its constants from its own prefixed pool
    (``s<k>_c<i>``), so the union has exactly ``copies`` value-connected
    components (assuming each copy is itself connected, which holds for
    the dense M/N families at these sizes).  This is the shardable
    workload of the partitioned chase / partitioned core benchmarks:
    identical in shape to the Example 2.1 family, but decomposable.
    """
    rng = _rng(seed)
    union = Instance()
    for index in range(copies):
        copy = example_2_1_scaled_source(pairs, seed=rng.randint(0, 10**9))
        renaming = {
            value: Const(f"s{index}_{value.name}")
            for value in copy.active_domain()
        }
        union.add_all(copy.rename_values(renaming))
    return union
