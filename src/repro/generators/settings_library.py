"""The paper's named settings and instances, ready to use.

Each function returns exactly the object defined in the paper, so tests
and examples can refer to "Example 2.1" and get the real thing.
"""

from __future__ import annotations

from typing import Tuple

from ..core.instance import Instance
from ..core.schema import Schema
from ..exchange.setting import DataExchangeSetting
from ..logic.parser import parse_instance


def example_2_1_setting() -> DataExchangeSetting:
    """Example 2.1: ``σ = {M, N}``, ``τ = {E, F, G}`` and

    * d₁ = ``M(x₁,x₂) → E(x₁,x₂)``
    * d₂ = ``N(x,y) → ∃z₁,z₂ (E(x,z₁) ∧ F(x,z₂))``
    * d₃ = ``F(y,x) → ∃z G(x,z)``
    * d₄ = ``F(x,y) ∧ F(x,z) → y = z``
    """
    sigma = Schema.of(M=2, N=2)
    tau = Schema.of(E=2, F=2, G=2)
    setting = DataExchangeSetting.from_strings(
        sigma,
        tau,
        [
            "M(x1,x2) -> E(x1,x2)",
            "N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)",
        ],
        [
            "F(y,x) -> exists z . G(x,z)",
            "F(x,y) & F(x,z) -> y = z",
        ],
    )
    setting.st_dependencies[0].name = "d1"
    setting.st_dependencies[1].name = "d2"
    setting.target_dependencies[0].name = "d3"
    setting.target_dependencies[1].name = "d4"
    return setting


def example_2_1_source() -> Instance:
    """``S* = {M(a,b), N(a,b), N(a,c)}``."""
    return parse_instance("M('a','b'), N('a','b'), N('a','c')")


def example_2_1_solutions() -> Tuple[Instance, Instance, Instance]:
    """The paper's T₁, T₂, T₃ (T₂, T₃ universal; T₁ not)."""
    t1 = parse_instance(
        "E('a','b'), E('a',#1), E('c',#2), F('a','d'), G('d',#3)"
    )
    t2 = parse_instance(
        "E('a','b'), E('a',#1), E('a',#2), F('a',#3), G(#3,#4)"
    )
    t3 = parse_instance("E('a','b'), F('a',#1), G(#1,#2)")
    return t1, t2, t3


def example_4_9_non_solutions() -> Tuple[Instance, Instance]:
    """Example 4.9's T' (presolution, not universal) and T'' (universal,
    not a presolution).

    The conference text prints T'' as {E(a,b), E(⊥₃,b), F(b,⊥₁),
    G(⊥₁,⊥₂)}; the F-atom must read F(a,⊥₁) for T'' to satisfy d₂ at
    all (N(a,·) forces F(a, z₂)), so we use the corrected instance.
    """
    t_prime = parse_instance("E('a','b'), F('a',#1), G(#1,'b')")
    t_double_prime = parse_instance(
        "E('a','b'), E(#3,'b'), F('a',#1), G(#1,#2)"
    )
    return t_prime, t_double_prime


def example_5_3_setting() -> DataExchangeSetting:
    """Example 5.3: exponentially many incomparable CWA-solutions.

    * d₁ = ``P(x) → ∃z₁,z₂,z₃,z₄ (E(x,z₁,z₃) ∧ E(x,z₂,z₄))``
    * d₂ = ``E(x,x₁,y) ∧ E(x,x₂,y) → F(x,x₁,x₂)``
    """
    sigma = Schema.of(P=1)
    tau = Schema.of(E=3, F=3)
    setting = DataExchangeSetting.from_strings(
        sigma,
        tau,
        ["P(x) -> exists z1, z2, z3, z4 . E(x,z1,z3) & E(x,z2,z4)"],
        ["E(x,x1,y) & E(x,x2,y) -> F(x,x1,x2)"],
    )
    setting.st_dependencies[0].name = "d1"
    setting.target_dependencies[0].name = "d2"
    return setting


def example_5_3_source(n: int = 1) -> Instance:
    """``S_n = {P(1), ..., P(n)}``."""
    instance = Instance()
    schema = Schema.of(P=1)
    for index in range(1, n + 1):
        instance.add_all(parse_instance(f"P({index})", schema))
    return instance


def example_5_3_named_solutions() -> Tuple[Instance, Instance]:
    """The paper's T (with z₃ ≠ z₄) and T' (with z₃ = z₄) for S = {P(1)}.

    T  = {E(1,⊥₁,⊥₃), E(1,⊥₂,⊥₄), F(1,⊥₁,⊥₁), F(1,⊥₂,⊥₂)}
    T' = {E(1,⊥₁,⊥₃), E(1,⊥₂,⊥₃), F(1,⊥₁,⊥₁), F(1,⊥₂,⊥₂),
          F(1,⊥₁,⊥₂), F(1,⊥₂,⊥₁)}
    """
    t = parse_instance(
        "E(1,#1,#3), E(1,#2,#4), F(1,#1,#1), F(1,#2,#2)"
    )
    t_prime = parse_instance(
        "E(1,#1,#3), E(1,#2,#3), F(1,#1,#1), F(1,#2,#2), "
        "F(1,#1,#2), F(1,#2,#1)"
    )
    return t, t_prime


def egd_only_setting() -> DataExchangeSetting:
    """A small setting whose target dependencies are egds only -- the
    first restricted class of Proposition 5.4 (row 3 of Table 1)."""
    sigma = Schema.of(Emp=2)
    tau = Schema.of(Dept=2)
    return DataExchangeSetting.from_strings(
        sigma,
        tau,
        ["Emp(e, d) -> exists m . Dept(d, m)"],
        ["Dept(d, m1) & Dept(d, m2) -> m1 = m2"],
    )


def full_tgd_setting() -> DataExchangeSetting:
    """A setting with full tgds and egds only -- the second restricted
    class of Proposition 5.4 (row 4 of Table 1).  Computes reachability
    (transitive closure), the canonical PTIME-complete flavour."""
    sigma = Schema.of(Edge=2, Start=1)
    tau = Schema.of(Reach=1, Link=2)
    return DataExchangeSetting.from_strings(
        sigma,
        tau,
        ["Edge(x, y) -> Link(x, y)", "Start(x) -> Reach(x)"],
        ["Reach(x) & Link(x, y) -> Reach(y)"],
    )
