"""Random data exchange settings with guaranteed acyclicity classes.

Property-based tests want *many* settings, not just the paper's named
ones.  The generator below builds settings that are weakly acyclic (and
optionally richly acyclic) **by construction**: target relations are
arranged in levels, and every target tgd's conclusion relation sits on a
strictly higher level than its premise relations, so the dependency
graph is a DAG levelwise and no existential edge can lie on a cycle.

Egds are drawn as key constraints on random target relations; full tgds
may point anywhere (they add no existential edges).
"""

from __future__ import annotations

import random
from typing import List, Union

from ..core.schema import Schema
from ..exchange.setting import DataExchangeSetting

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_weakly_acyclic_setting(
    seed: RandomLike = 0,
    *,
    source_relations: int = 2,
    levels: int = 3,
    relations_per_level: int = 2,
    tgds_per_level: int = 2,
    egd_probability: float = 0.5,
    richly_acyclic_only: bool = False,
) -> DataExchangeSetting:
    """A random setting, weakly acyclic by construction.

    ``richly_acyclic_only=True`` additionally forces every existential
    target tgd to use all its premise variables in the conclusion (no
    premise-only variables feeding existentials), which removes the
    extended graph's extra edges level-internally; combined with the
    level discipline this yields rich acyclicity.
    """
    rng = _rng(seed)
    sigma = Schema.from_mapping(
        {f"S{i}": 2 for i in range(source_relations)}
    )
    target_names: List[List[str]] = [
        [f"T{level}_{i}" for i in range(relations_per_level)]
        for level in range(levels)
    ]
    flat_targets = [name for level in target_names for name in level]
    tau = Schema.from_mapping({name: 2 for name in flat_targets})

    st_lines: List[str] = []
    for i in range(source_relations):
        destination = rng.choice(target_names[0])
        if rng.random() < 0.5:
            st_lines.append(f"S{i}(x, y) -> {destination}(x, y)")
        else:
            st_lines.append(f"S{i}(x, y) -> exists z . {destination}(x, z)")

    target_lines: List[str] = []
    for level in range(1, levels):
        below = [name for l in target_names[:level] for name in l]
        for _ in range(tgds_per_level):
            premise = rng.choice(below)
            conclusion = rng.choice(target_names[level])
            shape = rng.randrange(3)
            if shape == 0:  # full tgd
                target_lines.append(f"{premise}(x, y) -> {conclusion}(y, x)")
            elif shape == 1 or richly_acyclic_only:
                # Existential with the full frontier (richly acyclic safe).
                target_lines.append(
                    f"{premise}(x, y) -> exists z . {conclusion}(y, z)"
                )
            else:
                # Premise-only variable feeding an existential: still
                # weakly acyclic levelwise, but not richly acyclic in
                # general.
                target_lines.append(
                    f"{premise}(x, y) -> exists z . {conclusion}(x, z)"
                )
    for name in flat_targets:
        if rng.random() < egd_probability:
            target_lines.append(f"{name}(x, y) & {name}(x, z) -> y = z")

    setting = DataExchangeSetting.from_strings(
        sigma, tau, st_lines, target_lines
    )
    assert setting.is_weakly_acyclic  # by construction
    if richly_acyclic_only:
        assert setting.is_richly_acyclic
    return setting


def random_source_for(
    setting: DataExchangeSetting,
    seed: RandomLike = 0,
    *,
    atoms_per_relation: int = 3,
    domain_size: int = 4,
):
    """A random source instance matching a generated setting's σ."""
    from .random_instances import random_source_instance

    return random_source_instance(
        setting.source_schema, domain_size, atoms_per_relation, seed=seed
    )
