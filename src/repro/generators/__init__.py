"""Workload generators and the paper's named settings."""

from .random_instances import (
    chain_setting,
    chain_source,
    cycle_instance,
    disjoint_scaled_sources,
    employee_source,
    example_2_1_scaled_source,
    random_graph_instance,
    random_source_instance,
    section_3_source,
    star_source,
)
from .random_settings import random_source_for, random_weakly_acyclic_setting
from .settings_library import (
    egd_only_setting,
    example_2_1_setting,
    example_2_1_solutions,
    example_2_1_source,
    example_4_9_non_solutions,
    example_5_3_named_solutions,
    example_5_3_setting,
    example_5_3_source,
    full_tgd_setting,
)

__all__ = [
    "chain_setting",
    "chain_source",
    "cycle_instance",
    "disjoint_scaled_sources",
    "egd_only_setting",
    "employee_source",
    "example_2_1_scaled_source",
    "example_2_1_setting",
    "example_2_1_solutions",
    "example_2_1_source",
    "example_4_9_non_solutions",
    "example_5_3_named_solutions",
    "example_5_3_setting",
    "example_5_3_source",
    "full_tgd_setting",
    "random_graph_instance",
    "random_source_for",
    "random_weakly_acyclic_setting",
    "random_source_instance",
    "section_3_source",
    "star_source",
]
