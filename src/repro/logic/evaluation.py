"""Active-domain evaluation of first-order formulas on instances.

Quantifiers range over the active domain of the instance together with the
constants mentioned by the formula.  This matches the paper's convention
(footnote 2 relativizes quantifiers to the active domain) and is the
standard safe semantics for query answering over finite instances.

Nulls are treated as ordinary domain elements here: a null equals itself
and nothing else.  This "naive" reading is exactly what the definitions of
the paper need -- e.g. an instance satisfies an egd iff the egd holds in
the σ∪τ-structure whose universe is ``Dom(I)``, with each null a separate
element; and ``Q(T)`` in Section 7 is the naive evaluation on T, from
which e.g. Lemma 7.7 keeps only null-free tuples.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Value, Variable
from .formulas import (
    And,
    Equality,
    Exists,
    Falsity,
    Forall,
    Formula,
    Not,
    Or,
    RelationalAtom,
    Truth,
)

Assignment = Dict[Variable, Value]


def evaluation_domain(instance: Instance, formula: Formula) -> FrozenSet[Value]:
    """The domain quantifiers range over: active domain plus the formula's
    own constants (so sentences about constants absent from the instance
    still evaluate sensibly)."""
    return instance.active_domain() | formula.constants()


def _resolve(term, assignment: Assignment) -> Value:
    if isinstance(term, Value):
        return term
    try:
        return assignment[term]
    except KeyError:
        raise ValueError(
            f"free variable {term} has no assignment; pass it in `assignment`"
        ) from None


def holds(
    formula: Formula,
    instance: Instance,
    assignment: Optional[Assignment] = None,
    domain: Optional[FrozenSet[Value]] = None,
) -> bool:
    """Decide ``I ⊨ φ[assignment]`` with active-domain quantification.

    >>> from repro.core import Schema, atom, Instance, var
    >>> from repro.logic.formulas import RelationalAtom, Exists, Atom
    >>> tau = Schema.of(E=2)
    >>> inst = Instance([atom(tau["E"], "a", "b")])
    >>> x = var("x")
    >>> phi = Exists((x,), RelationalAtom(Atom(tau["E"], (x, x))))
    >>> holds(phi, inst)
    False
    """
    assignment = dict(assignment or {})
    if domain is None:
        domain = evaluation_domain(instance, formula)
    return _holds(formula, instance, assignment, sorted(domain))


def _holds(
    formula: Formula,
    instance: Instance,
    assignment: Assignment,
    domain: Sequence[Value],
) -> bool:
    if isinstance(formula, Truth):
        return True
    if isinstance(formula, Falsity):
        return False
    if isinstance(formula, RelationalAtom):
        args = tuple(_resolve(arg, assignment) for arg in formula.atom.args)
        return Atom(formula.atom.relation, args) in instance
    if isinstance(formula, Equality):
        return _resolve(formula.left, assignment) == _resolve(
            formula.right, assignment
        )
    if isinstance(formula, Not):
        return not _holds(formula.body, instance, assignment, domain)
    if isinstance(formula, And):
        return all(
            _holds(part, instance, assignment, domain) for part in formula.parts
        )
    if isinstance(formula, Or):
        return any(
            _holds(part, instance, assignment, domain) for part in formula.parts
        )
    if isinstance(formula, Exists):
        fast = _exists_via_matcher(formula, instance, assignment)
        if fast is not None:
            return fast
        return any(
            _holds(formula.body, instance, extended, domain)
            for extended in _extensions(assignment, formula.variables, domain)
        )
    if isinstance(formula, Forall):
        return all(
            _holds(formula.body, instance, extended, domain)
            for extended in _extensions(assignment, formula.variables, domain)
        )
    raise TypeError(f"cannot evaluate formula of type {type(formula).__name__}")


def _exists_via_matcher(
    formula: Exists, instance: Instance, assignment: Assignment
) -> Optional[bool]:
    """Fast path for ∃x̄ (conjunction of atoms and (in)equalities).

    The brute-force evaluator enumerates |domain|^|x̄| assignments; for
    the existential-conjunctive fragment (which covers every CQ-shaped
    subformula, e.g. the disjuncts of a UCQ embedded in a bigger FO
    query) the indexed backtracking matcher decides the same question in
    join time.  Returns None when the body falls outside the fragment.

    Note the fragment is evaluated with *unrestricted* matching, which
    agrees with active-domain semantics because witnesses of relational
    atoms are always active-domain values, and pure (in)equality
    conjuncts never make an inactive witness necessary: equalities pin
    variables to terms and inequalities are monotone under renaming
    inactive witnesses to other values -- except for variables
    constrained ONLY by (in)equalities, for which we bail out (return
    None) to stay exactly active-domain.
    """
    body = formula.body
    parts = body.parts if isinstance(body, And) else (body,)
    atoms = []
    equalities = []
    inequalities = []
    for part in parts:
        if isinstance(part, RelationalAtom):
            atoms.append(part.atom)
        elif isinstance(part, Equality):
            equalities.append((part.left, part.right))
        elif isinstance(part, Not) and isinstance(part.body, Equality):
            inequalities.append((part.body.left, part.body.right))
        else:
            return None

    # Every quantified variable must occur in a relational atom;
    # otherwise active-domain quantification differs from matching.
    covered = set()
    for atom in atoms:
        covered |= atom.variables
    if any(variable not in covered for variable in formula.variables):
        return None

    from .matching import exists_match
    from ..core.atoms import Substitution

    # Pre-bind the free variables from the ambient assignment.
    free = body.free_variables() - frozenset(formula.variables)
    try:
        initial = Substitution({v: assignment[v] for v in free})
    except KeyError:
        return None

    # Equalities become substitutions; to keep this simple we only
    # handle equalities where at least one side resolves already.
    extra = {}
    for left, right in equalities:
        left_value = left if isinstance(left, Value) else (
            assignment.get(left) or extra.get(left)
        )
        right_value = right if isinstance(right, Value) else (
            assignment.get(right) or extra.get(right)
        )
        if left_value is None and right_value is None:
            return None
        if left_value is None:
            extra[left] = right_value
        elif right_value is None:
            extra[right] = left_value
        elif left_value != right_value:
            return False
    if extra:
        initial = initial.extend_many(extra.items())

    return exists_match(
        atoms, instance, initial=initial, inequalities=inequalities
    )


def _extensions(
    assignment: Assignment,
    variables: Tuple[Variable, ...],
    domain: Sequence[Value],
) -> Iterator[Assignment]:
    """All extensions of ``assignment`` mapping ``variables`` into ``domain``."""
    if not variables:
        yield assignment
        return
    head, tail = variables[0], variables[1:]
    for value in domain:
        extended = dict(assignment)
        extended[head] = value
        yield from _extensions(extended, tail, domain)


def satisfying_assignments(
    formula: Formula,
    instance: Instance,
    free: Sequence[Variable],
    domain: Optional[FrozenSet[Value]] = None,
) -> Iterator[Tuple[Value, ...]]:
    """Enumerate all tuples ``ū`` over the domain with ``I ⊨ φ[ū]``.

    This is brute-force FO evaluation -- exponential in ``len(free)`` plus
    the quantifier depth -- and is only used for general FO queries
    (Proposition 7.4), where no better data complexity is possible.
    Conjunctive queries take the indexed fast path in
    :mod:`repro.logic.queries` instead.
    """
    if domain is None:
        domain = evaluation_domain(instance, formula)
    ordered = sorted(domain)
    for extended in _extensions({}, tuple(free), ordered):
        if _holds(formula, instance, extended, ordered):
            yield tuple(extended[v] for v in free)
