"""A small text DSL for terms, atoms, instances, formulas, and queries.

The DSL keeps examples, tests and benchmarks close to the paper's notation:

* **variables** are bare identifiers: ``x``, ``y1``, ``pos``;
* **constants** are quoted (``'a'``, ``"blank"``) or numeric (``0``, ``42``);
* **nulls** are written ``#3`` (the null with identifier 3);
* **atoms**: ``E(x, 'a')``;
* **tgds**: ``M(x,y) -> E(x,y)`` and
  ``N(x,y) -> exists z1, z2 . E(x,z1) & F(x,z2)``;
* **egds**: ``F(x,y) & F(x,z) -> y = z``;
* **conjunctive queries**: ``Q(x) :- E(x,y), F(y,z), y != z``; disjuncts of
  a UCQ are separated by ``;``;
* **first-order formulas**: connectives ``&``, ``|``, ``~``, ``->``,
  quantifiers ``exists x, y . φ`` and ``forall x . φ``, comparisons ``=``
  and ``!=``.

Dependency parsing lives in :mod:`repro.dependencies`; this module exposes
the shared tokenizer and the formula/query/instance grammar.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..core.atoms import Atom
from ..core.errors import ParseError
from ..core.instance import Instance
from ..core.schema import RelationSymbol, Schema
from ..core.terms import Const, Null, Term, Variable
from .formulas import (
    Equality,
    Exists,
    Falsity,
    Forall,
    Formula,
    Not,
    Or,
    RelationalAtom,
    Truth,
    conjunction,
    disjunction,
)
from .queries import ConjunctiveQuery, FirstOrderQuery, Query, UnionOfConjunctiveQueries

_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("ARROW", r"->"),
    ("DEFINE", r":="),
    ("RULE", r":-"),
    ("NEQ", r"!=|≠"),
    ("EQ", r"="),
    ("AND", r"&|∧"),
    ("OR", r"∨|\|"),
    ("NOT", r"~|¬"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("SEMI", r";"),
    ("NULL", r"#\d+"),
    ("NUMBER", r"\d+"),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {
    "exists": "EXISTS",
    "forall": "FORALL",
    "not": "NOT",
    "and": "AND",
    "or": "OR",
    "true": "TRUE",
    "false": "FALSE",
}


class Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into tokens, raising :class:`ParseError` on garbage."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        matched = _TOKEN_RE.match(text, position)
        if matched is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", text, position
            )
        kind = matched.lastgroup
        lexeme = matched.group()
        if kind != "WS":
            if kind == "IDENT" and lexeme.lower() in _KEYWORDS:
                kind = _KEYWORDS[lexeme.lower()]
            tokens.append(Token(kind, lexeme, position))
        position = matched.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, text: str, schema: Optional[Schema] = None):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self.schema = schema

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                self.text,
                token.position,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def require_end(self) -> None:
        token = self.peek()
        if token.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {token.text!r}",
                self.text,
                token.position,
            )

    # -- terms and atoms -------------------------------------------------

    def parse_term(self) -> Term:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return Const(token.text)
        if token.kind == "STRING":
            self.advance()
            return Const(token.text[1:-1])
        if token.kind == "NULL":
            self.advance()
            return Null(int(token.text[1:]))
        if token.kind == "IDENT":
            self.advance()
            return Variable(token.text)
        raise ParseError(
            f"expected a term, found {token.text!r}", self.text, token.position
        )

    def relation_symbol(self, name: str, arity: int, position: int) -> RelationSymbol:
        if self.schema is not None:
            symbol = self.schema.get(name)
            if symbol is None:
                raise ParseError(
                    f"relation {name!r} is not in the schema", self.text, position
                )
            if symbol.arity != arity:
                raise ParseError(
                    f"relation {name} has arity {symbol.arity}, used with {arity}",
                    self.text,
                    position,
                )
            return symbol
        return RelationSymbol(name, arity)

    def parse_atom(self) -> Atom:
        name_token = self.expect("IDENT")
        self.expect("LPAREN")
        args: List[Term] = []
        if self.peek().kind != "RPAREN":
            args.append(self.parse_term())
            while self.accept("COMMA"):
                args.append(self.parse_term())
        self.expect("RPAREN")
        relation = self.relation_symbol(
            name_token.text, len(args), name_token.position
        )
        return Atom(relation, args)

    # -- formulas ---------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self.parse_implication()

    def parse_implication(self) -> Formula:
        left = self.parse_disjunction()
        if self.accept("ARROW"):
            right = self.parse_implication()  # right associative
            return Or((Not(left), right))
        return left

    def parse_disjunction(self) -> Formula:
        parts = [self.parse_conjunction()]
        while self.accept("OR"):
            parts.append(self.parse_conjunction())
        return parts[0] if len(parts) == 1 else disjunction(parts)

    def parse_conjunction(self) -> Formula:
        parts = [self.parse_unary()]
        while self.accept("AND"):
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else conjunction(parts)

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token.kind == "NOT":
            self.advance()
            return Not(self.parse_unary())
        if token.kind in ("EXISTS", "FORALL"):
            self.advance()
            variables = [self._quantified_variable()]
            while self.accept("COMMA"):
                variables.append(self._quantified_variable())
            self.expect("DOT")
            body = self.parse_implication()
            cls = Exists if token.kind == "EXISTS" else Forall
            return cls(tuple(variables), body)
        if token.kind == "TRUE":
            self.advance()
            return Truth()
        if token.kind == "FALSE":
            self.advance()
            return Falsity()
        if token.kind == "LPAREN":
            self.advance()
            inner = self.parse_implication()
            self.expect("RPAREN")
            return inner
        return self.parse_comparison_or_atom()

    def _quantified_variable(self) -> Variable:
        token = self.expect("IDENT")
        return Variable(token.text)

    def parse_comparison_or_atom(self) -> Formula:
        # Relational atom: IDENT followed by '('.
        token = self.peek()
        if (
            token.kind == "IDENT"
            and self.tokens[self.index + 1].kind == "LPAREN"
        ):
            return RelationalAtom(self.parse_atom())
        left = self.parse_term()
        operator = self.peek()
        if operator.kind == "EQ":
            self.advance()
            return Equality(left, self.parse_term())
        if operator.kind == "NEQ":
            self.advance()
            return Not(Equality(left, self.parse_term()))
        raise ParseError(
            f"expected '=' or '!=' after term, found {operator.text!r}",
            self.text,
            operator.position,
        )

    # -- conjunctive query bodies -----------------------------------------

    def parse_cq_body(self) -> Tuple[List[Atom], List[Tuple[Term, Term]]]:
        """A comma-separated list of atoms and inequalities/equalities."""
        atoms: List[Atom] = []
        inequalities: List[Tuple[Term, Term]] = []
        while True:
            token = self.peek()
            if (
                token.kind == "IDENT"
                and self.tokens[self.index + 1].kind == "LPAREN"
            ):
                atoms.append(self.parse_atom())
            else:
                left = self.parse_term()
                operator = self.advance()
                if operator.kind == "NEQ":
                    inequalities.append((left, self.parse_term()))
                else:
                    raise ParseError(
                        "conjunctive query bodies allow atoms and '!=' only",
                        self.text,
                        operator.position,
                    )
            if not self.accept("COMMA") and not self.accept("AND"):
                break
        return atoms, inequalities


def parse_formula(text: str, schema: Optional[Schema] = None) -> Formula:
    """Parse an FO formula, e.g. ``"forall x. P(x) -> exists y. E(x,y)"``."""
    parser = _Parser(text, schema)
    formula = parser.parse_formula()
    parser.require_end()
    return formula


def parse_atom(text: str, schema: Optional[Schema] = None) -> Atom:
    """Parse a single atom, e.g. ``"E(x, 'a')"``."""
    parser = _Parser(text, schema)
    result = parser.parse_atom()
    parser.require_end()
    return result


def parse_instance(text: str, schema: Optional[Schema] = None) -> Instance:
    """Parse a ground instance.

    Atoms are separated by commas, semicolons or newlines:

    >>> inst = parse_instance("M('a','b'), N('a','b'), N('a','c')")
    >>> len(inst)
    3
    """
    instance = Instance()
    normalized = re.sub(r"[\n;]+", ",", text.strip())
    normalized = re.sub(r"(,\s*)+", ", ", normalized).strip(", \t")
    if not normalized:
        return instance
    parser = _Parser(normalized, schema)
    while True:
        item = parser.parse_atom()
        if not item.is_ground:
            bad = sorted(item.variables, key=lambda v: v.name)[0]
            raise ParseError(
                f"instance atoms must be ground; {bad.name!r} is a variable "
                "(quote constants, e.g. 'a')",
                text,
            )
        instance.add(item)
        if parser.accept("COMMA"):
            if parser.at_end():  # tolerate a trailing comma
                break
            continue
        parser.require_end()
        break
    return instance


def parse_query(text: str, schema: Optional[Schema] = None) -> Query:
    """Parse a query.

    Three forms are accepted:

    * a CQ (with optional inequalities): ``"Q(x) :- E(x,y), y != x"``,
    * a UCQ, disjuncts separated by ``;``:
      ``"Q(x) :- E(x,y) ; Q(x) :- F(x,y)"``,
    * an FO query: ``"Q(x) := P(x) & ~exists y. E(x,y)"``.
    """
    pieces = [piece.strip() for piece in text.split(";") if piece.strip()]
    if not pieces:
        raise ParseError("empty query", text)
    if ":=" in pieces[0]:
        if len(pieces) != 1:
            raise ParseError("FO queries cannot be unioned with ';'", text)
        return _parse_fo_query(pieces[0], schema)
    disjuncts = [_parse_cq(piece, schema) for piece in pieces]
    if len(disjuncts) == 1:
        return disjuncts[0]
    return UnionOfConjunctiveQueries(disjuncts)


def _parse_head(parser: _Parser) -> Tuple[str, List[Variable]]:
    name_token = parser.expect("IDENT")
    parser.expect("LPAREN")
    head: List[Variable] = []
    if parser.peek().kind != "RPAREN":
        token = parser.expect("IDENT")
        head.append(Variable(token.text))
        while parser.accept("COMMA"):
            token = parser.expect("IDENT")
            head.append(Variable(token.text))
    parser.expect("RPAREN")
    return name_token.text, head


def _parse_cq(text: str, schema: Optional[Schema]) -> ConjunctiveQuery:
    parser = _Parser(text, schema)
    _, head = _parse_head(parser)
    parser.expect("RULE")
    atoms, inequalities = parser.parse_cq_body()
    parser.require_end()
    return ConjunctiveQuery(head, atoms, inequalities)


def _parse_fo_query(text: str, schema: Optional[Schema]) -> FirstOrderQuery:
    parser = _Parser(text, schema)
    _, head = _parse_head(parser)
    parser.expect("DEFINE")
    formula = parser.parse_formula()
    parser.require_end()
    return FirstOrderQuery(head, formula)
