"""Positive datalog: programs, semi-naive evaluation, certain answers.

Theorem 7.6 of the paper is stated for the class of *unions of
conjunctive queries* understood as **potentially infinite** disjunctions
-- "which in particular, comprises the class of datalog queries".  This
module makes that concrete: a positive datalog program is evaluated on a
CWA-solution by naive/semi-naive fixpoint, and since datalog queries are
preserved under homomorphisms, Lemma 7.7 applies verbatim:

    certain□(P, S) = certain◇(P, S) = P(T)↓   for any CWA-solution T,

where ``P(T)↓`` keeps the null-free tuples of the goal predicate.

Syntax (via :func:`parse_program`)::

    reach(x)    :- start(x).
    reach(y)    :- reach(x), edge(x, y).

Predicates that appear in rule heads are intensional (IDB); the others
are extensional (EDB) and are read from the instance.  Only positive
bodies are supported (no negation -- exactly the fragment the theorem
covers).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, Substitution
from ..core.errors import ParseError, UnsupportedQueryError
from ..core.instance import Instance
from ..core.terms import Value, Variable
from .matching import match
from .parser import _Parser


class Rule:
    """A datalog rule ``head :- body``.

    The head must be a single atom; every head variable must occur in
    the body (safety).
    """

    def __init__(self, head: Atom, body: Sequence[Atom]):
        self.head = head
        self.body: Tuple[Atom, ...] = tuple(body)
        if not self.body:
            raise UnsupportedQueryError(
                f"facts are read from the instance; rule {head!r} has no body"
            )
        body_variables: Set[Variable] = set()
        for atom in self.body:
            body_variables |= atom.variables
        unsafe = self.head.variables - body_variables
        if unsafe:
            name = sorted(unsafe, key=lambda v: v.name)[0]
            raise UnsupportedQueryError(
                f"unsafe rule: head variable {name} not bound in the body"
            )

    def __repr__(self) -> str:
        body = ", ".join(repr(atom) for atom in self.body)
        return f"{self.head!r} :- {body}"


class DatalogProgram:
    """A positive datalog program with a designated goal predicate."""

    def __init__(self, rules: Sequence[Rule], goal: str):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.goal = goal
        self.idb: FrozenSet[str] = frozenset(
            rule.head.relation.name for rule in self.rules
        )
        if goal not in self.idb and not any(
            atom.relation.name == goal
            for rule in self.rules
            for atom in rule.body
        ):
            raise UnsupportedQueryError(
                f"goal predicate {goal!r} does not occur in the program"
            )
        goal_arities = {
            rule.head.relation.arity
            for rule in self.rules
            if rule.head.relation.name == goal
        }
        self.goal_arity = goal_arities.pop() if goal_arities else next(
            atom.relation.arity
            for rule in self.rules
            for atom in rule.body
            if atom.relation.name == goal
        )

    @property
    def is_recursive(self) -> bool:
        """True if some IDB predicate (transitively) feeds itself."""
        edges: Dict[str, Set[str]] = {}
        for rule in self.rules:
            head = rule.head.relation.name
            for atom in rule.body:
                if atom.relation.name in self.idb:
                    edges.setdefault(head, set()).add(atom.relation.name)

        def reaches(start: str, goal: str, seen: Set[str]) -> bool:
            if start == goal and seen:
                return True
            for successor in edges.get(start, ()):
                if successor == goal:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    if reaches(successor, goal, seen):
                        return True
            return False

        return any(reaches(name, name, set()) for name in self.idb)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, instance: Instance) -> Instance:
        """The least fixpoint: EDB facts plus all derivable IDB facts.

        Semi-naive: per round, only matches touching the previous
        round's delta are completed.  Nulls are ordinary values (naive
        evaluation), as Lemma 7.7 requires.
        """
        database = instance.copy()
        delta: List[Atom] = list(database)
        while delta:
            new_delta: List[Atom] = []
            for rule in self.rules:
                # Materialize before inserting: the compiled matcher
                # iterates live index buckets, so the database must not
                # change under an open match generator.
                for derived in list(self._fire(rule, database, delta)):
                    if database.add(derived):
                        new_delta.append(derived)
            delta = new_delta
        return database

    def _fire(
        self, rule: Rule, database: Instance, delta: Sequence[Atom]
    ) -> Iterable[Atom]:
        seen: Set[Tuple[Value, ...]] = set()
        variables = sorted(
            {v for atom in rule.body for v in atom.variables},
            key=lambda v: v.name,
        )
        for seed_index, pattern in enumerate(rule.body):
            rest = rule.body[:seed_index] + rule.body[seed_index + 1 :]
            for fact in delta:
                bound = _unify(pattern, fact)
                if bound is None:
                    continue
                for completed in match(
                    rest, database, initial=Substitution(bound)
                ):
                    key = completed.as_tuple(variables)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield completed.apply(rule.head)

    def answers(self, instance: Instance) -> FrozenSet[Tuple[Value, ...]]:
        """Goal tuples over the least fixpoint (naive: nulls included)."""
        fixpoint = self.evaluate(instance)
        return frozenset(
            atom.args for atom in fixpoint.atoms_of(self.goal)
        )

    def certain_part(self, instance: Instance) -> FrozenSet[Tuple[Value, ...]]:
        """``P(I)↓``: the null-free goal tuples."""
        return frozenset(
            answer
            for answer in self.answers(instance)
            if all(value.is_constant for value in answer)
        )

    def __repr__(self) -> str:
        rules = "\n".join(repr(rule) for rule in self.rules)
        return f"-- goal: {self.goal}\n{rules}"


def _unify(pattern: Atom, fact: Atom) -> Optional[Dict[Variable, Value]]:
    if pattern.relation != fact.relation:
        return None
    bound: Dict[Variable, Value] = {}
    for pattern_arg, fact_arg in zip(pattern.args, fact.args):
        if isinstance(pattern_arg, Value):
            if pattern_arg != fact_arg:
                return None
        else:
            known = bound.get(pattern_arg)
            if known is None:
                bound[pattern_arg] = fact_arg
            elif known != fact_arg:
                return None
    return bound


def parse_rule(text: str) -> Rule:
    """Parse one rule, e.g. ``"reach(y) :- reach(x), edge(x, y)"``."""
    parser = _Parser(text)
    head = parser.parse_atom()
    parser.expect("RULE")
    body = [parser.parse_atom()]
    while parser.accept("COMMA") or parser.accept("AND"):
        body.append(parser.parse_atom())
    parser.accept("DOT")
    parser.require_end()
    return Rule(head, body)


def parse_program(text: str, goal: str) -> DatalogProgram:
    """Parse a program: one rule per line (or '.'-terminated), comments
    with ``%`` or ``#``.

    >>> program = parse_program('''
    ...     reach(x) :- start(x).
    ...     reach(y) :- reach(x), edge(x, y).
    ... ''', goal="reach")
    >>> program.is_recursive
    True
    """
    rules: List[Rule] = []
    for raw_line in re.split(r"[\n]+", text):
        line = re.split(r"[%#]", raw_line, 1)[0].strip()
        if not line:
            continue
        rules.append(parse_rule(line))
    if not rules:
        raise ParseError("a datalog program needs at least one rule", text)
    return DatalogProgram(rules, goal)
