"""First-order formula AST over a relational vocabulary.

The paper uses first-order dependencies and first-order queries; Section 7
in particular evaluates arbitrary FO queries under the four CWA semantics.
This module defines the abstract syntax.  Evaluation (active-domain
semantics, as footnote 2 of the paper requires for s-t-tgd premises) lives
in :mod:`repro.logic.evaluation`.

All formula classes are immutable and hashable.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Mapping, Tuple

from ..core.atoms import Atom
from ..core.terms import Term, Value, Variable


class Formula:
    """Base class for first-order formulas."""

    __slots__ = ()

    def free_variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def constants(self) -> FrozenSet[Value]:
        """All constants (and nulls, if any) mentioned by the formula."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Term, Term]) -> "Formula":
        """Apply a substitution to free occurrences of variables."""
        raise NotImplementedError

    # Connective helpers so formulas compose fluently.
    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def implies(self, other: "Formula") -> "Or":
        return Or((Not(self), other))


class Truth(Formula):
    """The always-true formula."""

    __slots__ = ()

    def free_variables(self):
        return frozenset()

    def constants(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, Truth)

    def __hash__(self):
        return hash("Truth")

    def __repr__(self):
        return "⊤"


class Falsity(Formula):
    """The always-false formula."""

    __slots__ = ()

    def free_variables(self):
        return frozenset()

    def constants(self):
        return frozenset()

    def substitute(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, Falsity)

    def __hash__(self):
        return hash("Falsity")

    def __repr__(self):
        return "⊥"


class RelationalAtom(Formula):
    """An atomic formula ``R(t1, ..., tr)``."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom

    def free_variables(self):
        return self.atom.variables

    def constants(self):
        return frozenset(self.atom.values)

    def substitute(self, mapping):
        return RelationalAtom(self.atom.substitute(mapping))

    def __eq__(self, other):
        return isinstance(other, RelationalAtom) and self.atom == other.atom

    def __hash__(self):
        return hash(("RelationalAtom", self.atom))

    def __repr__(self):
        return repr(self.atom)


class Equality(Formula):
    """``t1 = t2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Term, right: Term):
        self.left = left
        self.right = right

    def free_variables(self):
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def constants(self):
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Value)
        )

    def substitute(self, mapping):
        return Equality(
            mapping.get(self.left, self.left),
            mapping.get(self.right, self.right),
        )

    def __eq__(self, other):
        return (
            isinstance(other, Equality)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("Equality", self.left, self.right))

    def __repr__(self):
        return f"{self.left} = {self.right}"


class Not(Formula):
    """Negation."""

    __slots__ = ("body",)

    def __init__(self, body: Formula):
        self.body = body

    def free_variables(self):
        return self.body.free_variables()

    def constants(self):
        return self.body.constants()

    def substitute(self, mapping):
        return Not(self.body.substitute(mapping))

    def __eq__(self, other):
        return isinstance(other, Not) and self.body == other.body

    def __hash__(self):
        return hash(("Not", self.body))

    def __repr__(self):
        return f"¬({self.body!r})"


class And(Formula):
    """Conjunction of zero or more formulas (empty conjunction is true)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Formula]):
        self.parts: Tuple[Formula, ...] = tuple(parts)

    def free_variables(self):
        out = frozenset()
        for part in self.parts:
            out |= part.free_variables()
        return out

    def constants(self):
        out = frozenset()
        for part in self.parts:
            out |= part.constants()
        return out

    def substitute(self, mapping):
        return And(tuple(part.substitute(mapping) for part in self.parts))

    def __eq__(self, other):
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self):
        return hash(("And", self.parts))

    def __repr__(self):
        if not self.parts:
            return "⊤"
        return " ∧ ".join(f"({part!r})" for part in self.parts)


class Or(Formula):
    """Disjunction of zero or more formulas (empty disjunction is false)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Formula]):
        self.parts: Tuple[Formula, ...] = tuple(parts)

    def free_variables(self):
        out = frozenset()
        for part in self.parts:
            out |= part.free_variables()
        return out

    def constants(self):
        out = frozenset()
        for part in self.parts:
            out |= part.constants()
        return out

    def substitute(self, mapping):
        return Or(tuple(part.substitute(mapping) for part in self.parts))

    def __eq__(self, other):
        return isinstance(other, Or) and self.parts == other.parts

    def __hash__(self):
        return hash(("Or", self.parts))

    def __repr__(self):
        if not self.parts:
            return "⊥"
        return " ∨ ".join(f"({part!r})" for part in self.parts)


class _Quantifier(Formula):
    __slots__ = ("variables", "body")
    symbol = "?"

    def __init__(self, variables_: Iterable[Variable], body: Formula):
        self.variables: Tuple[Variable, ...] = tuple(variables_)
        self.body = body

    def free_variables(self):
        return self.body.free_variables() - frozenset(self.variables)

    def constants(self):
        return self.body.constants()

    def substitute(self, mapping):
        # Bound variables shadow the substitution.
        shadowed = {
            key: value
            for key, value in mapping.items()
            if key not in self.variables
        }
        return type(self)(self.variables, self.body.substitute(shadowed))

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.variables == other.variables
            and self.body == other.body
        )

    def __hash__(self):
        return hash((type(self).__name__, self.variables, self.body))

    def __repr__(self):
        names = ", ".join(v.name for v in self.variables)
        return f"{self.symbol}{names}. ({self.body!r})"


class Exists(_Quantifier):
    """Existential quantification over one or more variables."""

    __slots__ = ()
    symbol = "∃"


class Forall(_Quantifier):
    """Universal quantification over one or more variables."""

    __slots__ = ()
    symbol = "∀"


def conjunction(parts: Iterable[Formula]) -> Formula:
    """An ``And`` flattened and simplified for the common cases."""
    flat = []
    for part in parts:
        if isinstance(part, Truth):
            continue
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Truth()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(parts: Iterable[Formula]) -> Formula:
    """An ``Or`` flattened and simplified for the common cases."""
    flat = []
    for part in parts:
        if isinstance(part, Falsity):
            continue
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return Falsity()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def atoms_of(formula: Formula) -> Tuple[Atom, ...]:
    """All relational atoms occurring anywhere inside ``formula``."""
    found = []

    def walk(node: Formula):
        if isinstance(node, RelationalAtom):
            found.append(node.atom)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, _Quantifier):
            walk(node.body)

    walk(formula)
    return tuple(found)


def is_conjunction_of_atoms(formula: Formula) -> bool:
    """True if the formula is a (possibly unary/empty) conjunction of
    relational atoms -- the shape required of tgd/egd premises and tgd
    conclusions in the paper."""
    if isinstance(formula, RelationalAtom):
        return True
    if isinstance(formula, Truth):
        return True
    if isinstance(formula, And):
        return all(isinstance(part, RelationalAtom) for part in formula.parts)
    return False
