"""Logic substrate: formulas, evaluation, queries, matching, parsing."""

from .datalog import DatalogProgram, Rule, parse_program, parse_rule
from .evaluation import evaluation_domain, holds, satisfying_assignments
from .formulas import (
    And,
    Equality,
    Exists,
    Falsity,
    Forall,
    Formula,
    Not,
    Or,
    RelationalAtom,
    Truth,
    atoms_of,
    conjunction,
    disjunction,
    is_conjunction_of_atoms,
)
from .matching import exists_match, first_match, match
from .parser import (
    parse_atom,
    parse_formula,
    parse_instance,
    parse_query,
    tokenize,
)
from .queries import (
    ConjunctiveQuery,
    FirstOrderQuery,
    Query,
    UnionOfConjunctiveQueries,
    boolean,
    canonical_query,
)

__all__ = [
    "And",
    "DatalogProgram",
    "Rule",
    "parse_program",
    "parse_rule",
    "ConjunctiveQuery",
    "Equality",
    "Exists",
    "Falsity",
    "FirstOrderQuery",
    "Forall",
    "Formula",
    "Not",
    "Or",
    "Query",
    "RelationalAtom",
    "Truth",
    "UnionOfConjunctiveQueries",
    "atoms_of",
    "boolean",
    "canonical_query",
    "conjunction",
    "disjunction",
    "evaluation_domain",
    "exists_match",
    "first_match",
    "holds",
    "is_conjunction_of_atoms",
    "match",
    "parse_atom",
    "parse_formula",
    "parse_instance",
    "parse_query",
    "satisfying_assignments",
    "tokenize",
]
